"""Command-line interface.

Seven subcommands mirror the measurement workflow:

* ``simulate`` — run the simulated Archipelago for some cycles, writing
  one warts-like archive per snapshot plus the matching pfx2as table;
* ``show`` — pretty-print traces from an archive;
* ``classify`` — run LPR over archived snapshots and print the filter
  and classification report;
* ``audit`` — per-AS MPLS usage profiles from archived snapshots;
* ``study`` — regenerate paper artifacts from a fresh longitudinal run.
  Flight-recorder flags: ``--progress`` (live status line on stderr),
  ``--events-out`` (append-only JSONL event log), ``--trace-out``
  (Chrome trace-event JSON, loadable in Perfetto).  Live telemetry
  plane (DESIGN §13): ``--serve-telemetry [HOST:]PORT`` starts a
  background HTTP server with ``/metrics``, ``/healthz``,
  ``/progress`` and ``/events`` endpoints and turns on per-process
  resource sampling; ``--stall-timeout SECS`` arms the
  heartbeat-deadline watchdog;
* ``report`` — reconstruct a past study from its flight-recorder
  files, as text or (``--format json``) one JSON object;
* ``verify`` — the differential oracle: execute one spec through every
  fast-path configuration (workers, pair blocks, no-memo, checkpoint
  resume, warm-start state store, archive round-trips), diff canonical
  artifacts against the serial reference, audit invariants, and
  auto-shrink any divergence to a minimal reproducing spec.

Example round trip::

    repro simulate --cycles 2 --out /tmp/campaign
    repro classify --cycle-dir /tmp/campaign/cycle-01
    repro study --artifacts table1 fig7
    repro study --workers 4 --progress --events-out events.jsonl \\
        --trace-out trace.json --artifacts table1
    repro report events.jsonl --trace trace.json
    repro verify --cycles 4 --scale 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .analysis import (
    ALL_ARTIFACTS,
    flight_report,
    flight_report_data,
    format_table,
    regenerate,
    run_longitudinal_study,
)
from .core import LprPipeline
from .core.report import render_report
from .core.revelation import TunnelVisibility, visibility_census
from .net.ip2as import Ip2AsMapper
from .par import StudySpec
from .obs import (
    EventBus,
    HealthMonitor,
    MonotonicClock,
    ProgressPrinter,
    TelemetryServer,
    Tracer,
    configure_logging,
    get_logger,
    get_registry,
    get_tracer,
    parse_endpoint,
    set_event_bus,
    set_tracer,
    write_chrome_trace,
    write_metrics_json,
)
from .sim import ArkSimulator, paper_scenario
from .traces import Trace
from .verify import CONFIG_NAMES, default_matrix, run_matrix
from .warts import read_archive, salvage_archive, write_archive

_log = get_logger(__name__)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPLS Under the Microscope — reproduction toolkit",
    )
    parser.add_argument("--log-level", default="warning",
                        choices=["debug", "info", "warning", "error"],
                        help="verbosity of structured logs on stderr")
    parser.add_argument("--log-json", action="store_true",
                        help="emit logs as JSON lines instead of "
                             "key=value text")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        metavar="FILE",
                        help="write a JSON metrics snapshot (and any "
                             "recorded spans) after the command")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="run measurement cycles, write archives")
    simulate.add_argument("--cycles", type=int, default=1)
    simulate.add_argument("--first-cycle", type=int, default=1)
    simulate.add_argument("--scale", type=float, default=1.0)
    simulate.add_argument("--seed", type=int, default=2015)
    simulate.add_argument("--out", type=Path, required=True,
                          help="output directory")

    show = sub.add_parser("show", help="print traces from an archive")
    show.add_argument("--archive", type=Path, required=True)
    show.add_argument("--limit", type=int, default=5)
    show.add_argument("--mpls-only", action="store_true",
                      help="only traces crossing an explicit tunnel")
    show.add_argument("--tolerant", action="store_true",
                      help="salvage corrupt archives: skip bad records "
                           "(reported by reason) instead of aborting")

    classify = sub.add_parser(
        "classify", help="run LPR over one cycle's archived snapshots")
    classify.add_argument("--cycle-dir", type=Path, required=True,
                          help="directory written by 'simulate' for "
                               "one cycle")
    classify.add_argument("--persistence-window", type=int, default=2)
    classify.add_argument("--php-heuristic", action="store_true")
    classify.add_argument("--tolerant", action="store_true",
                          help="salvage corrupt snapshot archives "
                               "instead of aborting")

    audit = sub.add_parser(
        "audit", help="per-AS usage report from archived snapshots")
    audit.add_argument("--cycle-dir", type=Path, required=True)
    audit.add_argument("--limit", type=int, default=None,
                       help="only the N busiest ASes")

    study = sub.add_parser(
        "study", help="regenerate paper tables/figures")
    study.add_argument("--cycles", type=int, default=60)
    study.add_argument("--scale", type=float, default=1.0)
    study.add_argument("--seed", type=int, default=2015)
    study.add_argument("--artifacts", nargs="+",
                       default=["table1", "fig7"],
                       choices=list(ALL_ARTIFACTS))
    study.add_argument("--workers", type=int, default=1, metavar="N",
                       help="shard the study over N worker processes; "
                            "workers beyond the cycle count split "
                            "cycles into pair blocks (byte-identical "
                            "output either way; default serial)")
    study.add_argument("--engine", default="object",
                       choices=["object", "columnar"],
                       help="analysis backend: the classic per-object "
                            "pipeline or the columnar kernel engine "
                            "(byte-identical results, columnar is "
                            "faster; default object)")
    study.add_argument("--profile", action="store_true",
                       help="time every pipeline stage and print a "
                            "per-stage breakdown table")
    study.add_argument("--checkpoint-dir", type=Path, default=None,
                       metavar="DIR",
                       help="persist finished shards here; a restarted "
                            "study replays only unfinished cycle "
                            "ranges (keyed by the study spec's hash)")
    study.add_argument("--state-dir", type=Path, default=None,
                       metavar="DIR",
                       help="share warm-start control-plane snapshots "
                            "here: workers and resumed studies restore "
                            "the nearest snapshot and replay only the "
                            "tail instead of every earlier cycle "
                            "(byte-identical output; keyed by the "
                            "study spec's hash)")
    study.add_argument("--snapshot-stride", type=int, default=8,
                       metavar="N",
                       help="cycles between state snapshots when "
                            "--state-dir is set (default 8; smaller = "
                            "shorter tail replay, more disk)")
    study.add_argument("--max-retries", type=int, default=2,
                       metavar="N",
                       help="re-dispatch a crashed shard up to N times "
                            "(exponential backoff) before aborting")
    study.add_argument("--backoff-base", type=float, default=0.5,
                       metavar="SECONDS",
                       help="base delay of the exponential retry "
                            "backoff (attempt k sleeps base * 2^k; "
                            "default 0.5, must be >= 0)")
    study.add_argument("--progress", action="store_true",
                       help="live one-line progress on stderr (cycles "
                            "done, shards, traces, ETA), fed by worker "
                            "heartbeats")
    study.add_argument("--events-out", type=Path, default=None,
                       metavar="FILE",
                       help="append flight-recorder events (study/"
                            "shard/cycle lifecycle, JSONL) to FILE; "
                            "read back with 'repro report'")
    study.add_argument("--trace-out", type=Path, default=None,
                       metavar="FILE",
                       help="write the span tree (parent and worker) "
                            "as Chrome trace-event JSON, loadable in "
                            "Perfetto")
    study.add_argument("--serve-telemetry", default=None,
                       metavar="[HOST:]PORT",
                       help="serve live telemetry over HTTP while the "
                            "study runs (/metrics Prometheus text, "
                            "/healthz liveness, /progress JSON, "
                            "/events ring-buffer tail) and sample "
                            "per-process RSS/CPU/GC on every "
                            "heartbeat; port 0 picks a free port — "
                            "the bound URL is printed on stderr")
    study.add_argument("--stall-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="flag a shard as stalled (shard.stalled "
                            "event, par_shards_stalled_total metric, "
                            "503 on /healthz) when its heartbeats go "
                            "silent this long; off by default")

    report = sub.add_parser(
        "report", help="reconstruct a study from flight-recorder files")
    report.add_argument("events", type=Path,
                        help="events JSONL written by --events-out")
    report.add_argument("--trace", type=Path, default=None,
                        metavar="FILE",
                        help="Chrome trace JSON written by --trace-out "
                             "(adds per-stage times + slowest cycles)")
    report.add_argument("--top", type=int, default=5, metavar="N",
                        help="how many slowest cycles to list")
    report.add_argument("--format", default="text",
                        choices=["text", "json"],
                        help="text report or one machine-readable "
                             "JSON object with the same sections")

    verify = sub.add_parser(
        "verify", help="differential oracle: prove every fast path "
                       "equals the serial reference")
    verify.add_argument("--cycles", type=int, default=4)
    verify.add_argument("--scale", type=float, default=0.25)
    verify.add_argument("--seed", type=int, default=2015)
    verify.add_argument("--snapshots-per-cycle", type=int, default=2)
    verify.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker-process count exercised by the "
                             "'workers' configuration (default 2)")
    verify.add_argument("--configs", nargs="+", default=None,
                        choices=list(CONFIG_NAMES), metavar="NAME",
                        help="run only these configurations (default: "
                             f"the full matrix: "
                             f"{', '.join(CONFIG_NAMES)})")
    verify.add_argument("--workdir", type=Path, default=None,
                        metavar="DIR",
                        help="scratch directory for checkpoint/state/"
                             "archive stores (default: a temporary "
                             "directory, removed afterwards)")
    verify.add_argument("--no-shrink", action="store_true",
                        help="report divergences without shrinking "
                             "them to minimal reproducing specs")
    verify.add_argument("--events-out", type=Path, default=None,
                        metavar="FILE",
                        help="append verify.* flight-recorder events "
                             "(JSONL) to FILE; read back with "
                             "'repro report'")
    return parser


def cmd_simulate(args) -> int:
    simulator = ArkSimulator(
        paper_scenario(scale=args.scale, seed=args.seed))
    args.out.mkdir(parents=True, exist_ok=True)
    with open(args.out / "pfx2as.txt", "w", encoding="utf-8") as stream:
        simulator.internet.ip2as.dump(stream)
    last = args.first_cycle + args.cycles - 1
    for cycle in range(args.first_cycle, last + 1):
        data = simulator.run_cycle(cycle)
        cycle_dir = args.out / f"cycle-{cycle:02d}"
        cycle_dir.mkdir(exist_ok=True)
        for index, snapshot in enumerate(data.snapshots):
            path = cycle_dir / f"snapshot-{index}.rwts"
            count = write_archive(path, snapshot)
            print(f"wrote {count:5d} traces -> {path}")
    return 0


def cmd_show(args) -> int:
    if args.tolerant:
        traces, skipped = salvage_archive(args.archive)
    else:
        traces, skipped = read_archive(args.archive), {}
    shown = 0
    for trace in traces:
        if args.mpls_only and not trace.has_mpls:
            continue
        print(trace)
        print()
        shown += 1
        if shown >= args.limit:
            break
    print(f"({shown} of {len(traces)} traces shown)")
    if skipped:
        print(_salvage_summary(skipped), file=sys.stderr)
    return 0


def _salvage_summary(skipped: dict) -> str:
    detail = ", ".join(f"{reason}={count}"
                       for reason, count in sorted(skipped.items()))
    return (f"salvage: skipped {sum(skipped.values())} corrupt "
            f"record(s): {detail}")


def cmd_classify(args) -> int:
    try:
        ip2as, snapshots, skipped = _load_cycle(
            args.cycle_dir, tolerant=args.tolerant)
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 1
    if skipped:
        print(_salvage_summary(skipped), file=sys.stderr)

    pipeline = LprPipeline(
        ip2as, persistence_window=args.persistence_window,
        php_heuristic=args.php_heuristic)
    result = pipeline.process_snapshots(
        _cycle_number(args.cycle_dir), snapshots)

    stats = result.filter_stats
    print(f"traces: {result.stats.trace_count}, with tunnels: "
          f"{result.stats.traces_with_tunnels} "
          f"({result.stats.tunnel_trace_share:.1%})")
    census = visibility_census(snapshots[0])
    print()
    print(format_table(
        ["tunnel visibility", "tunnels", "traces with"],
        [[visibility.value, census.tunnels[visibility],
          census.traces_with[visibility]]
         for visibility in TunnelVisibility],
    ))
    print()
    print(format_table(
        ["filter", "surviving LSPs"],
        [["extracted", stats.extracted],
         ["incomplete", stats.after_incomplete],
         ["intra-AS", stats.after_intra_as],
         ["target-AS", stats.after_target_as],
         ["transit diversity", stats.after_transit_diversity],
         ["persistence", stats.after_persistence]],
    ))
    if stats.reinjected_ases:
        print(f"dynamic ASes (re-injected): {stats.reinjected_ases}")
    print()
    counts = result.classification.counts()
    total = sum(counts.values())
    print(format_table(
        ["class", "IOTPs", "share"],
        [[tunnel_class.value, count,
          f"{count / total:.2f}" if total else "0.00"]
         for tunnel_class, count in counts.items()],
    ))
    return 0


def _load_cycle(cycle_dir: Path, tolerant: bool = False
                ) -> Tuple[Ip2AsMapper, List[List[Trace]], dict]:
    """Read one simulated cycle (pfx2as table + every snapshot).

    ``tolerant`` salvages corrupt archives; the third return value
    tallies the records skipped across all snapshots (empty in strict
    mode — strict reads raise on the first corrupt record).
    """
    snapshot_paths = sorted(cycle_dir.glob("snapshot-*.rwts"))
    if not snapshot_paths:
        raise FileNotFoundError(f"no snapshot-*.rwts under {cycle_dir}")
    pfx2as = cycle_dir.parent / "pfx2as.txt"
    if not pfx2as.exists():
        raise FileNotFoundError(f"missing {pfx2as}")
    with open(pfx2as, "r", encoding="utf-8") as stream:
        ip2as = Ip2AsMapper.load(stream)
    snapshots: List[List[Trace]] = []
    skipped: dict = {}
    for path in snapshot_paths:
        if tolerant:
            traces, skips = salvage_archive(path)
            for reason, count in skips.items():
                skipped[reason] = skipped.get(reason, 0) + count
        else:
            traces = read_archive(path)
        snapshots.append(traces)
    return ip2as, snapshots, skipped


def _cycle_number(cycle_dir: Path) -> int:
    """The cycle a ``cycle-NN`` directory holds (0 when unparseable).

    ``simulate`` names directories after real cycle numbers; reports
    over a re-read cycle must carry that number, not a hardcoded 0.
    """
    name = cycle_dir.name
    prefix, _, suffix = name.partition("-")
    if prefix == "cycle" and suffix.isdigit():
        return int(suffix)
    return 0


def cmd_audit(args) -> int:
    try:
        ip2as, snapshots, _ = _load_cycle(args.cycle_dir)
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 1
    pipeline = LprPipeline(ip2as)
    result = pipeline.process_snapshots(
        _cycle_number(args.cycle_dir), snapshots)
    print(render_report(result, limit=args.limit))
    return 0


def cmd_study(args) -> int:
    timed = (args.profile or args.progress
             or args.trace_out is not None
             or args.serve_telemetry is not None
             or args.stall_timeout is not None)
    if timed:
        # Opt into real timing: swap the NullClock tracer for a
        # monotonic one (results stay deterministic — only the span
        # durations read the clock, never the pipeline).
        set_tracer(Tracer(MonotonicClock()))
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print(f"--max-retries must be >= 0, got {args.max_retries}",
              file=sys.stderr)
        return 2
    if args.backoff_base < 0:
        print(f"--backoff-base must be >= 0, got {args.backoff_base}",
              file=sys.stderr)
        return 2
    if args.snapshot_stride < 1:
        print(f"--snapshot-stride must be >= 1, "
              f"got {args.snapshot_stride}", file=sys.stderr)
        return 2
    if args.stall_timeout is not None and args.stall_timeout <= 0:
        print(f"--stall-timeout must be > 0, got {args.stall_timeout}",
              file=sys.stderr)
        return 2
    endpoint = None
    if args.serve_telemetry is not None:
        try:
            endpoint = parse_endpoint(args.serve_telemetry)
        except ValueError as error:
            print(f"--serve-telemetry: {error}", file=sys.stderr)
            return 2
    bus = None
    if args.events_out is not None:
        # The events file gets wall timestamps only when the run
        # already opted into timing; a bare --events-out stays on the
        # NullClock and the file is deterministic (DESIGN §6).
        bus = EventBus(clock=MonotonicClock() if timed else None,
                       sink=args.events_out)
        set_event_bus(bus)
    printer = ProgressPrinter() if args.progress else None
    health = server = None
    if endpoint is not None:
        health = HealthMonitor(stall_timeout=args.stall_timeout,
                               clock=MonotonicClock())
        server = TelemetryServer(*endpoint, registry=get_registry(),
                                 health=health)
        server.start()
        print(f"telemetry: listening on {server.url}",
              file=sys.stderr, flush=True)

    # /progress needs the live tracker, so the server taps the same
    # callback stream the printer does.
    sinks = [sink for sink in
             (printer.update if printer is not None else None,
              server.on_progress if server is not None else None)
             if sink is not None]
    progress = None
    if sinks:
        def progress(tracker):
            for sink in sinks:
                sink(tracker)
    try:
        study = run_longitudinal_study(
            scale=args.scale, seed=args.seed,
            cycles=args.cycles,
            workers=args.workers,
            engine=args.engine,
            checkpoint_dir=args.checkpoint_dir,
            state_dir=args.state_dir,
            snapshot_stride=args.snapshot_stride,
            max_retries=args.max_retries,
            backoff_base=args.backoff_base,
            progress=progress,
            resources=server is not None,
            stall_timeout=args.stall_timeout,
            health=health)
    finally:
        if printer is not None:
            printer.finish()
        if server is not None:
            server.stop()
        if bus is not None:
            bus.close()
    for artifact in args.artifacts:
        print(f"\n{regenerate(study, artifact)}")
    if args.profile:
        print(f"\n{_profile_table(get_tracer())}")
    if args.trace_out is not None:
        write_chrome_trace(args.trace_out)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    return 0


def cmd_report(args) -> int:
    try:
        if args.format == "json":
            data = flight_report_data(args.events,
                                      trace_path=args.trace,
                                      top=args.top)
            print(json.dumps(data, indent=2, sort_keys=True))
        else:
            print(flight_report(args.events, trace_path=args.trace,
                                top=args.top))
    except (OSError, ValueError) as error:
        print(f"cannot build report: {error}", file=sys.stderr)
        return 1
    return 0


def cmd_verify(args) -> int:
    if args.cycles < 1:
        print(f"--cycles must be >= 1, got {args.cycles}",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.snapshots_per_cycle < 1:
        print(f"--snapshots-per-cycle must be >= 1, "
              f"got {args.snapshots_per_cycle}", file=sys.stderr)
        return 2
    bus = None
    if args.events_out is not None:
        bus = EventBus(sink=args.events_out)
        set_event_bus(bus)
    spec = StudySpec(scale=args.scale, seed=args.seed,
                     cycles=args.cycles,
                     snapshots_per_cycle=args.snapshots_per_cycle)
    configs = None
    if args.configs is not None:
        matrix = {config.name: config
                  for config in default_matrix(workers=args.workers)}
        configs = [matrix[name] for name in args.configs]
    try:
        if args.workdir is not None:
            report = run_matrix(spec, configs, workdir=args.workdir,
                                shrink=not args.no_shrink,
                                workers=args.workers)
        else:
            with tempfile.TemporaryDirectory(
                    prefix="repro-verify-") as scratch:
                report = run_matrix(spec, configs,
                                    workdir=Path(scratch),
                                    shrink=not args.no_shrink,
                                    workers=args.workers)
    finally:
        if bus is not None:
            bus.close()
    print(report.render())
    return 0 if report.clean else 1


def _profile_table(tracer: Tracer) -> str:
    """Per-stage span breakdown of everything the tracer recorded."""
    rows = [
        [totals.name, totals.count, f"{totals.total_s:.3f}",
         f"{totals.self_s:.3f}", f"{totals.mean_ms:.2f}"]
        for totals in tracer.totals()
    ]
    return format_table(
        ["span", "calls", "total s", "self s", "mean ms"], rows)


_COMMANDS = {
    "simulate": cmd_simulate,
    "show": cmd_show,
    "classify": cmd_classify,
    "audit": cmd_audit,
    "study": cmd_study,
    "report": cmd_report,
    "verify": cmd_verify,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_output=args.log_json)
    code = _COMMANDS[args.command](args)
    if args.metrics_out is not None:
        try:
            write_metrics_json(args.metrics_out,
                               registry=get_registry(),
                               trace=get_tracer())
            _log.info("metrics.written", path=str(args.metrics_out))
        except OSError as error:
            print(f"cannot write metrics: {error}", file=sys.stderr)
            code = code or 1
    return code


if __name__ == "__main__":
    sys.exit(main())
