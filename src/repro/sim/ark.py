"""Archipelago-style measurement scheduling.

Turns a :class:`~repro.sim.scenarios.Scenario` into longitudinal
traceroute datasets:

* :meth:`ArkSimulator.run_cycle` — one monthly cycle: apply the cycle's
  MPLS policies, then take ``snapshots_per_cycle`` snapshots a day apart
  (the paper's Persistence filter needs cycles X..X+j from one month);
* :meth:`ArkSimulator.run` — the full 60-cycle longitudinal campaign;
* :func:`daily_campaign` — daily snapshots through one month with an AS
  ramping its deployment mid-month (Level3, April 2012 — Fig 16);
* :func:`label_dynamics_campaign` — a single vantage point probing one
  destination every two minutes for hours while the transited AS
  re-optimizes its TE tunnels (Fig 17).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..igp.ecmp import flow_hash
from ..obs import get_logger, get_registry, span
from ..traces import Trace
from .config import MplsPolicy
from .dataplane import DataPlane
from .monitors import Monitor, build_monitors, split_into_teams
from .network import Internet
from .scenarios import Scenario
from .traceroute import TracerouteEngine

_DAY = 86_400.0
_MONTH = 30 * _DAY

_log = get_logger(__name__)
_CYCLES_SIMULATED = get_registry().counter(
    "sim_cycles_total", "Measurement cycles simulated")
_SNAPSHOTS_SIMULATED = get_registry().counter(
    "sim_snapshots_total", "Snapshots taken across all cycles")
_SIM_TRACES = get_registry().counter(
    "sim_traces_total", "Traces produced by the simulated campaigns")


def block_bounds(total: int, index: int, count: int) -> Tuple[int, int]:
    """Half-open slice bounds of block ``index`` of ``count`` over a
    ``total``-item list: ``[total*i//count, total*(i+1)//count)``.

    The blocks are contiguous, cover every item exactly once for any
    ``total``, and — the property the retry machinery leans on — the
    children ``(2i, 2count)`` and ``(2i+1, 2count)`` of block
    ``(i, count)`` tile exactly the parent's range, so a subdivided
    pair block never duplicates or drops a probe.
    """
    if count < 1:
        raise ValueError(f"need at least one block, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"block index {index} out of [0, {count})")
    return (total * index) // count, (total * (index + 1)) // count


@dataclass
class CycleData:
    """The traces of one monthly cycle.

    ``snapshots[0]`` is the cycle proper; the rest are the X+1..X+j
    follow-up snapshots the Persistence filter consumes.
    """

    cycle: int
    snapshots: List[List[Trace]] = field(default_factory=list)

    @property
    def traces(self) -> List[Trace]:
        """The primary snapshot's traces."""
        return self.snapshots[0]

    def all_traces(self) -> Iterator[Trace]:
        """Every trace of every snapshot."""
        for snapshot in self.snapshots:
            yield from snapshot


class ArkSimulator:
    """Drives a scenario through measurement cycles."""

    def __init__(self, scenario: Scenario, monitors_per_as: int = 2,
                 team_count: int = 3, snapshots_per_cycle: int = 3,
                 loss_rate: float = 0.01, flap_rate: float = 0.012,
                 egress_noise: float = 0.12, memoize: bool = True):
        self.scenario = scenario
        self.memoize = memoize
        self.internet = Internet(scenario.universe)
        self.monitors = build_monitors(self.internet, monitors_per_as)
        self.team_count = team_count
        self.snapshots_per_cycle = snapshots_per_cycle
        self.loss_rate = loss_rate
        self.flap_rate = flap_rate
        self.egress_noise = egress_noise
        self.destinations = [
            addr for addr, _asn in self.internet.destination_addresses()
        ]
        self._seed = scenario.universe.seed
        # The hash rankings are fraction-independent, so they are
        # computed once; fractions only slice them.  Assignment pair
        # lists are pure functions of their arguments, so a small LRU
        # spares intra-cycle pair-block workers (and repeated-cycle
        # experiments) the per-call team split and pair build.
        self._ranked_monitors: Optional[List[Monitor]] = None
        self._ranked_destinations: Optional[List[int]] = None
        self._assignment_cache: OrderedDict = OrderedDict()

    _ASSIGNMENT_CACHE_SIZE = 8

    # -- selection helpers ---------------------------------------------------

    def _active_monitors(self, fraction: float) -> List[Monitor]:
        """A stable subset: a rising fraction only ever adds monitors."""
        if self._ranked_monitors is None:
            self._ranked_monitors = sorted(
                self.monitors,
                key=lambda m: flow_hash(0xACE, m.src_addr))
        ranked = self._ranked_monitors
        count = max(1, round(fraction * len(ranked)))
        return ranked[:count]

    def _active_destinations(self, fraction: float) -> List[int]:
        if self._ranked_destinations is None:
            self._ranked_destinations = sorted(
                self.destinations,
                key=lambda d: flow_hash(0xDE57, d))
        ranked = self._ranked_destinations
        count = max(1, round(fraction * len(ranked)))
        return ranked[:count]

    def assignments(self, cycle: int, monitor_fraction: float,
                    dest_fraction: float, snapshot: int = 0,
                    churn: float = 0.18) -> List[Tuple[Monitor, int]]:
        """(monitor, destination) pairs for one snapshot of a cycle.

        Every team covers every active destination through one of its
        members.  Most member choices are stable within a month (so the
        Persistence filter compares like with like) and rotate across
        months (successive cycles explore different ECMP branches) — but
        a ``churn`` share of assignments is reshuffled per snapshot, the
        dynamic team scheduling of the real infrastructure.  LSPs seen
        only through a churned flow vanish from the follow-up snapshots,
        which is the routing-noise share the Persistence filter exists
        to remove.

        The pair list is a pure function of the arguments, so it is
        memoized (small LRU); callers must treat it as read-only —
        :meth:`run_cycle` slices blocks out of it and
        :class:`~repro.sim.traceroute.TracerouteEngine` only iterates.
        """
        key = (cycle, monitor_fraction, dest_fraction, snapshot, churn)
        cached = self._assignment_cache.get(key)
        if cached is not None:
            self._assignment_cache.move_to_end(key)
            return cached
        teams = split_into_teams(
            self._active_monitors(monitor_fraction), self.team_count)
        active = self._active_destinations(dest_fraction)
        churn_bound = int(churn * 10_000)
        pairs = []
        for team_index, team in enumerate(teams):
            for dst in active:
                churned = (flow_hash(0xC4, dst, cycle, team_index)
                           % 10_000 < churn_bound)
                slot = snapshot if churned else 0
                member = team[flow_hash(dst, cycle, team_index, slot)
                              % len(team)]
                pairs.append((member, dst))
        self._assignment_cache[key] = pairs
        if len(self._assignment_cache) > self._ASSIGNMENT_CACHE_SIZE:
            self._assignment_cache.popitem(last=False)
        return pairs

    # -- campaign drivers ----------------------------------------------------

    def _apply_cycle(self, cycle: int):
        """Move the internet to one cycle's policy plan; returns the plan."""
        plan = self.scenario.plan(cycle)
        self.internet.apply_policies(plan.policies)
        return plan

    def fast_forward(self, first: int = 1, last: int = 0) -> None:
        """Replay the control-plane evolution of cycles ``first..last``.

        Reconstructs exactly the network state a serial campaign holds
        after running those cycles — each cycle's policies applied, then
        the per-snapshot timers ticked — without issuing a single probe.
        Probing never mutates network state (the data plane and the
        traceroute engine are read-only over it), so fast-forwarding is
        state-equivalent to :meth:`run_cycle` and arbitrarily cheaper.
        ``repro.par`` workers use this to reconstruct their shard's
        starting state from ``(seed, scenario, cycle)`` alone, and the
        parallel runner uses it to leave the parent simulator in the
        serial end-of-campaign state (DESIGN §8).
        """
        for cycle in range(first, last + 1):
            self._apply_cycle(cycle)
            for _ in range(self.snapshots_per_cycle):
                self.internet.tick()

    def run_cycle(self, cycle: int,
                  pair_block: Optional[Tuple[int, int]] = None
                  ) -> CycleData:
        """Execute one monthly cycle with its follow-up snapshots.

        ``pair_block=(index, count)`` restricts probing to one
        contiguous block of each snapshot's (monitor, destination)
        pair list (:func:`block_bounds`): the control plane still
        evolves exactly as a full cycle would (policies applied, timers
        ticked), but only the block's traces are issued.  Concatenating
        the per-snapshot traces of blocks ``0..count-1`` in order
        reproduces the full cycle's snapshots byte-for-byte — Paris
        forwarding is a pure function of (pair, frozen state), so
        probes neither observe nor disturb each other
        (:mod:`repro.par` intra-cycle sharding, DESIGN §8).  Only block
        0 counts the cycle/snapshot in the registry, keeping merged
        totals layout-invariant.
        """
        data = CycleData(cycle=cycle)
        counts = pair_block is None or pair_block[0] == 0
        with span("sim.cycle", cycle=cycle):
            plan = self._apply_cycle(cycle)
            for snapshot in range(self.snapshots_per_cycle):
                with span("sim.snapshot", cycle=cycle,
                          snapshot=snapshot):
                    # dynamic ASes re-optimize between runs
                    self.internet.tick()
                    pairs = self.assignments(
                        cycle, plan.monitor_fraction,
                        plan.dest_fraction, snapshot)
                    if pair_block is not None:
                        low, high = block_bounds(len(pairs),
                                                 *pair_block)
                        pairs = pairs[low:high]
                    engine = TracerouteEngine(
                        DataPlane(self.internet,
                                  era=flow_hash(cycle, snapshot),
                                  flap_rate=self.flap_rate,
                                  egress_noise=self.egress_noise,
                                  memoize=self.memoize),
                        seed=flow_hash(self._seed, cycle, snapshot),
                        loss_rate=self.loss_rate,
                    )
                    timestamp = (cycle - 1) * _MONTH + snapshot * _DAY
                    traces = engine.trace_all(pairs, timestamp)
                data.snapshots.append(traces)
                if counts:
                    _SNAPSHOTS_SIMULATED.inc()
                _SIM_TRACES.inc(len(traces))
        if counts:
            _CYCLES_SIMULATED.inc()
        _log.info("sim.cycle.done", cycle=cycle,
                  snapshots=len(data.snapshots),
                  traces=sum(len(s) for s in data.snapshots),
                  **({"pair_block": pair_block}
                     if pair_block is not None else {}))
        return data

    def run(self, first: int = 1, last: Optional[int] = None
            ) -> Iterator[CycleData]:
        """Yield cycle datasets from ``first`` to ``last`` inclusive."""
        if last is None:
            last = self.scenario.cycles
        for cycle in range(first, last + 1):
            yield self.run_cycle(cycle)


def daily_campaign(simulator: ArkSimulator, base_cycle: int,
                   ramp_asn: int, ramp_policy: MplsPolicy,
                   days: int = 30, ramp_start_day: int = 15
                   ) -> List[List[Trace]]:
    """Daily snapshots through the month before ``base_cycle``.

    Reproduces the paper's Fig 16 study: the month is probed day by day
    (with the day-to-day vantage-point variation the paper notes), while
    ``ramp_asn`` deploys ``ramp_policy`` incrementally from
    ``ramp_start_day`` to the end of the month.
    """
    plan = simulator.scenario.plan(base_cycle)
    days_out: List[List[Trace]] = []
    for day in range(1, days + 1):
        policies = dict(plan.policies)
        if day < ramp_start_day:
            policies[ramp_asn] = MplsPolicy(enabled=False)
        else:
            progress = (day - ramp_start_day + 1) \
                / (days - ramp_start_day + 1)
            policies[ramp_asn] = MplsPolicy(
                enabled=True,
                ldp=ramp_policy.ldp,
                ldp_internal=ramp_policy.ldp_internal,
                ttl_propagate=ramp_policy.ttl_propagate,
                te_pair_fraction=ramp_policy.te_pair_fraction * progress,
                te_tunnels_per_pair=ramp_policy.te_tunnels_per_pair,
                mpls_pair_fraction=(
                    ramp_policy.mpls_pair_fraction * progress),
            )
        simulator.internet.apply_policies(policies)
        simulator.internet.tick()
        # The daily dumps come from whatever monitors ran that day.
        wobble = 0.55 + (flow_hash(0xDA7, day) % 4500) / 10_000.0
        pairs = simulator.assignments(base_cycle, wobble,
                                      plan.dest_fraction)
        engine = TracerouteEngine(
            DataPlane(simulator.internet, era=flow_hash(0xDA7, day),
                      flap_rate=simulator.flap_rate,
                      egress_noise=simulator.egress_noise,
                      memoize=simulator.memoize),
            seed=flow_hash(simulator.scenario.universe.seed, 0xDA7, day),
            loss_rate=simulator.loss_rate,
        )
        timestamp = (base_cycle - 2) * _MONTH + (day - 1) * _DAY
        days_out.append(engine.trace_all(pairs, timestamp))
    return days_out


def label_dynamics_campaign(simulator: ArkSimulator, cycle: int,
                            target_asn: int, probes: int = 300,
                            probe_interval_s: int = 120,
                            reoptimize_interval_s: int = 3600,
                            churn_per_tick: int = 900
                            ) -> List[Trace]:
    """High-frequency probing of one LSP through a re-optimizing AS.

    A single vantage point traces one destination every two minutes
    (paper §4.5).  Whenever the AS's re-optimization timer fires, its
    head-ends re-signal every tunnel and the (heavily loaded) allocators
    advance — successive traces then show the label sawtooth of Fig 17.
    Occasional event-driven re-optimizations are thrown in, matching the
    paper's observation that some step durations differ.
    """
    plan = simulator.scenario.plan(cycle)
    simulator.internet.apply_policies(plan.policies)
    network = simulator.internet.network(target_asn)
    monitor, destination = _flow_through(simulator, target_asn, cycle)
    traces: List[Trace] = []
    probes_per_reopt = max(1, reoptimize_interval_s // probe_interval_s)
    for probe_index in range(probes):
        timer_fired = probe_index % probes_per_reopt == 0
        event_fired = flow_hash(0xFEED, cycle, probe_index) % 97 == 0
        if probe_index and (timer_fired or event_fired):
            if network.rsvp is not None:
                network.rsvp.reoptimize_all()
            network.churn_labels(churn_per_tick)
        engine = TracerouteEngine(
            DataPlane(simulator.internet, memoize=simulator.memoize),
            seed=flow_hash(simulator.scenario.universe.seed, 0xF17),
            loss_rate=0.0,
        )
        traces.append(engine.trace(
            monitor, destination,
            timestamp=probe_index * float(probe_interval_s),
        ))
    return traces


def _flow_through(simulator: ArkSimulator, target_asn: int, cycle: int
                  ) -> Tuple[Monitor, int]:
    """Find a (monitor, destination) whose trace rides a TE tunnel of
    ``target_asn``.

    Prefers a flow revealing at least two of the tunnel's LSRs (the
    paper's Fig 17 plots two), falling back to a single-LSR flow on
    very small topologies.  Raises LookupError when the scenario offers
    none at all.
    """
    routing = simulator.internet.routing
    ip2as = simulator.internet.ip2as
    network = simulator.internet.network(target_asn)
    for minimum_lsrs in (2, 1):
        for monitor in simulator.monitors:
            for dst in simulator.destinations:
                dst_asn = ip2as.lookup_single(dst)
                if dst_asn == target_asn:
                    continue
                path = routing.as_path(monitor.asn, dst_asn)
                if path is None or target_asn not in path[:-1]:
                    continue
                if _rides_te_tunnel(simulator, network, monitor, dst,
                                    minimum_lsrs):
                    return monitor, dst
    raise LookupError(
        f"no monitor/destination pair rides a TE tunnel of AS{target_asn}"
    )


def _rides_te_tunnel(simulator: ArkSimulator, network, monitor: Monitor,
                     dst: int, minimum_lsrs: int = 2) -> bool:
    dataplane = DataPlane(simulator.internet)
    hops = dataplane.forward_path(monitor.asn, monitor.attachment_router,
                                  monitor.src_addr, dst)
    labelled = [h for h in hops if h.asn == network.asn and h.labels]
    if len(labelled) < minimum_lsrs:
        return False
    # TE labels live in per-session LFIBs; detect by checking a session
    # binding exists for the first labelled hop's label.
    if network.rsvp is None:
        return False
    label = labelled[0].labels[0]
    return any(label in session.labels.values()
               for session in network.rsvp.sessions)
