"""Network + measurement simulator (the CAIDA/Archipelago substitute)."""

from .config import AsSpec, MplsPolicy, UniverseSpec
from .network import AsNetwork, Internet, destination_prefix, infra_block
from .dataplane import DataPlane, HopObs, UnreachableError
from .monitors import Monitor, build_monitors, split_into_teams
from .traceroute import TracerouteEngine
from .scenarios import (
    ATT,
    CYCLES,
    CyclePlan,
    GTT,
    LEVEL3,
    LEVEL3_FALL_CYCLE,
    LEVEL3_RISE_CYCLE,
    NTT,
    Scenario,
    TATA,
    TELIA,
    VODAFONE,
    build_universe,
    paper_policies,
    paper_scenario,
)
from .ark import (
    ArkSimulator,
    CycleData,
    daily_campaign,
    label_dynamics_campaign,
)

__all__ = [
    "AsSpec",
    "MplsPolicy",
    "UniverseSpec",
    "AsNetwork",
    "Internet",
    "destination_prefix",
    "infra_block",
    "DataPlane",
    "HopObs",
    "UnreachableError",
    "Monitor",
    "build_monitors",
    "split_into_teams",
    "TracerouteEngine",
    "ATT",
    "CYCLES",
    "CyclePlan",
    "GTT",
    "LEVEL3",
    "LEVEL3_FALL_CYCLE",
    "LEVEL3_RISE_CYCLE",
    "NTT",
    "Scenario",
    "TATA",
    "TELIA",
    "VODAFONE",
    "build_universe",
    "paper_policies",
    "paper_scenario",
    "ArkSimulator",
    "CycleData",
    "daily_campaign",
    "label_dynamics_campaign",
]
