"""Configuration types for the simulated Internet.

An :class:`AsSpec` describes the static shape of one autonomous system
(routers, links, vendors, address space); an :class:`MplsPolicy` describes
its MPLS configuration *at one measurement cycle*.  Scenario scripts
(:mod:`repro.sim.scenarios`) vary the policy over cycles to reproduce the
longitudinal behaviours of the paper's focus ASes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..bgp.asgraph import Tier


@dataclass(frozen=True)
class MplsPolicy:
    """MPLS configuration of one AS at one cycle.

    Attributes:
        enabled: MPLS switched on at all (otherwise pure IP forwarding).
        ldp: LDP full mesh between border loopbacks (basic encapsulation,
            paper §2.2.1).
        ldp_internal: whether internal destinations also ride LSPs
            (Cisco's label-everything default; feeds the TargetAS filter).
        ttl_propagate: ingress copies IP-TTL into the LSE-TTL.  Off makes
            tunnels invisible to traceroute (not *explicit*).
        te_pair_fraction: fraction of ordered border pairs carrying
            RSVP-TE tunnels (0 = pure LDP).
        te_tunnels_per_pair: how many parallel TE tunnels per such pair.
        te_reoptimize_per_cycle: head-ends re-signal each cycle, churning
            labels (the §4.5 dynamic behaviour; triggers LPR's
            re-injection + dynamic tag).
        mpls_pair_fraction: fraction of border pairs whose transit
            traffic actually rides LSPs (partial deployments; scales the
            number of IOTPs an AS exhibits, the lower halves of the
            paper's Figs 10–15).
        sr_pair_fraction: fraction of border pairs steered by SR-MPLS
            policies (the paper's §2.1 segment-routing outlook); takes
            precedence over LDP, yields to RSVP-TE.
        sr_policies_per_pair: how many SR policies per such pair.
        sr_waypoints: waypoint count per policy (stack depth - 1).
    """

    enabled: bool = False
    ldp: bool = True
    ldp_internal: bool = True
    ttl_propagate: bool = True
    te_pair_fraction: float = 0.0
    te_tunnels_per_pair: int = 0
    te_reoptimize_per_cycle: bool = False
    mpls_pair_fraction: float = 1.0
    sr_pair_fraction: float = 0.0
    sr_policies_per_pair: int = 0
    sr_waypoints: int = 1

    def __post_init__(self):
        for name in ("te_pair_fraction", "mpls_pair_fraction",
                     "sr_pair_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0,1]: {value}")
        for name in ("te_tunnels_per_pair", "sr_policies_per_pair",
                     "sr_waypoints"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative {name}")

    @property
    def uses_te(self) -> bool:
        """True when any RSVP-TE tunnels are configured."""
        return (self.enabled and self.te_pair_fraction > 0
                and self.te_tunnels_per_pair > 0)

    @property
    def uses_sr(self) -> bool:
        """True when any SR-MPLS policies are configured."""
        return (self.enabled and self.sr_pair_fraction > 0
                and self.sr_policies_per_pair > 0)


OFF = MplsPolicy(enabled=False)


@dataclass(frozen=True)
class AsSpec:
    """Static description of one simulated AS.

    Attributes:
        asn: autonomous system number.
        name: human-readable name.
        tier: hierarchy role (tier-1 / transit / stub).
        router_count: number of routers to generate.
        border_count: how many of them are eBGP borders.
        vendor: dominant vendor profile name.
        ecmp_breadth: structural path diversity knob — roughly the number
            of equal-cost router-disjoint paths the generated core offers
            between border pairs (1 = none: chains/trees only).
        parallel_link_fraction: fraction of core links doubled into
            parallel bundles (the Parallel-Links ECMP subclass source).
        unresponsive_fraction: fraction of routers that never answer
            probes (anonymous hops => incomplete LSPs).
        prefix_count: /24s this AS originates (traceroute destinations).
        foreign_address_fraction: fraction of internal link subnets
            allocated from another org's address block (a real-world
            addressing quirk; makes some LSPs span two origin ASes and
            exercises the IntraAS filter).
    """

    asn: int
    name: str = ""
    tier: Tier = Tier.STUB
    router_count: int = 4
    border_count: int = 2
    vendor: str = "cisco"
    ecmp_breadth: int = 1
    parallel_link_fraction: float = 0.0
    unresponsive_fraction: float = 0.0
    prefix_count: int = 1
    foreign_address_fraction: float = 0.0

    def __post_init__(self):
        if self.router_count < 1:
            raise ValueError(f"AS{self.asn}: need at least one router")
        if not 1 <= self.border_count <= self.router_count:
            raise ValueError(
                f"AS{self.asn}: border_count {self.border_count} "
                f"not in [1, {self.router_count}]"
            )
        if self.ecmp_breadth < 1:
            raise ValueError(f"AS{self.asn}: ecmp_breadth must be >= 1")
        for name in ("parallel_link_fraction", "unresponsive_fraction",
                     "foreign_address_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"AS{self.asn}: {name} out of [0,1]")


@dataclass
class UniverseSpec:
    """The whole simulated Internet plus its measurement apparatus.

    Attributes:
        ases: all AS specs.
        c2p_edges: (customer, provider) AS pairs.
        p2p_edges: peering AS pairs.
        monitor_ases: ASNs hosting Archipelago-like vantage points.
        seed: master seed; all randomness derives from it.
    """

    ases: List[AsSpec] = field(default_factory=list)
    c2p_edges: List[Tuple[int, int]] = field(default_factory=list)
    p2p_edges: List[Tuple[int, int]] = field(default_factory=list)
    monitor_ases: List[int] = field(default_factory=list)
    seed: int = 0

    def spec_of(self, asn: int) -> AsSpec:
        """Look up an AS spec by ASN."""
        for spec in self.ases:
            if spec.asn == asn:
                return spec
        raise KeyError(f"no AS {asn} in universe")

    def validate(self) -> None:
        """Check cross-references; raises ValueError on dangling ASNs."""
        known = {spec.asn for spec in self.ases}
        if len(known) != len(self.ases):
            raise ValueError("duplicate ASNs in universe")
        for customer, provider in self.c2p_edges:
            if customer not in known or provider not in known:
                raise ValueError(f"dangling c2p edge {customer}->{provider}")
        for left, right in self.p2p_edges:
            if left not in known or right not in known:
                raise ValueError(f"dangling p2p edge {left}--{right}")
        for asn in self.monitor_ases:
            if asn not in known:
                raise ValueError(f"monitor AS {asn} not in universe")
