"""The forwarding plane: computing the hop-by-hop path of a probe flow.

Given the current network state, :class:`DataPlane` computes the sequence
of hop observations a Paris-traceroute flow produces: for every traversed
router, the interface address it would reply from and the MPLS label stack
the probe carried when its TTL expired there (what RFC 4950 quotes).

Paris semantics make the path a pure function of (flow key, network
state), so per-AS segments are enumerated once and cached; a flow then
just selects one equal-cost segment by hash.  Segments depend only on
the immutable intra-AS topology (plus any links flapped away this era),
so the cache — a :class:`~repro.sim.network.SegmentCache` hosted on the
:class:`~repro.sim.network.Internet` — is *shared* across every
DataPlane of a study: rebuilding the DataPlane each snapshot changes the
era (the flap/churn draw) without throwing the warm path enumerations
away.

On top of the internet-scoped segment cache sit two **era-scoped**
memoizations (DESIGN §8), both exact:

* a :class:`RouteCache` memoizing the destination-based decisions —
  IP2AS origin, BGP AS-path and per-AS egress selection — per
  destination /24 (every probe of a traceroute, and every monitor pair
  aimed at the same /24, repeats them verbatim);
* a hop-materialization cache in :meth:`DataPlane._walk_as` keyed by
  ``(asn, entry, target, segment index | TE session, internal)``:
  within one era an LSP's observable hops are flow-invariant, so the
  frozen :class:`HopObs` tuples are built once and shared as flyweights
  across every trace that rides the same LSP.

Both caches die with the DataPlane because flap/churn draws are per era;
the segment cache survives because segments are era-independent modulo
the flapped-link set (which keys its degraded entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..igp.ecmp import flow_hash
from ..mpls.fec import PrefixFec
from ..mpls.vendor import get_profile
from ..net.ip import Prefix
from ..obs import get_registry
from .network import (
    AsNetwork,
    Internet,
    SegmentCache,
    destination_prefix,
)

_ROUTE_HITS = get_registry().counter(
    "route_cache_hits_total",
    "Destination /24 route resolutions served from a RouteCache")
_ROUTE_MISSES = get_registry().counter(
    "route_cache_misses_total",
    "Route resolutions computed and memoized (first probe to a /24)")
_HOP_HITS = get_registry().counter(
    "hop_cache_hits_total",
    "Per-AS hop materializations served from the era's hop cache")
_HOP_MISSES = get_registry().counter(
    "hop_cache_misses_total",
    "Per-AS hop sequences materialized and memoized")

# Hop-cache key tags: which forwarding branch materialized the entry.
_TE, _LDP, _IP = 0, 1, 2


@dataclass(frozen=True)
class HopObs:
    """One router the probe crosses, as traceroute would observe it.

    Attributes:
        asn: AS owning the router.
        router_id: router id inside that AS (-1 for the destination host).
        address: interface address the reply carries.
        labels: label values on the probe when it arrived here (top
            first); empty outside tunnels and at PHP exit hops.
        responsive: whether the router replies to probes at all.
        quotes_labels: whether the router implements RFC 4950.
        quoted_ttl: the IP-TTL the ICMP reply quotes (qTTL).  Inside a
            ttl-propagating tunnel the IP header stops being
            decremented, so the j-th LSR quotes j+1 — the implicit-
            tunnel signature.
        lse_ttl: LSE-TTL carried when the probe expired here.  1 under
            ttl-propagate; in *opaque* tunnels (RFC 4950 without
            propagation) the single revealing hop quotes
            255 - tunnel length + 1.
    """

    asn: int
    router_id: int
    address: int
    labels: Tuple[int, ...] = ()
    responsive: bool = True
    quotes_labels: bool = True
    quoted_ttl: int = 1
    lse_ttl: int = 1


class UnreachableError(RuntimeError):
    """Raised when no valley-free route exists towards the destination."""


class RouteCache:
    """Destination-based routing decisions, memoized per /24.

    IP2AS origin lookup, the BGP AS-path and every transit AS's egress
    (plus the neighbor border's :class:`HopObs`) are functions of the
    destination /24 alone — never of the flow key — so one resolution
    serves every probe of every traceroute towards that /24 within an
    era.  ``hits``/``misses`` count once per ``forward_path`` call, so
    ``hits + misses`` reconciles exactly with the traces issued over
    this cache (including unreachable destinations, whose negative
    entries are memoized too).
    """

    __slots__ = ("hits", "misses", "routes", "egress")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        # (src_asn, dst_addr >> 8) -> (dst_origin | None, as_path | None,
        # dst_prefix); origin None = no simulated AS, path None = no route.
        self.routes: Dict[Tuple[int, int], tuple] = {}
        # (asn, next_asn, dst /24 network) -> (egress router, remote
        # router, remote border HopObs)
        self.egress: Dict[Tuple[int, int, int], tuple] = {}


class _FecLabels:
    """``label_of`` for an LDP FEC: router -> label from its LFIB.

    A tiny callable object instead of a per-probe closure: the LFIB
    accessor and FEC are bound once per LSP materialization.
    """

    __slots__ = ("_lfib", "_fec")

    def __init__(self, lfib, fec: PrefixFec):
        self._lfib = lfib
        self._fec = fec

    def __call__(self, router: int) -> Optional[int]:
        return self._lfib(router).label_for(self._fec)


class DataPlane:
    """Flow-level forwarding over one frozen network state.

    ``era`` identifies the snapshot being forwarded; together with
    ``flap_rate`` it selects a deterministic set of transiently failed
    links (withdrawn from the IGP for this era only), the routing noise
    that the paper's Persistence filter exists to remove.

    ``memoize`` enables the per-era route/hop caches (on by default —
    they are exact, so results are bit-identical either way; switching
    them off exists for benchmarking the uncached reference).  The
    DataPlane must not outlive control-plane mutations: rebuild it after
    any ``apply_policies``/``tick``/label churn, as the simulators do.
    """

    def __init__(self, internet: Internet, era: int = 0,
                 flap_rate: float = 0.0, egress_noise: float = 0.0,
                 cache: Optional[SegmentCache] = None,
                 memoize: bool = True):
        if not 0.0 <= flap_rate < 1.0:
            raise ValueError(f"flap_rate out of [0,1): {flap_rate}")
        if not 0.0 <= egress_noise < 1.0:
            raise ValueError(
                f"egress_noise out of [0,1): {egress_noise}")
        self.internet = internet
        self.era = era
        self.flap_rate = flap_rate
        # Hot-potato churn: per era, this share of (AS, neighbor,
        # destination) egress decisions shifts to another peering link,
        # rerouting everything downstream of it — the second component
        # of the routing noise the Persistence filter removes.
        self.egress_noise = egress_noise
        # Equal-cost segments: by default the internet-wide shared
        # cache (segments are era-independent modulo flapped links).
        self._cache = cache if cache is not None \
            else internet.segment_cache
        self._flapped: Dict[int, frozenset] = {}
        self.memoize = memoize
        self.route_cache: Optional[RouteCache] = \
            RouteCache() if memoize else None
        self._hop_cache: Optional[Dict[tuple, Tuple[HopObs, ...]]] = \
            {} if memoize else None
        self.hop_cache_hits = 0
        self.hop_cache_misses = 0
        self._flushed = [0, 0, 0, 0]

    def flapped_links(self, asn: int) -> frozenset:
        """Link ids of one AS that are down during this era."""
        cached = self._flapped.get(asn)
        if cached is None:
            bound = int(self.flap_rate * 10_000)
            cached = frozenset(
                link_id
                for link_id in self.internet.network(asn).topology.links
                if flow_hash(0xF1A9, self.era, asn, link_id)
                % 10_000 < bound
            ) if bound else frozenset()
            self._flapped[asn] = cached
        return cached

    # -- public API ----------------------------------------------------------

    def forward_path(self, src_asn: int, src_router: int, src_addr: int,
                     dst_addr: int, flow_id: int = 0) -> List[HopObs]:
        """All hops from (but excluding) the source attachment router.

        The first element is the hop *after* the source router inside the
        source AS (traceroute's own first hop — the attachment gateway —
        is added by the traceroute engine, which knows its LAN address).
        Raises :class:`UnreachableError` when BGP offers no route.

        ``flow_id`` models the transport fields a flow-varying prober
        (MDA) mutates: it changes per-hop ECMP choices but — like real
        port variation — neither the BGP decision nor a TE tunnel
        selection, which are destination-based.
        """
        dst_origin, as_path, dst_prefix = \
            self._resolve_route(src_asn, dst_addr)
        if dst_origin is None:
            raise UnreachableError(
                f"destination {dst_addr} maps to no simulated AS"
            )
        if as_path is None:
            raise UnreachableError(
                f"no route from AS{src_asn} to AS{dst_origin}"
            )
        flow_digest = flow_hash(src_addr, dst_addr, flow_id)

        hops: List[HopObs] = []
        entry_router = src_router
        for position, asn in enumerate(as_path):
            network = self.internet.network(asn)
            last_as = position == len(as_path) - 1
            if last_as:
                target = self._attachment_router(network, dst_addr)
                hops.extend(self._walk_as(network, entry_router, target,
                                          dst_prefix, flow_digest,
                                          internal=True))
                hops.append(HopObs(asn=asn, router_id=-1, address=dst_addr,
                                   labels=(), responsive=True,
                                   quotes_labels=False))
                break
            next_asn = as_path[position + 1]
            egress, remote_router, remote_hop = \
                self._transit_step(asn, next_asn, dst_prefix)
            hops.extend(self._walk_as(network, entry_router, egress,
                                      dst_prefix, flow_digest,
                                      internal=False))
            # The inter-AS step: the neighbor's border replies with its
            # side of the peering link.
            hops.append(remote_hop)
            entry_router = remote_router
        return hops

    def flush_cache_metrics(self) -> Dict[str, int]:
        """Publish cache hit/miss deltas to the :mod:`repro.obs` registry.

        Deltas since the last flush, so repeated flushes (one per
        ``trace_all``) never double-count.  These counters describe
        per-process cache behaviour: serial and sharded runs split the
        same probe stream over differently warmed caches, so the
        checkpoint layer strips them from persisted metrics deltas
        (DESIGN §8) — total probe/trace counters stay layout-invariant.

        Returns this flush's deltas keyed by layer/side (e.g.
        ``route_hits``) so the traceroute engine can fold them into one
        ``cache.flush`` flight-recorder event.
        """
        route = self.route_cache
        if route is None:
            return {}
        flushed = self._flushed
        deltas: Dict[str, int] = {}
        for index, (name, counter, value) in enumerate((
                ("route_hits", _ROUTE_HITS, route.hits),
                ("route_misses", _ROUTE_MISSES, route.misses),
                ("hop_hits", _HOP_HITS, self.hop_cache_hits),
                ("hop_misses", _HOP_MISSES, self.hop_cache_misses))):
            delta = value - flushed[index]
            if delta:
                counter.inc(delta)
            deltas[name] = delta
            flushed[index] = value
        return deltas

    # -- helpers -------------------------------------------------------------

    def _resolve_route(self, src_asn: int, dst_addr: int) -> tuple:
        """(origin, AS-path, /24 prefix) for a destination, memoized.

        Origin None means the address maps to no simulated AS; path
        None means BGP offers no route — callers raise the matching
        :class:`UnreachableError` with the *probed* address, so error
        text is identical whether or not the negative entry was cached.
        """
        cache = self.route_cache
        if cache is None:
            return self._compute_route(src_asn, dst_addr)
        key = (src_asn, dst_addr >> 8)
        entry = cache.routes.get(key)
        if entry is None:
            cache.misses += 1
            entry = self._compute_route(src_asn, dst_addr)
            cache.routes[key] = entry
        else:
            cache.hits += 1
        return entry

    def _compute_route(self, src_asn: int, dst_addr: int) -> tuple:
        dst_origin = self.internet.ip2as.lookup_single(dst_addr)
        if dst_origin not in self.internet.networks:
            return (None, None, None)
        as_path = self.internet.routing.as_path(src_asn, dst_origin)
        return (dst_origin, as_path, Prefix.from_host(dst_addr, 24))

    def _transit_step(self, asn: int, next_asn: int,
                      dst_prefix: Prefix) -> tuple:
        """(egress router, remote router, remote HopObs), memoized.

        The egress decision and the neighbor border's observation are
        destination-/24-based, so one resolution serves every flow.
        """
        cache = self.route_cache
        if cache is not None:
            key = (asn, next_asn, dst_prefix.network)
            step = cache.egress.get(key)
            if step is not None:
                return step
        (egress, _egress_addr, _remote_asn, remote_router,
         remote_addr) = self._egress_towards(asn, next_asn, dst_prefix)
        remote_hop = self._plain_hop(self.internet.network(next_asn),
                                     remote_router, remote_addr)
        step = (egress, remote_router, remote_hop)
        if cache is not None:
            cache.egress[key] = step
        return step

    def _egress_towards(self, asn: int, next_asn: int,
                        dst_prefix: Prefix):
        """Egress link selection, with per-era hot-potato churn."""
        links = self.internet.network(asn).interas.get(next_asn)
        if not links:
            raise UnreachableError(
                f"AS{asn} has no link to AS{next_asn}")
        index = flow_hash(dst_prefix.network, asn, next_asn) % len(links)
        if self.egress_noise and len(links) > 1:
            churned = flow_hash(0xB6, self.era, asn, next_asn,
                                dst_prefix.network) % 10_000 \
                < self.egress_noise * 10_000
            if churned:
                index = (index + 1) % len(links)
        return links[index]

    def _attachment_router(self, network: AsNetwork, dst_addr: int) -> int:
        prefix_index = (dst_addr >> 8) & 0xFF
        return network.attachment_of(prefix_index)

    def _plain_hop(self, network: AsNetwork, router_id: int,
                   address: int, labels: Tuple[int, ...] = (),
                   quoted_ttl: int = 1, lse_ttl: int = 1) -> HopObs:
        router = network.topology.routers[router_id]
        return HopObs(
            asn=network.asn,
            router_id=router_id,
            address=address,
            labels=labels,
            responsive=router.responsive,
            quotes_labels=get_profile(router.vendor).rfc4950,
            quoted_ttl=quoted_ttl,
            lse_ttl=lse_ttl,
        )

    def _segments(self, network: AsNetwork, entry: int, target: int
                  ) -> List[list]:
        """Equal-cost (router, link) step sequences from entry to target.

        When the AS has flapped links this era, the DAG is recomputed on
        the reduced topology (falling back to the intact one if the flap
        would disconnect the pair — a flap on the only path reconverges
        before traffic is affected at our observation timescale).
        """
        flapped = self.flapped_links(network.asn)
        if flapped:
            return self._cache.degraded_segments(network, entry,
                                                 target, flapped)
        return self._cache.base_segments(network, entry, target)

    def _pick_segment(self, network: AsNetwork, entry: int, target: int,
                      flow_digest: int) -> Tuple[int, list]:
        """The flow's equal-cost segment, plus its index (the flow-
        dependent part of a hop-cache key)."""
        segments = self._segments(network, entry, target)
        if not segments:
            raise UnreachableError(
                f"AS{network.asn}: router {target} unreachable "
                f"from {entry}"
            )
        index = flow_hash(flow_digest, network.asn, entry, target) \
            % len(segments)
        return index, segments[index]

    def _cached_hops(self, key: tuple) -> Optional[Tuple[HopObs, ...]]:
        cache = self._hop_cache
        if cache is None:
            return None
        hops = cache.get(key)
        if hops is not None:
            self.hop_cache_hits += 1
        return hops

    def _store_hops(self, key: tuple,
                    hops: Tuple[HopObs, ...]) -> Tuple[HopObs, ...]:
        if self._hop_cache is not None:
            self.hop_cache_misses += 1
            self._hop_cache[key] = hops
        return hops

    def _walk_as(self, network: AsNetwork, entry: int, target: int,
                 dst_prefix: Prefix, flow_digest: int,
                 internal: bool) -> Sequence[HopObs]:
        """Hops after the entry router, up to and including the target.

        Chooses between a TE tunnel, an LDP LSP, and plain IP forwarding
        according to the AS's current policy; emits label observations
        exactly as the probes would collect them.  Materialized hop
        tuples are cached per (AS pair, chosen LSP/segment): all flow
        dependence is captured by the segment index (or, for TE, the
        destination-selected session), so cached entries are exact and
        the frozen :class:`HopObs` flyweights can be shared across
        traces.  SR hops are never cached — their shrinking label
        stacks depend on the flow's ECMP walk itself.
        """
        if entry == target:
            return ()
        policy = network.policy
        if policy.enabled and (policy.ldp or policy.uses_te
                               or policy.uses_sr):
            session = network.te_tunnel_for(entry, target, dst_prefix)
            if session is not None:
                key = (network.asn, entry, target, _TE,
                       session.fec.tunnel_id, session.fec.instance,
                       internal)
                hops = self._cached_hops(key)
                if hops is None:
                    hops = self._store_hops(key, tuple(self._mpls_hops(
                        network, session.route, session.labels.get)))
                return hops
            if not internal:
                sr_policy = network.sr_policy_for(entry, target,
                                                  dst_prefix)
                if sr_policy is not None:
                    return self._sr_hops(network, sr_policy, flow_digest)
            use_ldp = policy.ldp and (
                policy.ldp_internal if internal
                else network.ldp_pair_active(entry, target)
            )
            if use_ldp:
                fec = network.transit_fec(target)
                if fec is not None:
                    index, steps = self._pick_segment(
                        network, entry, target, flow_digest)
                    key = (network.asn, entry, target, _LDP, index,
                           internal)
                    hops = self._cached_hops(key)
                    if hops is None:
                        hops = self._store_hops(key, tuple(
                            self._mpls_hops(
                                network, steps,
                                _FecLabels(network.labels.lfib, fec))))
                    return hops
        index, steps = self._pick_segment(network, entry, target,
                                          flow_digest)
        key = (network.asn, entry, target, _IP, index, internal)
        hops = self._cached_hops(key)
        if hops is None:
            hops = self._store_hops(key, tuple(
                self._plain_hop(network, router, link.address_of(router))
                for router, link in steps))
        return hops

    def _sr_hops(self, network: AsNetwork, sr_policy,
                 flow_digest: int) -> List[HopObs]:
        """Observations along one segment-routing policy.

        Unlike LDP/RSVP-TE, probes carry shrinking multi-entry stacks:
        each hop quotes whatever remained when its TTL expired.
        """
        steps = network.sr.walk(sr_policy, flow_digest)
        if not network.policy.ttl_propagate:
            router, link, _stack = steps[-1]
            return [self._plain_hop(network, router,
                                    link.address_of(router))]
        return [
            self._plain_hop(network, router, link.address_of(router),
                            labels=stack,
                            quoted_ttl=position + 2 if stack else 1)
            for position, (router, link, stack) in enumerate(steps)
        ]

    def _mpls_hops(self, network: AsNetwork, steps: Sequence[tuple],
                   label_of) -> List[HopObs]:
        """Observations along one LSP.

        ``label_of(router)`` returns the label that router allocated for
        the FEC/session (None at a PHP egress).

        Without ttl-propagate the LSRs never see the probe expire and
        only the hop past the tunnel appears.  If that router implements
        RFC 4950, the tunnel is *opaque*: the one revealing hop quotes
        the LSE with its barely-decremented TTL (255 - length + 1),
        betraying the tunnel's length; without RFC 4950 the tunnel is
        fully *invisible*.

        With ttl-propagate, the IP header stops being decremented inside
        the tunnel, so the j-th LSR's ICMP reply quotes IP-TTL j+1 — the
        qTTL signature that reveals *implicit* tunnels (labels absent)
        and is also present, redundantly, on explicit ones.
        """
        if not network.policy.ttl_propagate:
            router, link = steps[-1]
            if len(steps) >= 2:
                previous = steps[-2][0]
                label = label_of(previous)
            else:
                label = None
            if label is not None:
                return [self._plain_hop(
                    network, router, link.address_of(router),
                    labels=(label,),
                    lse_ttl=255 - (len(steps) - 1),
                )]
            return [self._plain_hop(network, router,
                                    link.address_of(router))]
        hops = []
        for position, (router, link) in enumerate(steps):
            label = label_of(router)
            labels = (label,) if label is not None else ()
            hops.append(self._plain_hop(
                network, router, link.address_of(router),
                labels=labels,
                quoted_ttl=position + 2 if labels else 1,
            ))
        return hops
