"""The forwarding plane: computing the hop-by-hop path of a probe flow.

Given the current network state, :class:`DataPlane` computes the sequence
of hop observations a Paris-traceroute flow produces: for every traversed
router, the interface address it would reply from and the MPLS label stack
the probe carried when its TTL expired there (what RFC 4950 quotes).

Paris semantics make the path a pure function of (flow key, network
state), so per-AS segments are enumerated once and cached; a flow then
just selects one equal-cost segment by hash.  Segments depend only on
the immutable intra-AS topology (plus any links flapped away this era),
so the cache — a :class:`~repro.sim.network.SegmentCache` hosted on the
:class:`~repro.sim.network.Internet` — is *shared* across every
DataPlane of a study: rebuilding the DataPlane each snapshot changes the
era (the flap/churn draw) without throwing the warm path enumerations
away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..igp.ecmp import flow_hash
from ..mpls.fec import PrefixFec
from ..mpls.vendor import get_profile
from ..net.ip import Prefix
from .network import (
    AsNetwork,
    Internet,
    SegmentCache,
    destination_prefix,
)


@dataclass(frozen=True)
class HopObs:
    """One router the probe crosses, as traceroute would observe it.

    Attributes:
        asn: AS owning the router.
        router_id: router id inside that AS (-1 for the destination host).
        address: interface address the reply carries.
        labels: label values on the probe when it arrived here (top
            first); empty outside tunnels and at PHP exit hops.
        responsive: whether the router replies to probes at all.
        quotes_labels: whether the router implements RFC 4950.
        quoted_ttl: the IP-TTL the ICMP reply quotes (qTTL).  Inside a
            ttl-propagating tunnel the IP header stops being
            decremented, so the j-th LSR quotes j+1 — the implicit-
            tunnel signature.
        lse_ttl: LSE-TTL carried when the probe expired here.  1 under
            ttl-propagate; in *opaque* tunnels (RFC 4950 without
            propagation) the single revealing hop quotes
            255 - tunnel length + 1.
    """

    asn: int
    router_id: int
    address: int
    labels: Tuple[int, ...] = ()
    responsive: bool = True
    quotes_labels: bool = True
    quoted_ttl: int = 1
    lse_ttl: int = 1


class UnreachableError(RuntimeError):
    """Raised when no valley-free route exists towards the destination."""


class DataPlane:
    """Flow-level forwarding over one frozen network state.

    ``era`` identifies the snapshot being forwarded; together with
    ``flap_rate`` it selects a deterministic set of transiently failed
    links (withdrawn from the IGP for this era only), the routing noise
    that the paper's Persistence filter exists to remove.
    """

    def __init__(self, internet: Internet, era: int = 0,
                 flap_rate: float = 0.0, egress_noise: float = 0.0,
                 cache: Optional[SegmentCache] = None):
        if not 0.0 <= flap_rate < 1.0:
            raise ValueError(f"flap_rate out of [0,1): {flap_rate}")
        if not 0.0 <= egress_noise < 1.0:
            raise ValueError(
                f"egress_noise out of [0,1): {egress_noise}")
        self.internet = internet
        self.era = era
        self.flap_rate = flap_rate
        # Hot-potato churn: per era, this share of (AS, neighbor,
        # destination) egress decisions shifts to another peering link,
        # rerouting everything downstream of it — the second component
        # of the routing noise the Persistence filter removes.
        self.egress_noise = egress_noise
        # Equal-cost segments: by default the internet-wide shared
        # cache (segments are era-independent modulo flapped links).
        self._cache = cache if cache is not None \
            else internet.segment_cache
        self._flapped: Dict[int, frozenset] = {}

    def flapped_links(self, asn: int) -> frozenset:
        """Link ids of one AS that are down during this era."""
        cached = self._flapped.get(asn)
        if cached is None:
            bound = int(self.flap_rate * 10_000)
            cached = frozenset(
                link_id
                for link_id in self.internet.network(asn).topology.links
                if flow_hash(0xF1A9, self.era, asn, link_id)
                % 10_000 < bound
            ) if bound else frozenset()
            self._flapped[asn] = cached
        return cached

    # -- public API ----------------------------------------------------------

    def forward_path(self, src_asn: int, src_router: int, src_addr: int,
                     dst_addr: int, flow_id: int = 0) -> List[HopObs]:
        """All hops from (but excluding) the source attachment router.

        The first element is the hop *after* the source router inside the
        source AS (traceroute's own first hop — the attachment gateway —
        is added by the traceroute engine, which knows its LAN address).
        Raises :class:`UnreachableError` when BGP offers no route.

        ``flow_id`` models the transport fields a flow-varying prober
        (MDA) mutates: it changes per-hop ECMP choices but — like real
        port variation — neither the BGP decision nor a TE tunnel
        selection, which are destination-based.
        """
        dst_origin = self.internet.ip2as.lookup_single(dst_addr)
        if dst_origin not in self.internet.networks:
            raise UnreachableError(
                f"destination {dst_addr} maps to no simulated AS"
            )
        as_path = self.internet.routing.as_path(src_asn, dst_origin)
        if as_path is None:
            raise UnreachableError(
                f"no route from AS{src_asn} to AS{dst_origin}"
            )
        dst_prefix = Prefix.from_host(dst_addr, 24)
        flow_digest = flow_hash(src_addr, dst_addr, flow_id)

        hops: List[HopObs] = []
        entry_router = src_router
        for position, asn in enumerate(as_path):
            network = self.internet.network(asn)
            last_as = position == len(as_path) - 1
            if last_as:
                target = self._attachment_router(network, dst_addr)
                hops.extend(self._walk_as(network, entry_router, target,
                                          dst_prefix, flow_digest,
                                          internal=True))
                hops.append(HopObs(asn=asn, router_id=-1, address=dst_addr,
                                   labels=(), responsive=True,
                                   quotes_labels=False))
                break
            next_asn = as_path[position + 1]
            (egress, _egress_addr, _remote_asn, remote_router,
             remote_addr) = self._egress_towards(asn, next_asn,
                                                 dst_prefix)
            hops.extend(self._walk_as(network, entry_router, egress,
                                      dst_prefix, flow_digest,
                                      internal=False))
            # The inter-AS step: the neighbor's border replies with its
            # side of the peering link.
            next_network = self.internet.network(next_asn)
            hops.append(self._plain_hop(next_network, remote_router,
                                        remote_addr))
            entry_router = remote_router
        return hops

    # -- helpers -------------------------------------------------------------

    def _egress_towards(self, asn: int, next_asn: int,
                        dst_prefix: Prefix):
        """Egress link selection, with per-era hot-potato churn."""
        links = self.internet.network(asn).interas.get(next_asn)
        if not links:
            raise UnreachableError(
                f"AS{asn} has no link to AS{next_asn}")
        index = flow_hash(dst_prefix.network, asn, next_asn) % len(links)
        if self.egress_noise and len(links) > 1:
            churned = flow_hash(0xB6, self.era, asn, next_asn,
                                dst_prefix.network) % 10_000 \
                < self.egress_noise * 10_000
            if churned:
                index = (index + 1) % len(links)
        return links[index]

    def _attachment_router(self, network: AsNetwork, dst_addr: int) -> int:
        prefix_index = (dst_addr >> 8) & 0xFF
        return network.attachment_of(prefix_index)

    def _plain_hop(self, network: AsNetwork, router_id: int,
                   address: int, labels: Tuple[int, ...] = (),
                   quoted_ttl: int = 1, lse_ttl: int = 1) -> HopObs:
        router = network.topology.routers[router_id]
        return HopObs(
            asn=network.asn,
            router_id=router_id,
            address=address,
            labels=labels,
            responsive=router.responsive,
            quotes_labels=get_profile(router.vendor).rfc4950,
            quoted_ttl=quoted_ttl,
            lse_ttl=lse_ttl,
        )

    def _segments(self, network: AsNetwork, entry: int, target: int
                  ) -> List[list]:
        """Equal-cost (router, link) step sequences from entry to target.

        When the AS has flapped links this era, the DAG is recomputed on
        the reduced topology (falling back to the intact one if the flap
        would disconnect the pair — a flap on the only path reconverges
        before traffic is affected at our observation timescale).
        """
        flapped = self.flapped_links(network.asn)
        if flapped:
            return self._cache.degraded_segments(network, entry,
                                                 target, flapped)
        return self._cache.base_segments(network, entry, target)

    def _pick_segment(self, network: AsNetwork, entry: int, target: int,
                      flow_digest: int) -> list:
        segments = self._segments(network, entry, target)
        if not segments:
            raise UnreachableError(
                f"AS{network.asn}: router {target} unreachable "
                f"from {entry}"
            )
        index = flow_hash(flow_digest, network.asn, entry, target) \
            % len(segments)
        return segments[index]

    def _walk_as(self, network: AsNetwork, entry: int, target: int,
                 dst_prefix: Prefix, flow_digest: int,
                 internal: bool) -> List[HopObs]:
        """Hops after the entry router, up to and including the target.

        Chooses between a TE tunnel, an LDP LSP, and plain IP forwarding
        according to the AS's current policy; emits label observations
        exactly as the probes would collect them.
        """
        if entry == target:
            return []
        policy = network.policy
        if policy.enabled and (policy.ldp or policy.uses_te
                               or policy.uses_sr):
            session = network.te_tunnel_for(entry, target, dst_prefix)
            if session is not None:
                return self._mpls_hops(
                    network, [step for step in session.route],
                    label_of=lambda r: session.labels.get(r),
                )
            if not internal:
                sr_policy = network.sr_policy_for(entry, target,
                                                  dst_prefix)
                if sr_policy is not None:
                    return self._sr_hops(network, sr_policy, flow_digest)
            use_ldp = policy.ldp and (
                policy.ldp_internal if internal
                else network.ldp_pair_active(entry, target)
            )
            if use_ldp:
                fec = network.transit_fec(target)
                if fec is not None:
                    steps = self._pick_segment(network, entry, target,
                                               flow_digest)
                    lfib = network.labels.lfib
                    return self._mpls_hops(
                        network, steps,
                        label_of=lambda r: lfib(r).label_for(fec),
                    )
        steps = self._pick_segment(network, entry, target, flow_digest)
        return [
            self._plain_hop(network, router, link.address_of(router))
            for router, link in steps
        ]

    def _sr_hops(self, network: AsNetwork, sr_policy,
                 flow_digest: int) -> List[HopObs]:
        """Observations along one segment-routing policy.

        Unlike LDP/RSVP-TE, probes carry shrinking multi-entry stacks:
        each hop quotes whatever remained when its TTL expired.
        """
        steps = network.sr.walk(sr_policy, flow_digest)
        if not network.policy.ttl_propagate:
            router, link, _stack = steps[-1]
            return [self._plain_hop(network, router,
                                    link.address_of(router))]
        return [
            self._plain_hop(network, router, link.address_of(router),
                            labels=stack,
                            quoted_ttl=position + 2 if stack else 1)
            for position, (router, link, stack) in enumerate(steps)
        ]

    def _mpls_hops(self, network: AsNetwork, steps: Sequence[tuple],
                   label_of) -> List[HopObs]:
        """Observations along one LSP.

        ``label_of(router)`` returns the label that router allocated for
        the FEC/session (None at a PHP egress).

        Without ttl-propagate the LSRs never see the probe expire and
        only the hop past the tunnel appears.  If that router implements
        RFC 4950, the tunnel is *opaque*: the one revealing hop quotes
        the LSE with its barely-decremented TTL (255 - length + 1),
        betraying the tunnel's length; without RFC 4950 the tunnel is
        fully *invisible*.

        With ttl-propagate, the IP header stops being decremented inside
        the tunnel, so the j-th LSR's ICMP reply quotes IP-TTL j+1 — the
        qTTL signature that reveals *implicit* tunnels (labels absent)
        and is also present, redundantly, on explicit ones.
        """
        if not network.policy.ttl_propagate:
            router, link = steps[-1]
            if len(steps) >= 2:
                previous = steps[-2][0]
                label = label_of(previous)
            else:
                label = None
            if label is not None:
                return [self._plain_hop(
                    network, router, link.address_of(router),
                    labels=(label,),
                    lse_ttl=255 - (len(steps) - 1),
                )]
            return [self._plain_hop(network, router,
                                    link.address_of(router))]
        hops = []
        for position, (router, link) in enumerate(steps):
            label = label_of(router)
            labels = (label,) if label is not None else ()
            hops.append(self._plain_hop(
                network, router, link.address_of(router),
                labels=labels,
                quoted_ttl=position + 2 if labels else 1,
            ))
        return hops
