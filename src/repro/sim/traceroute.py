"""Paris-traceroute engine over the simulated data plane.

Produces :class:`repro.traces.Trace` objects with the exact observable
semantics of ICMP-Paris traceroute against RFC 4950 routers:

* the flow key is held constant across the TTL sweep, so the probe follows
  one consistent ECMP branch (the Paris property);
* a router whose probe TTL expires replies from its incoming interface,
  quoting the received MPLS label stack if it implements RFC 4950;
* unresponsive routers appear as anonymous hops; after ``gap_limit``
  consecutive silent hops the trace is abandoned;
* transient per-probe loss is drawn deterministically from the engine
  seed, so a cycle's dataset is reproducible yet differs between cycles.

The engine memoizes the decoded quoted label stack per ``(labels,
LSE-TTL)`` pair: the RFC 4884/4950 reply bytes depend only on the MPLS
object (the quoted probe datagram is skipped by the decoder), so every
probe expiring with the same stack decodes to the same tuple — encoding
once per distinct stack instead of once per probe is bit-identical.
Like the DataPlane's route/hop caches, it is gated on
``dataplane.memoize`` and its counters are flushed to :mod:`repro.obs`
after each ``trace_all``.
"""

from __future__ import annotations

from itertools import chain
from typing import List, Optional

from ..igp.ecmp import flow_hash
from ..mpls.lse import LabelStack, LabelStackEntry
from ..net.icmp import TimeExceeded, build_probe_quote
from ..obs import emit, get_registry, span
from ..traces import StopReason, Trace, TraceHop
from .dataplane import DataPlane, HopObs, UnreachableError
from .monitors import Monitor

_LOSS_SCALE = float(1 << 64)

_PROBES = get_registry().counter(
    "probes_total", "Traceroute probes issued (one per TTL)")
_PROBES_UNANSWERED = get_registry().counter(
    "probes_unanswered_total",
    "Probes with no reply (loss or unresponsive router)")
_TRACES = get_registry().counter(
    "traces_total", "Traceroutes completed, by stop reason")
_STACK_HITS = get_registry().counter(
    "quoted_stack_cache_hits_total",
    "ICMP quoted-stack decodes served from the engine's cache")
_STACK_MISSES = get_registry().counter(
    "quoted_stack_cache_misses_total",
    "ICMP quoted stacks encoded + decoded (first probe per stack)")


class TracerouteEngine:
    """Issues simulated Paris traceroutes over one frozen network state."""

    def __init__(self, dataplane: DataPlane, seed: int = 0,
                 loss_rate: float = 0.01, gap_limit: int = 5,
                 max_ttl: int = 30):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate out of [0,1): {loss_rate}")
        self.dataplane = dataplane
        self.seed = seed
        self.loss_rate = loss_rate
        self.gap_limit = gap_limit
        self.max_ttl = max_ttl
        self._stack_cache: Optional[dict] = \
            {} if dataplane.memoize else None
        self.stack_cache_hits = 0
        self.stack_cache_misses = 0
        self._flushed = [0, 0]

    def trace(self, monitor: Monitor, dst_addr: int,
              timestamp: float = 0.0) -> Trace:
        """Run one traceroute from a monitor towards a destination."""
        try:
            path = self.dataplane.forward_path(
                monitor.asn, monitor.attachment_router,
                monitor.src_addr, dst_addr,
            )
        except UnreachableError:
            _TRACES.inc(stop=StopReason.UNREACHABLE.value)
            return Trace(monitor=monitor.name, src=monitor.src_addr,
                         dst=dst_addr, timestamp=timestamp,
                         stop_reason=StopReason.UNREACHABLE, hops=[])

        first_hop = HopObs(asn=monitor.asn,
                           router_id=monitor.attachment_router,
                           address=monitor.gateway_addr)
        hops: List[TraceHop] = []
        silent_streak = 0
        stop = StopReason.TTL_EXHAUSTED
        for ttl, obs in enumerate(chain((first_hop,), path), start=1):
            if ttl > self.max_ttl:
                break
            hop = self._reply_for(monitor, dst_addr, ttl, obs)
            hops.append(hop)
            if hop.is_anonymous:
                silent_streak += 1
                if silent_streak >= self.gap_limit:
                    stop = StopReason.GAP_LIMIT
                    break
            else:
                silent_streak = 0
            if obs.router_id == -1 and not hop.is_anonymous:
                stop = StopReason.COMPLETED
                break
        _PROBES.inc(len(hops))
        _PROBES_UNANSWERED.inc(
            sum(1 for hop in hops if hop.is_anonymous))
        _TRACES.inc(stop=stop.value)
        return Trace(monitor=monitor.name, src=monitor.src_addr,
                     dst=dst_addr, timestamp=timestamp,
                     stop_reason=stop, hops=hops)

    def trace_all(self, pairs, timestamp: float = 0.0) -> List[Trace]:
        """Trace every (monitor, destination) pair of an iterable."""
        with span("sim.trace_all"):
            traces = [self.trace(monitor, dst, timestamp)
                      for monitor, dst in pairs]
            self.flush_cache_metrics()
            return traces

    def flush_cache_metrics(self) -> None:
        """Publish this engine's (and its dataplane's) cache counters.

        Deltas since the last flush; like the route/hop counters these
        are per-process observability and are stripped from persisted
        checkpoint deltas (DESIGN §8).  One combined ``cache.flush``
        event per non-empty flush goes to the flight recorder, with the
        per-layer deltas plus ``hits``/``misses`` totals — serial runs
        get their cache trajectory in the events file this way (sharded
        runs report cache totals in ``shard.done`` instead, since
        worker buses are process-local).
        """
        deltas = dict(self.dataplane.flush_cache_metrics())
        if self._stack_cache is not None:
            flushed = self._flushed
            for index, (name, counter, value) in enumerate((
                    ("stack_hits", _STACK_HITS, self.stack_cache_hits),
                    ("stack_misses", _STACK_MISSES,
                     self.stack_cache_misses))):
                delta = value - flushed[index]
                if delta:
                    counter.inc(delta)
                deltas[name] = delta
                flushed[index] = value
        hits = sum(value for name, value in deltas.items()
                   if name.endswith("_hits"))
        misses = sum(value for name, value in deltas.items()
                     if name.endswith("_misses"))
        if hits or misses:
            emit("cache.flush", hits=hits, misses=misses, **deltas)

    # -- internals -----------------------------------------------------------

    def _reply_for(self, monitor: Monitor, dst_addr: int, ttl: int,
                   obs: HopObs) -> TraceHop:
        if not obs.responsive or self._lost(monitor, dst_addr, ttl):
            return TraceHop(probe_ttl=ttl, address=None)
        stack = ()
        if obs.labels and obs.quotes_labels:
            cache = self._stack_cache
            if cache is None:
                stack = self._decode_stack(monitor, dst_addr, ttl, obs)
            else:
                key = (obs.labels, obs.lse_ttl)
                stack = cache.get(key)
                if stack is None:
                    self.stack_cache_misses += 1
                    stack = self._decode_stack(monitor, dst_addr, ttl,
                                               obs)
                    cache[key] = stack
                else:
                    self.stack_cache_hits += 1
        return TraceHop(
            probe_ttl=ttl,
            address=obs.address,
            rtt_ms=self._rtt(monitor, dst_addr, ttl),
            quoted_stack=stack,
            quoted_ttl=obs.quoted_ttl,
        )

    def _decode_stack(self, monitor: Monitor, dst_addr: int, ttl: int,
                      obs: HopObs) -> tuple:
        """Encode + re-decode the ICMP time-exceeded reply.

        The RFC 4884 structure carries an RFC 4950 MPLS object; parsing
        it back is the byte path a real traceroute implementation
        takes.  The decoded stack is a pure function of ``(obs.labels,
        obs.lse_ttl)`` — the quoted probe datagram is skipped by the
        decoder — which is what makes the per-stack cache exact.
        """
        wire_stack = LabelStack([
            LabelStackEntry(
                label=label,
                tc=0,
                bottom=(index == len(obs.labels) - 1),
                ttl=obs.lse_ttl,  # LSE-TTL the expiring probe wore
            )
            for index, label in enumerate(obs.labels)
        ])
        message = TimeExceeded(
            quoted=build_probe_quote(monitor.src_addr, dst_addr, ttl),
            stack=wire_stack,
        )
        return tuple(TimeExceeded.decode(message.encode()).stack)

    def _lost(self, monitor: Monitor, dst_addr: int, ttl: int) -> bool:
        if self.loss_rate <= 0.0:
            return False
        digest = flow_hash(self.seed, monitor.src_addr, dst_addr, ttl)
        return digest / _LOSS_SCALE < self.loss_rate

    def _rtt(self, monitor: Monitor, dst_addr: int, ttl: int) -> float:
        jitter = flow_hash(self.seed, 0x277, monitor.src_addr,
                           dst_addr, ttl) % 4000 / 1000.0
        return 1.0 + 1.8 * ttl + jitter
