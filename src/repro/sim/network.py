"""Assembly of the simulated Internet.

:class:`Internet` owns the AS graph, one :class:`AsNetwork` per AS (router
topology + IGP + MPLS control planes), the global addressing plan, and the
Routeviews-style IP2AS table.  The builder is fully deterministic: the same
:class:`~repro.sim.config.UniverseSpec` and seed produce byte-identical
networks, labels and addresses.

Addressing plan (all derived from the AS's index ``i`` in the spec list):

* infrastructure block ``10.i.0.0/16``:
  loopbacks in ``10.i.0.0/24``, internal link /31s from ``10.i.16.0/20``,
  inter-AS link /31s from ``10.i.240.0/20`` (owned by the lower-ASN side);
* originated (destination) prefixes ``50.i.j.0/24``;
* the "foreign addressing quirk": a fraction of internal link subnets is
  carved from ``172.16.i.0/24`` and registered in IP2AS under a different
  origin ASN, as happens with leased address space in the wild — LSPs
  crossing such links resolve to two origins and exercise LPR's IntraAS
  filter.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.asgraph import AsGraph, AsNode, Tier
from ..bgp.routing import BgpRouting
from ..igp.ecmp import flow_hash
from ..igp.spf import SpfTable, spf_to
from ..igp.topology import Link, Router, Topology
from ..mpls.fec import PrefixFec
from ..mpls.ldp import LdpEngine
from ..mpls.lfib import LabelManager
from ..mpls.rsvpte import RsvpTeEngine, TeSession
from ..mpls.srte import SegmentRoutingEngine, SrPolicy
from ..net.ip import Prefix, ip_to_int
from ..net.ip2as import Ip2AsMapper
from .config import AsSpec, MplsPolicy, UniverseSpec

_TEN = ip_to_int("10.0.0.0")
_DEST_BASE = ip_to_int("50.0.0.0")
_FOREIGN_BASE = ip_to_int("172.16.0.0")
_FOREIGN_ASN_BASE = 64512


def infra_block(as_index: int) -> Prefix:
    """The 10.i.0.0/16 infrastructure block of AS index ``i``."""
    return Prefix(_TEN + (as_index << 16), 16)


def loopback_address(as_index: int, router_id: int) -> int:
    """Loopback of one router (10.i.0.router+1)."""
    return _TEN + (as_index << 16) + router_id + 1


def destination_prefix(as_index: int, prefix_index: int) -> Prefix:
    """The j-th /24 originated by AS index ``i`` (50.i.j.0/24)."""
    return Prefix(_DEST_BASE + (as_index << 16) + (prefix_index << 8), 24)


class _SubnetPool:
    """Hands out consecutive /31 link subnets from a base address."""

    def __init__(self, base: int):
        self._next = base

    def pair(self) -> Tuple[int, int]:
        a = self._next
        self._next += 2
        return a, a + 1


class AsNetwork:
    """One AS: topology, IGP, MPLS control planes, per-cycle policy."""

    def __init__(self, spec: AsSpec, as_index: int,
                 rng: random.Random):
        self.spec = spec
        self.as_index = as_index
        self.topology = self._build_topology(rng)
        self.spf = SpfTable(self.topology)
        self.policy = MplsPolicy(enabled=False)
        self.labels: Optional[LabelManager] = None
        self.ldp: Optional[LdpEngine] = None
        self.rsvp: Optional[RsvpTeEngine] = None
        self.sr: Optional[SegmentRoutingEngine] = None
        # (ingress, egress) border pairs eligible for TE, in a stable
        # shuffled order so a growing te_pair_fraction adds pairs at the
        # end without disturbing existing ones.
        self._te_pair_order = self._stable_pair_order()
        self._te_active: Dict[Tuple[int, int], int] = {}  # pair -> count
        # Last reconciled (TE, SR) policy signatures: a cycle whose
        # policy is unchanged skips the whole reconciliation pass
        # (None = never reconciled / engines rebuilt).
        self._te_signature: Optional[tuple] = None
        self._sr_signature: Optional[tuple] = None
        # attachment router of each originated prefix index
        self.attachments: Dict[int, int] = self._assign_attachments()
        # Per-AS links to neighbors: asn -> list of
        # (local router, local addr, remote asn, remote router, remote addr)
        self.interas: Dict[int, List[Tuple[int, int, int, int, int]]] = {}
        self.foreign_links: List[int] = []  # link ids on leased space
        # Round-robin counters for inter-AS border allocation.
        self.border_rr: Dict[str, int] = {"access": 0, "core": 0}

    # -- construction -------------------------------------------------------

    def _build_topology(self, rng: random.Random) -> Topology:
        spec = self.spec
        topology = Topology(asn=spec.asn)
        for router_id in range(spec.router_count):
            topology.add_router(Router(
                router_id=router_id,
                loopback=loopback_address(self.as_index, router_id),
                vendor=spec.vendor,
                is_border=router_id < spec.border_count,
                responsive=True,
            ))
        # Mark the unresponsive share among non-border routers first
        # (borders are IOTP endpoints; keeping them responsive keeps the
        # simulated incompleteness inside LSPs, where the paper sees it).
        core_ids = list(range(spec.border_count, spec.router_count))
        rng.shuffle(core_ids)
        dark_count = round(spec.unresponsive_fraction * spec.router_count)
        for router_id in core_ids[:dark_count]:
            topology.routers[router_id].responsive = False

        pool = _SubnetPool(_TEN + (self.as_index << 16) + (16 << 8))
        if spec.ecmp_breadth <= 1 or spec.router_count < 4:
            self._wire_tree(topology, rng, pool)
        else:
            self._wire_mesh(topology, rng, pool)
        self._double_links(topology, rng, pool)
        topology.validate()
        return topology

    def _wire_tree(self, topology: Topology, rng: random.Random,
                   pool: _SubnetPool) -> None:
        """Random core tree + chords with unequal costs: no ECMP.

        Borders hang off core routers (never off each other), so every
        border-to-border transit crosses at least one core LSR and the
        tunnel is visible in traceroute even under PHP.
        """
        spec = self.spec
        costs = [2, 3, 5, 7, 11, 13]

        def connect(left: int, right: int, cost: int) -> None:
            a, b = pool.pair()
            topology.add_link(left, right, a, b, cost=cost)

        core = list(range(spec.border_count, spec.router_count))
        if not core:
            # Degenerate spec: all routers are borders; plain tree.
            for router_id in range(1, spec.router_count):
                connect(rng.randrange(router_id), router_id,
                        rng.choice(costs))
            return
        # Parent choice is biased towards early nodes: hub-and-spoke
        # cores with short diameters, as in real (PoP-centred) ISPs.
        for position in range(1, len(core)):
            parent = core[rng.randrange(max(1, (position + 2) // 3))]
            connect(parent, core[position], rng.choice(costs))
        for border in range(spec.border_count):
            connect(border, rng.choice(core), rng.choice(costs))
        # Core chords for redundancy and short diameters (high odd
        # costs keep paths unique, so no accidental ECMP).
        for _ in range(max(1, len(core) // 2)):
            left = rng.choice(core)
            right = rng.choice(core)
            if left != right and not topology.links_between(left, right):
                connect(left, right, rng.choice(costs) * 4 + 1)

    def _wire_mesh(self, topology: Topology, rng: random.Random,
                   pool: _SubnetPool) -> None:
        """Unit-cost mesh core: equal-cost paths that partially overlap.

        A random unit-cost backbone over the core routers plus extra
        chords whose density grows with ``ecmp_breadth``; borders
        dual-home into the core.  Equal-cost alternatives in such a mesh
        typically share segments, so ECMP diversity lands in the
        classifiable Mono-FEC patterns (with the fully-disjoint
        Unclassified corner case staying marginal, as in the paper).
        """
        spec = self.spec
        core = list(range(spec.border_count, spec.router_count))
        if not core:
            self._wire_tree(topology, rng, pool)
            return

        def connect(left: int, right: int, cost: int = 1) -> None:
            a, b = pool.pair()
            topology.add_link(left, right, a, b, cost=cost)

        # Random unit-cost backbone over the core.
        for position in range(1, len(core)):
            connect(core[rng.randrange(position)], core[position])
        # Chords add equal-cost alternatives; density scales with the
        # requested breadth.  A share of them are cost-2 "express" links:
        # one express hop costs the same as two backbone hops, producing
        # the equal-cost-but-unequal-hop-count branches behind the
        # paper's unbalanced (symmetry > 0) IOTPs.
        chord_count = round(len(core)
                            * (0.5 + 0.9 * (spec.ecmp_breadth - 1)))
        for ordinal in range(chord_count):
            if ordinal % 3 == 2:
                # Express shortcut over an existing two-hop path: a-b at
                # cost 2 in parallel with a-c-b at cost 1+1 is an exact
                # cost tie with different hop counts.
                via = rng.choice(core)
                neighbors = sorted({
                    nbr for nbr, link in topology.neighbors(via)
                    if link.cost == 1 and nbr >= spec.border_count
                })
                if len(neighbors) >= 2:
                    left, right = rng.sample(neighbors, 2)
                    if not topology.links_between(left, right):
                        connect(left, right, cost=2)
                continue
            left = rng.choice(core)
            right = rng.choice(core)
            if left != right and not topology.links_between(left, right):
                connect(left, right)
        # Borders attach to the core over one uplink each.  A single
        # attachment keeps the LER's reply address stable whatever ECMP
        # branch the probe took (otherwise every <Ingress, Egress> pair
        # would fragment into per-interface IOTPs); path diversity comes
        # from the core mesh between the attachment routers.  A few
        # borders dual-home: their outbound LSPs fan out immediately and
        # may stay router-disjoint to the very end — the corner case
        # behind the paper's (marginal) Unclassified class.
        for border in range(spec.border_count):
            first = core[rng.randrange(len(core))]
            connect(border, first)
            if len(core) > 1 and rng.random() < 0.2:
                second = core[rng.randrange(len(core))]
                if second == first:
                    second = core[(core.index(first) + 1) % len(core)]
                connect(border, second)

    def _double_links(self, topology: Topology, rng: random.Random,
                      pool: _SubnetPool) -> None:
        """Duplicate a fraction of links into parallel bundles."""
        fraction = self.spec.parallel_link_fraction
        if fraction <= 0:
            return
        for link in sorted(topology.links.values(),
                           key=lambda l: l.link_id):
            if rng.random() < fraction:
                a, b = pool.pair()
                topology.add_link(link.router_a, link.router_b, a, b,
                                  cost=link.cost)

    def _stable_pair_order(self) -> List[Tuple[int, int]]:
        borders = sorted(r.router_id
                         for r in self.topology.border_routers())
        pairs = [(i, e) for i in borders for e in borders if i != e]
        # Stable shuffle keyed on the ASN only: growing the TE fraction
        # over cycles extends the active prefix of this list.
        pairs.sort(key=lambda pair: flow_hash(self.spec.asn, *pair))
        return pairs

    def _assign_attachments(self) -> Dict[int, int]:
        count = self.spec.router_count
        first_core = min(self.spec.border_count, count - 1)
        return {
            j: first_core + (flow_hash(self.spec.asn, 17, j)
                             % max(1, count - first_core))
            for j in range(self.spec.prefix_count)
        }

    # -- MPLS policy lifecycle ----------------------------------------------

    def apply_policy(self, policy: MplsPolicy) -> None:
        """Move the AS to a new MPLS configuration.

        Enabling builds the control planes (LDP LSP-trees to every border
        and to the attachment routers, plus the configured TE mesh);
        disabling tears everything down and forgets all labels.
        """
        if not policy.enabled:
            self.labels = None
            self.ldp = None
            self.rsvp = None
            self.sr = None
            self._te_active.clear()
            self._te_signature = None
            self._sr_signature = None
            self.policy = policy
            return

        if self.labels is None:
            self._build_control_planes()
        if policy.ldp:
            self.ldp.establish_transit_fecs()
            if policy.ldp_internal:
                for attachment in sorted(set(self.attachments.values())):
                    self.ldp.establish_fec(attachment)
        self._sync_te(policy)
        self._sync_sr(policy)
        self.policy = policy

    def _build_control_planes(self) -> None:
        """Fresh, empty MPLS engines over the (immutable) topology."""
        self.labels = LabelManager({
            router_id: router.vendor
            for router_id, router in self.topology.routers.items()
        })
        self.ldp = LdpEngine(self.topology, self.spf, self.labels)
        self.rsvp = RsvpTeEngine(self.topology, self.spf, self.labels)
        self.sr = SegmentRoutingEngine(self.topology, self.spf)
        self._te_signature = None
        self._sr_signature = None

    def _sync_te(self, policy: MplsPolicy) -> None:
        # The wanted map is a pure function of these two knobs (the
        # pair order is fixed at construction), and nothing else ever
        # changes the active-pair set — so an unchanged signature means
        # the whole reconciliation below would be a no-op.
        signature = (policy.te_pair_fraction,
                     policy.te_tunnels_per_pair)
        if signature == self._te_signature:
            return
        wanted_pairs = int(round(policy.te_pair_fraction
                                 * len(self._te_pair_order)))
        wanted = {
            pair: policy.te_tunnels_per_pair
            for pair in self._te_pair_order[:wanted_pairs]
        }
        # Tear down pairs (or surplus tunnels) no longer wanted.
        for pair in sorted(self._te_active):
            current = self._te_active[pair]
            target = wanted.get(pair, 0)
            for tunnel_id in range(target, current):
                self.rsvp.teardown(pair[0], pair[1], tunnel_id)
            if target == 0:
                del self._te_active[pair]
            else:
                self._te_active[pair] = target
        # Signal new tunnels.
        for pair in sorted(wanted):
            current = self._te_active.get(pair, 0)
            for tunnel_id in range(current, wanted[pair]):
                self.rsvp.signal(pair[0], pair[1], tunnel_id)
            self._te_active[pair] = wanted[pair]
        self._te_signature = signature

    def _sync_sr(self, policy: MplsPolicy) -> None:
        """Reconcile the SR policy set with the cycle's configuration.

        Policies are rebuilt from scratch (they carry no allocator
        state — node SIDs are static), with waypoints drawn
        deterministically from the core so the same configuration
        always yields the same policies.  Because the rebuilt table is
        a pure function of the policy knobs, an unchanged signature
        skips the rebuild entirely.
        """
        if self.sr is None:
            return
        signature = (policy.uses_sr, policy.sr_pair_fraction,
                     policy.sr_policies_per_pair, policy.sr_waypoints)
        if signature == self._sr_signature:
            return
        self.sr.clear()
        if policy.uses_sr:
            wanted_pairs = int(round(policy.sr_pair_fraction
                                     * len(self._te_pair_order)))
            core = sorted(
                router_id
                for router_id, router in self.topology.routers.items()
                if not router.is_border
            ) or sorted(self.topology.routers)
            for ingress, egress in self._te_pair_order[:wanted_pairs]:
                for policy_id in range(policy.sr_policies_per_pair):
                    waypoints = []
                    for slot in range(policy.sr_waypoints):
                        pick = core[
                            flow_hash(self.spec.asn, 0x5E6, ingress,
                                      egress, policy_id, slot)
                            % len(core)
                        ]
                        if pick not in (ingress, egress) \
                                and pick not in waypoints:
                            waypoints.append(pick)
                    self.sr.install_policy(ingress, egress, waypoints)
        self._sr_signature = signature

    def sr_policy_for(self, ingress: int, egress: int,
                      dst_prefix: Prefix) -> Optional[SrPolicy]:
        """The SR policy steering traffic to a prefix, if any."""
        if self.sr is None or not self.policy.uses_sr:
            return None
        return self.sr.policy_for(ingress, egress, dst_prefix.network)

    def tick(self) -> None:
        """Per-cycle timer actions (TE head-end re-optimization)."""
        if self.policy.te_reoptimize_per_cycle and self.rsvp is not None:
            self.rsvp.reoptimize_all()

    # -- lookup helpers used by the data plane ------------------------------

    def ldp_pair_active(self, entry: int, egress: int) -> bool:
        """Whether transit between two borders rides LSPs this cycle.

        The active pair set is keyed on a stable hash, so raising
        ``mpls_pair_fraction`` over cycles only ever *adds* pairs —
        existing tunnels persist, as in an incremental deployment.
        """
        fraction = self.policy.mpls_pair_fraction
        if fraction >= 1.0:
            return True
        if fraction <= 0.0:
            return False
        return (flow_hash(self.spec.asn, 0x1D9, entry, egress) % 10_000
                < fraction * 10_000)

    def churn_labels(self, per_router: int) -> None:
        """Advance every allocator, modelling unobserved signalling load.

        Routers carrying more TE sessions are advanced proportionally
        further — a busy LSR's label counter climbs faster (paper §4.5's
        reading of Fig 17, where LSR2 outpaces LSR1).

        Each allocator advances in closed form
        (:meth:`~repro.mpls.lfib.LabelAllocator.advance`) — exactly
        equivalent to ``count`` allocate/release pairs, at O(log space)
        instead of O(count) per router.
        """
        if self.labels is None:
            return
        load: Dict[int, int] = {}
        if self.rsvp is not None:
            for session in self.rsvp.sessions:
                for router in session.labels:
                    load[router] = load.get(router, 0) + 1
        for router_id in sorted(self.labels.allocators):
            allocator = self.labels.allocators[router_id]
            allocator.advance(per_router * (1 + load.get(router_id, 0)))

    # -- control-plane snapshots --------------------------------------------

    def capture_state(self) -> Dict[str, object]:
        """Picklable snapshot of everything the cycles mutate.

        The topology, addressing and pair orders are immutable after
        construction (pure functions of the spec), so only the evolving
        control-plane state travels: the active policy, the TE pair
        map, the sync memo signatures and — when MPLS is enabled — the
        label allocators/LFIBs and the LDP/RSVP-TE/SR engine state.  A
        ``shape`` fingerprint guards against restoring onto a different
        topology.
        """
        mpls = None
        if self.labels is not None:
            mpls = {
                "labels": self.labels.capture(),
                "ldp": self.ldp.capture_established(),
                "rsvp": self.rsvp.capture_sessions(),
                "sr": self.sr.capture_policies(),
            }
        return {
            "shape": (len(self.topology.routers),
                      len(self.topology.links)),
            "policy": self.policy,
            "te_active": dict(self._te_active),
            "te_signature": self._te_signature,
            "sr_signature": self._sr_signature,
            "mpls": mpls,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Install a :meth:`capture_state` snapshot onto this AS.

        Engines are rebuilt fresh (exactly as :meth:`apply_policy`
        would) and their captured state installed on top, with TE
        routes re-interned against this instance's topology links —
        so continuing from a restored state is byte-identical to
        continuing from the originally captured one (asserted in
        ``tests/test_statestore.py``).
        """
        shape = (len(self.topology.routers), len(self.topology.links))
        if state["shape"] != shape:
            raise ValueError(
                f"AS{self.asn}: snapshot shape {state['shape']} does "
                f"not match topology {shape}")
        self.policy = state["policy"]
        self._te_active = dict(state["te_active"])
        mpls = state["mpls"]
        if mpls is None:
            self.labels = None
            self.ldp = None
            self.rsvp = None
            self.sr = None
            self._te_signature = None
            self._sr_signature = None
            return
        self._build_control_planes()
        self.labels.restore(mpls["labels"])
        self.ldp.restore_established(mpls["ldp"])
        self.rsvp.restore_sessions(mpls["rsvp"])
        self.sr.restore_policies(mpls["sr"])
        self._te_signature = state["te_signature"]
        self._sr_signature = state["sr_signature"]

    def te_tunnel_for(self, ingress: int, egress: int,
                      dst_prefix: Prefix) -> Optional[TeSession]:
        """The TE tunnel carrying traffic to a prefix, if any."""
        count = self._te_active.get((ingress, egress), 0)
        if count == 0:
            return None
        tunnel_id = flow_hash(dst_prefix.network, ingress, egress) % count
        return self.rsvp.session(ingress, egress, tunnel_id)

    def transit_fec(self, egress: int) -> Optional[PrefixFec]:
        """The established LDP FEC towards a border/attachment loopback."""
        if self.ldp is None:
            return None
        fec = PrefixFec(
            Prefix(self.topology.routers[egress].loopback, 32)
        )
        return fec if self.ldp.egress_of(fec) is not None else None

    def attachment_of(self, prefix_index: int) -> int:
        """Router a destination prefix hangs off."""
        return self.attachments[prefix_index]

    @property
    def asn(self) -> int:
        return self.spec.asn

    def __repr__(self) -> str:
        return (f"AsNetwork(asn={self.spec.asn}, "
                f"routers={len(self.topology.routers)}, "
                f"mpls={'on' if self.policy.enabled else 'off'})")


class SegmentCache:
    """Equal-cost segment sets, shared across the forwarding plane.

    A *segment* is one ``[(router, link), ...]`` step sequence between
    two routers of an AS.  Segments depend only on the intra-AS topology
    (immutable after construction) and on the set of links withdrawn
    from the IGP — never on MPLS state — so a single cache can serve
    every :class:`~repro.sim.dataplane.DataPlane` of a whole study:
    snapshots, cycles and post-study campaigns all hit the same entries
    instead of re-enumerating DAG paths per era.  Entries computed under
    withdrawn links are keyed by the exact excluded-link set, which
    makes hits exact across eras and flap rates.
    """

    SEGMENT_LIMIT = 64

    def __init__(self) -> None:
        # (asn, entry, target) -> segments on the intact topology
        self._base: Dict[Tuple[int, int, int], List[list]] = {}
        # (asn, entry, target, excluded link ids) -> degraded segments
        self._degraded: Dict[Tuple[int, int, int, frozenset],
                             List[list]] = {}
        # Plain-int hit/miss tallies.  Deliberately not registry
        # counters: the cache is shared internet-wide across eras and
        # worker layouts, so its totals are per-process observability,
        # inspected directly by tests and benchmarks.
        self.base_hits = 0
        self.base_misses = 0
        self.degraded_hits = 0
        self.degraded_misses = 0

    def base_segments(self, network: AsNetwork, entry: int,
                      target: int) -> List[list]:
        """Segments on the intact topology (warm SpfTable underneath)."""
        key = (network.asn, entry, target)
        segments = self._base.get(key)
        if segments is None:
            self.base_misses += 1
            dag = network.spf.to_destination(target)
            segments = dag.all_paths(entry, limit=self.SEGMENT_LIMIT)
            self._base[key] = segments
        else:
            self.base_hits += 1
        return segments

    def degraded_segments(self, network: AsNetwork, entry: int,
                          target: int, excluded: frozenset
                          ) -> List[list]:
        """Segments with some links withdrawn (transient flaps).

        Falls back to the intact segments when the exclusion would
        disconnect the pair — a flap on the only path reconverges before
        traffic is affected at our observation timescale.  Entries are
        keyed by the exact excluded-link frozenset, so two eras whose
        flap draws overlap on an AS hit the same entries.
        """
        key = (network.asn, entry, target, excluded)
        segments = self._degraded.get(key)
        if segments is None:
            self.degraded_misses += 1
            dag = spf_to(network.topology, target,
                         excluded_links=excluded)
            segments = dag.all_paths(entry, limit=self.SEGMENT_LIMIT)
            if not segments:
                segments = self.base_segments(network, entry, target)
            self._degraded[key] = segments
        else:
            self.degraded_hits += 1
        return segments


class Internet:
    """The assembled universe: AS graph + per-AS networks + addressing."""

    def __init__(self, spec: UniverseSpec):
        spec.validate()
        self.spec = spec
        self.graph = AsGraph()
        self.networks: Dict[int, AsNetwork] = {}
        self.ip2as = Ip2AsMapper()
        self._index_of: Dict[int, int] = {}
        rng = random.Random(spec.seed)

        for index, as_spec in enumerate(spec.ases):
            self.graph.add_as(AsNode(as_spec.asn, as_spec.name,
                                     as_spec.tier))
            self._index_of[as_spec.asn] = index
            network = AsNetwork(
                as_spec, index,
                random.Random(flow_hash(spec.seed, as_spec.asn)),
            )
            self.networks[as_spec.asn] = network
            self._register_addresses(network)
        for customer, provider in spec.c2p_edges:
            self.graph.add_c2p(customer, provider)
            self._wire_interas(customer, provider)
        for left, right in spec.p2p_edges:
            self.graph.add_p2p(left, right)
            self._wire_interas(left, right)
        self.graph.validate()
        self.routing = BgpRouting(self.graph)
        self._apply_foreign_quirks()
        # Shared by every DataPlane over this universe (topology-only
        # state, so it stays valid across cycles and policy changes).
        self.segment_cache = SegmentCache()

    def _register_addresses(self, network: AsNetwork) -> None:
        self.ip2as.add(infra_block(network.as_index), network.asn)
        for j in range(network.spec.prefix_count):
            self.ip2as.add(destination_prefix(network.as_index, j),
                           network.asn)

    def _next_border(self, network: AsNetwork, access: bool) -> int:
        """Round-robin border router for a new inter-AS link.

        Stub customers land on a small set of *access* borders (shared
        edge PoPs), so a stub-facing egress usually leads to several
        customer ASes; transit and peer links rotate over the remaining
        borders.  Separate counters keep both allocations even.
        """
        borders = sorted(
            r.router_id for r in network.topology.border_routers()
        )
        access_count = max(1, len(borders) // 3)
        if access and len(borders) > 1:
            pool = borders[:access_count]
            counter = network.border_rr["access"]
            network.border_rr["access"] += 1
        else:
            pool = borders[access_count:] or borders
            counter = network.border_rr["core"]
            network.border_rr["core"] += 1
        return pool[counter % len(pool)]

    def _wire_interas(self, left_asn: int, right_asn: int) -> None:
        """Connect one border of each AS with a /31 (owner: lower ASN)."""
        owner = min(left_asn, right_asn)
        owner_index = self._index_of[owner]
        base = _TEN + (owner_index << 16) + (240 << 8)
        used = sum(len(links) for links in
                   self.networks[owner].interas.values())
        addr_a, addr_b = base + 2 * used, base + 2 * used + 1
        left = self.networks[left_asn]
        right = self.networks[right_asn]
        # Listing the same AS pair several times in the universe spec
        # creates multi-point interconnection: each extra session lands
        # on different borders (distinct PoPs).  Round-robin allocation
        # spreads an AS's neighbor links evenly over its borders, so the
        # observable <Ingress, Egress> pair set stays rich.
        left_border = self._next_border(
            left, access=self.graph.nodes[right_asn].tier is Tier.STUB)
        right_border = self._next_border(
            right, access=self.graph.nodes[left_asn].tier is Tier.STUB)
        if owner == left_asn:
            left_addr, right_addr = addr_a, addr_b
        else:
            left_addr, right_addr = addr_b, addr_a
        left.interas.setdefault(right_asn, []).append(
            (left_border, left_addr, right_asn, right_border, right_addr)
        )
        right.interas.setdefault(left_asn, []).append(
            (right_border, right_addr, left_asn, left_border, left_addr)
        )

    def _apply_foreign_quirks(self) -> None:
        """Re-address some internal links from leased (foreign) space."""
        for network in self.networks.values():
            fraction = network.spec.foreign_address_fraction
            if fraction <= 0:
                continue
            foreign_asn = _FOREIGN_ASN_BASE + network.as_index
            block = _FOREIGN_BASE + (network.as_index << 8)
            self.ip2as.add(Prefix(block, 24), foreign_asn)
            rng = random.Random(
                flow_hash(self.spec.seed, 0xF0E1, network.asn)
            )
            offset = 0
            for link_id in sorted(network.topology.links):
                if offset + 2 > 256:
                    break
                if rng.random() >= fraction:
                    continue
                link = network.topology.links[link_id]
                object.__setattr__(link, "addr_a", block + offset)
                object.__setattr__(link, "addr_b", block + offset + 1)
                network.foreign_links.append(link_id)
                offset += 2

    # -- accessors -----------------------------------------------------------

    def network(self, asn: int) -> AsNetwork:
        """The AsNetwork of one ASN."""
        return self.networks[asn]

    def as_index(self, asn: int) -> int:
        """Position of an AS in the spec list (drives its addressing)."""
        return self._index_of[asn]

    def destination_addresses(self) -> List[Tuple[int, int]]:
        """Every probeable destination as (address, origin asn).

        One address per originated /24 (host .1), Archipelago-style.
        """
        result = []
        for network in self.networks.values():
            for j in range(network.spec.prefix_count):
                prefix = destination_prefix(network.as_index, j)
                result.append((prefix.network + 1, network.asn))
        return result

    def egress_towards(self, asn: int, next_asn: int, dst_prefix: Prefix
                       ) -> Tuple[int, int, int, int, int]:
        """Pick the inter-AS link used to leave ``asn`` for ``next_asn``.

        Returns (local border, local addr, remote asn, remote border,
        remote addr).  Deterministic per destination prefix, modelling
        hot-potato egress selection among multiple sessions.
        """
        links = self.networks[asn].interas.get(next_asn)
        if not links:
            raise KeyError(f"AS{asn} has no link to AS{next_asn}")
        return links[flow_hash(dst_prefix.network, asn, next_asn)
                     % len(links)]

    def apply_policies(self, policies: Dict[int, MplsPolicy]) -> None:
        """Apply per-AS MPLS policies (missing ASNs keep their current)."""
        for asn in sorted(policies):
            self.networks[asn].apply_policy(policies[asn])

    def tick(self) -> None:
        """Advance per-cycle timers in every AS."""
        for asn in sorted(self.networks):
            self.networks[asn].tick()

    STATE_VERSION = 1
    """Bumped when the snapshot payload shape changes, so stale
    snapshots are rejected instead of mis-read."""

    def capture_state(self) -> Dict[str, object]:
        """Full control-plane snapshot of the universe.

        Everything that evolves across cycles — per-AS policies, label
        allocators, LDP/RSVP-TE/SR engine state, TE-active maps — in
        one picklable structure (:meth:`AsNetwork.capture_state`).
        Restoring it onto a freshly built :class:`Internet` of the same
        spec reproduces the captured state exactly, which is what lets
        ``repro.par`` workers warm-start from a
        :class:`~repro.par.statestore.StateStore` snapshot instead of
        replaying the whole campaign prefix (DESIGN §10).
        """
        return {
            "version": self.STATE_VERSION,
            "networks": {asn: self.networks[asn].capture_state()
                         for asn in sorted(self.networks)},
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Install a :meth:`capture_state` snapshot.

        The snapshot's AS set and per-AS topology shapes must match
        this universe (same spec); anything else raises ValueError
        rather than silently mixing state across universes.
        """
        if state.get("version") != self.STATE_VERSION:
            raise ValueError(
                f"unsupported state snapshot version "
                f"{state.get('version')!r}")
        networks = state["networks"]
        if set(networks) != set(self.networks):
            raise ValueError("snapshot AS set does not match this "
                             "universe")
        for asn in sorted(networks):
            self.networks[asn].restore_state(networks[asn])

    def __repr__(self) -> str:
        return f"Internet(ases={len(self.networks)})"
