"""Multipath Detection Algorithm (MDA) — flow-varying active probing.

The paper's §5 proposes validating LPR with "an extensive Paris
traceroute campaign": if an IOTP's diversity comes from IGP ECMP
(Mono-FEC), varying the transport flow identifier must expose several IP
paths; if it comes from per-destination RSVP-TE tunnels (Multi-FEC), a
single destination always rides one tunnel and flow variation exposes
nothing.  This module implements the probing half: the classic MDA of
Veitch/Augustin/Friedman, with its per-hop statistical stopping rule.

Stopping rule: having discovered ``k`` interfaces at a hop, one rules
out a ``k+1``-th with per-node failure probability ``alpha`` after

    n(k+1) = ceil( ln(alpha / (k+1)) / ln(k / (k+1)) )

consecutive flow-varied probes (Bonferroni-corrected hypothesis test;
for alpha = 5% this yields the published 6, 11, 16, 21... sequence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .dataplane import DataPlane, HopObs, UnreachableError
from .monitors import Monitor


def probes_to_rule_out(found: int, alpha: float = 0.05) -> int:
    """Probes needed to reject a (found+1)-th interface at one hop.

    >>> [probes_to_rule_out(k) for k in (1, 2, 3)]
    [6, 11, 16]
    """
    if found < 1:
        raise ValueError("need at least one discovered interface")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha out of (0,1): {alpha}")
    next_count = found + 1
    return math.ceil(
        math.log(alpha / next_count) / math.log(found / next_count)
    )


@dataclass
class MdaResult:
    """Everything one MDA run discovered towards a destination.

    Attributes:
        dst: probed destination address.
        hop_interfaces: per TTL (1-based), the interface addresses seen.
        paths: the distinct complete address paths discovered.
        flows_used: how many distinct flow identifiers were probed.
    """

    dst: int
    hop_interfaces: Dict[int, Set[int]] = field(default_factory=dict)
    paths: Set[Tuple[int, ...]] = field(default_factory=set)
    flows_used: int = 0

    @property
    def max_width(self) -> int:
        """Widest hop discovered (1 = single path everywhere)."""
        if not self.hop_interfaces:
            return 0
        return max(len(v) for v in self.hop_interfaces.values())

    def width_between(self, addresses: Set[int]) -> int:
        """Distinct sub-paths across hops restricted to ``addresses``.

        Used to measure diversity inside one AS segment: project every
        discovered path onto the address set and count the distinct
        projections.
        """
        projections = {
            tuple(address for address in path if address in addresses)
            for path in self.paths
        }
        projections.discard(())
        return len(projections)


class MdaProber:
    """Per-destination multipath discovery over the simulated plane."""

    def __init__(self, dataplane: DataPlane, monitor: Monitor,
                 alpha: float = 0.05, max_flows: int = 256):
        self.dataplane = dataplane
        self.monitor = monitor
        self.alpha = alpha
        self.max_flows = max_flows
        self._path_cache: Dict[Tuple[int, int], Optional[List[HopObs]]] \
            = {}

    def _path_for_flow(self, dst: int, flow_id: int
                       ) -> Optional[List[HopObs]]:
        key = (dst, flow_id)
        if key not in self._path_cache:
            try:
                self._path_cache[key] = self.dataplane.forward_path(
                    self.monitor.asn, self.monitor.attachment_router,
                    self.monitor.src_addr, dst, flow_id=flow_id,
                )
            except UnreachableError:
                self._path_cache[key] = None
        return self._path_cache[key]

    def discover(self, dst: int) -> MdaResult:
        """Enumerate the per-hop interfaces and paths towards ``dst``.

        Flow identifiers are consumed sequentially; probing stops when
        every hop's interface count satisfies the stopping rule (or the
        flow budget runs out, which real MDA also caps).
        """
        result = MdaResult(dst=dst)
        flow_id = 0
        # Probes sent since the last *new* interface, per TTL.
        unchanged: Dict[int, int] = {}
        while flow_id < self.max_flows:
            path = self._path_for_flow(dst, flow_id)
            flow_id += 1
            result.flows_used = flow_id
            if path is None:
                break
            addresses = tuple(obs.address for obs in path)
            result.paths.add(addresses)
            for ttl, obs in enumerate(path, start=1):
                seen = result.hop_interfaces.setdefault(ttl, set())
                if obs.address in seen:
                    unchanged[ttl] = unchanged.get(ttl, 0) + 1
                else:
                    seen.add(obs.address)
                    unchanged[ttl] = 0
            if self._satisfied(result, unchanged):
                break
        return result

    def _satisfied(self, result: MdaResult,
                   unchanged: Dict[int, int]) -> bool:
        for ttl, seen in result.hop_interfaces.items():
            needed = probes_to_rule_out(len(seen), self.alpha)
            if unchanged.get(ttl, 0) < needed:
                return False
        return True
