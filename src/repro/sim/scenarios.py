"""The longitudinal measurement scenario reproducing the paper's universe.

Builds a scaled-down Internet with the paper's five focus ASes — Vodafone
(AS1273), AT&T (AS7018), Tata (AS6453), NTT (AS2914) and Level3 (AS3356) —
whose MPLS *configuration knobs* follow the timelines the paper observes,
plus background transits/stubs that provide traffic, filter food and the
global deployment growth of Fig 5.

The per-cycle class mixes of Figs 10–15 are NOT painted: scenarios only
turn protocol knobs (enable LDP, grow the RSVP-TE mesh, re-optimize,
partially deploy), and the classification shapes then *emerge* from the
simulated label distributions measured through traceroute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..bgp.asgraph import Tier
from .config import AsSpec, MplsPolicy, UniverseSpec

# The five focus ASes, with their real ASNs.
VODAFONE = 1273
ATT = 7018
TATA = 6453
NTT = 2914
LEVEL3 = 3356
# Background tier-1s.
GTT = 3257
TELIA = 1299

CYCLES = 60                      # Jan 2010 .. Dec 2014, monthly
LEVEL3_RISE_CYCLE = 29           # MPLS appears (paper Fig 15)
LEVEL3_FALL_CYCLE = 55           # sharp decrease starts
ATT_TRANSITION_CYCLE = 22        # IOTP drop / class transition (Fig 11)
MEASUREMENT_DIP_CYCLES = (23, 58)  # Archipelago issues (Fig 5b)


@dataclass
class CyclePlan:
    """Everything that varies at one measurement cycle."""

    cycle: int
    policies: Dict[int, MplsPolicy]
    monitor_fraction: float = 1.0
    dest_fraction: float = 1.0


@dataclass
class Scenario:
    """A universe plus its per-cycle evolution."""

    universe: UniverseSpec
    planner: Callable[[int], Dict[int, MplsPolicy]]
    cycles: int = CYCLES

    def plan(self, cycle: int) -> CyclePlan:
        """The plan for one 1-based cycle number."""
        if not 1 <= cycle <= self.cycles:
            raise ValueError(f"cycle {cycle} out of [1, {self.cycles}]")
        monitor_fraction = 0.6 + 0.4 * cycle / self.cycles
        dest_fraction = 0.7 + 0.3 * cycle / self.cycles
        if cycle in MEASUREMENT_DIP_CYCLES:
            monitor_fraction *= 0.55
            dest_fraction *= 0.80
        return CyclePlan(
            cycle=cycle,
            policies=self.planner(cycle),
            monitor_fraction=min(monitor_fraction, 1.0),
            dest_fraction=min(dest_fraction, 1.0),
        )


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, round(value * scale))


def build_universe(scale: float = 1.0, seed: int = 2015) -> UniverseSpec:
    """The paper universe at a given size multiplier.

    ``scale`` multiplies router and prefix counts; 1.0 is the default used
    by the benchmark harness, smaller values make unit tests fast.
    """
    ases: List[AsSpec] = [
        # -- focus ASes ------------------------------------------------
        AsSpec(LEVEL3, "Level3", Tier.TIER1,
               router_count=_scaled(36, scale, 8), border_count=8,
               vendor="cisco", ecmp_breadth=2, parallel_link_fraction=0.30,
               unresponsive_fraction=0.03, prefix_count=3),
        AsSpec(ATT, "AT&T", Tier.TIER1,
               router_count=_scaled(40, scale, 8), border_count=8,
               vendor="cisco", ecmp_breadth=2, parallel_link_fraction=0.15,
               unresponsive_fraction=0.04, prefix_count=3),
        AsSpec(NTT, "NTT", Tier.TIER1,
               router_count=_scaled(28, scale, 8), border_count=8,
               vendor="juniper", ecmp_breadth=1,
               parallel_link_fraction=0.05,
               unresponsive_fraction=0.03, prefix_count=2),
        AsSpec(TATA, "Tata", Tier.TIER1,
               router_count=_scaled(30, scale, 9), border_count=8,
               vendor="cisco", ecmp_breadth=2, parallel_link_fraction=0.75,
               unresponsive_fraction=0.03, prefix_count=2),
        AsSpec(VODAFONE, "Vodafone", Tier.TRANSIT,
               router_count=_scaled(14, scale, 6), border_count=6,
               vendor="juniper", ecmp_breadth=1,
               unresponsive_fraction=0.02, prefix_count=2),
        # -- background tier-1s ----------------------------------------
        AsSpec(GTT, "GTT", Tier.TIER1,
               router_count=_scaled(20, scale, 6), border_count=6,
               vendor="cisco", ecmp_breadth=2, parallel_link_fraction=0.2,
               unresponsive_fraction=0.03, prefix_count=2),
        AsSpec(TELIA, "Telia", Tier.TIER1,
               router_count=_scaled(20, scale, 6), border_count=6,
               vendor="cisco", ecmp_breadth=2,
               unresponsive_fraction=0.03, prefix_count=2),
    ]
    c2p: List[tuple] = []
    p2p: List[tuple] = []
    tier1s = [LEVEL3, ATT, NTT, TATA, GTT, TELIA]
    # Tier-1s interconnect at three PoPs each (multi-point peering:
    # listing a pair several times creates several inter-AS links on
    # distinct borders, multiplying the <Ingress, Egress> combinations).
    for position, left in enumerate(tier1s):
        for right in tier1s[position + 1:]:
            p2p += [(left, right)] * 3

    # Vodafone: a European transit under Level3 and NTT, two PoPs each.
    c2p += [(VODAFONE, LEVEL3)] * 2 + [(VODAFONE, NTT)] * 2

    # Background transit networks with assorted MPLS temperaments.
    transit_specs = [
        # (asn, vendor, ecmp, parallel, dark, foreign)
        (65101, "cisco", 2, 0.20, 0.03, 0.0),
        (65102, "juniper", 1, 0.00, 0.03, 0.0),
        (65103, "cisco", 2, 0.10, 0.03, 0.10),   # leased-space quirk
        (65104, "cisco", 1, 0.00, 0.04, 0.0),
        (65105, "legacy", 1, 0.00, 0.03, 0.0),   # no RFC4950: implicit
        (65106, "juniper", 2, 0.25, 0.03, 0.0),
        (65107, "cisco", 1, 0.00, 0.05, 0.0),
        (65108, "cisco", 2, 0.15, 0.03, 0.0),
    ]
    for offset, (asn, vendor, ecmp, parallel, dark, foreign) in \
            enumerate(transit_specs):
        ases.append(AsSpec(
            asn, f"Transit{offset + 1}", Tier.TRANSIT,
            router_count=_scaled(16, scale, 6), border_count=4,
            vendor=vendor, ecmp_breadth=ecmp,
            parallel_link_fraction=parallel,
            unresponsive_fraction=dark,
            foreign_address_fraction=foreign,
            prefix_count=2,
        ))
        uplinks = (tier1s[offset % 6], tier1s[(offset + 2) % 6])
        # Two sessions to the primary transit provider, one to the backup.
        c2p += [(asn, uplinks[0])] * 2 + [(asn, uplinks[1])]

    # Destination stubs: plain-IP edge networks announcing the /24s the
    # monitors probe.  Spread over every transit so that traces cross
    # all focus ASes.
    providers = [65101, 65102, 65103, 65104, 65105, 65106, 65107, 65108,
                 VODAFONE, VODAFONE, VODAFONE, VODAFONE, VODAFONE,
                 LEVEL3, LEVEL3, ATT, ATT, NTT, NTT, TATA, TATA,
                 GTT, TELIA, 65101, 65103, 65106, 65108, 65104]
    for offset, provider in enumerate(providers):
        asn = 65201 + offset
        ases.append(AsSpec(
            asn, f"Stub{offset + 1}", Tier.STUB,
            router_count=3, border_count=1, vendor="cisco",
            prefix_count=_scaled(5, scale, 2),
        ))
        c2p.append((asn, provider))
        if offset % 3 == 0:  # every third stub is multihomed
            backup = providers[(offset + 5) % len(providers)]
            if backup != provider:
                c2p.append((asn, backup))

    # Monitor stubs: vantage-point hosts, one per region/provider mix.
    monitor_ases = []
    for offset, provider in enumerate(
            [65101, 65102, 65103, 65105, 65106, 65108,
             VODAFONE, ATT, TATA]):
        asn = 65301 + offset
        ases.append(AsSpec(
            asn, f"MonitorNet{offset + 1}", Tier.STUB,
            router_count=3, border_count=1, vendor="cisco",
            prefix_count=1,
        ))
        c2p.append((asn, provider))
        monitor_ases.append(asn)

    return UniverseSpec(ases=ases, c2p_edges=c2p, p2p_edges=p2p,
                        monitor_ases=monitor_ases, seed=seed)


def _ramp(cycle: int, start: int, end: int, lo: float, hi: float) -> float:
    """Linear ramp from lo (at cycle<=start) to hi (at cycle>=end)."""
    if cycle <= start:
        return lo
    if cycle >= end:
        return hi
    return lo + (hi - lo) * (cycle - start) / (end - start)


def paper_policies(cycle: int) -> Dict[int, MplsPolicy]:
    """Per-AS MPLS policies for one cycle (1..60)."""
    policies: Dict[int, MplsPolicy] = {}

    # Vodafone (Fig 10): an RSVP-TE-only deployment, growing over time,
    # with frequent head-end re-optimization (dynamic labels, §4.5) —
    # the persistence filter deletes its whole LSP set every cycle, so
    # LPR re-injects and tags it dynamic, exactly the paper's AS1273
    # treatment (footnote 4).
    policies[VODAFONE] = MplsPolicy(
        enabled=True, ldp=False, ldp_internal=False,
        te_pair_fraction=_ramp(cycle, 1, 60, 0.45, 0.95),
        te_tunnels_per_pair=2,
        te_reoptimize_per_cycle=True,
    )

    # AT&T (Fig 11): partial-deployment shrink at the transition cycle
    # (the IOTP drop), Multi-FEC replacing Mono-FEC afterwards.
    if cycle < ATT_TRANSITION_CYCLE:
        policies[ATT] = MplsPolicy(
            enabled=True, ldp=True,
            te_pair_fraction=0.03, te_tunnels_per_pair=2,
            mpls_pair_fraction=0.85,
        )
    else:
        policies[ATT] = MplsPolicy(
            enabled=True, ldp=True,
            te_pair_fraction=_ramp(cycle, ATT_TRANSITION_CYCLE, 60,
                                   0.15, 0.60),
            te_tunnels_per_pair=2,
            mpls_pair_fraction=0.45,
        )

    # Tata (Figs 12–13): ECMP-heavy LDP (mesh + parallel bundles), usage
    # slowly declining, negligible TE.
    policies[TATA] = MplsPolicy(
        enabled=True, ldp=True,
        te_pair_fraction=0.04, te_tunnels_per_pair=2,
        mpls_pair_fraction=_ramp(cycle, 1, 60, 0.85, 0.55),
    )

    # NTT (Fig 14): Mono-LSP dominant, deployment tripling over the
    # period, a whiff of parallel-link ECMP.
    policies[NTT] = MplsPolicy(
        enabled=True, ldp=True,
        te_pair_fraction=0.02, te_tunnels_per_pair=2,
        mpls_pair_fraction=_ramp(cycle, 1, 60, 0.30, 0.95),
    )

    # Level3 (Figs 15–16): nothing, then a wide LDP deployment from the
    # rise cycle, then a sharp decrease near the end.
    if cycle < LEVEL3_RISE_CYCLE:
        policies[LEVEL3] = MplsPolicy(enabled=False)
    elif cycle < LEVEL3_FALL_CYCLE:
        policies[LEVEL3] = MplsPolicy(
            enabled=True, ldp=True,
            te_pair_fraction=0.05, te_tunnels_per_pair=2,
            mpls_pair_fraction=0.90,
        )
    else:
        policies[LEVEL3] = MplsPolicy(
            enabled=True, ldp=True,
            te_pair_fraction=0.05, te_tunnels_per_pair=2,
            mpls_pair_fraction=0.12,
        )

    # Background: GTT a partial always-on LDP island; Telia never
    # deploys (pure-IP tier-1s keep the Fig 5a share realistic).
    policies[GTT] = MplsPolicy(enabled=True, ldp=True,
                               mpls_pair_fraction=0.45)
    policies[TELIA] = MplsPolicy(enabled=False)

    # Background transits: a drip of MPLS adoption over the years
    # (Fig 5a's slope), one invisible deployment, one implicit one.
    policies[65101] = MplsPolicy(enabled=True, ldp=True,
                                 mpls_pair_fraction=0.60)
    policies[65102] = MplsPolicy(enabled=cycle >= 15, ldp=True,
                                 mpls_pair_fraction=0.70)
    policies[65103] = MplsPolicy(enabled=True, ldp=True,
                                 mpls_pair_fraction=0.50)
    policies[65104] = MplsPolicy(enabled=cycle >= 40, ldp=True,
                                 mpls_pair_fraction=0.80)
    policies[65105] = MplsPolicy(enabled=True, ldp=True)  # no RFC4950
    policies[65106] = MplsPolicy(
        enabled=True, ldp=True, ttl_propagate=False,  # invisible tunnels
    )
    policies[65107] = MplsPolicy(enabled=False)
    # 65108 is the early adopter: RSVP-TE from cycle 8, plus a small
    # SR-MPLS pilot near the end of the study (segment routing drafts
    # date from 2014 — the paper's §2.1 outlook).
    policies[65108] = MplsPolicy(enabled=cycle >= 8, ldp=True,
                                 te_pair_fraction=0.10,
                                 te_tunnels_per_pair=3,
                                 mpls_pair_fraction=0.70,
                                 sr_pair_fraction=(0.15 if cycle >= 52
                                                   else 0.0),
                                 sr_policies_per_pair=2,
                                 sr_waypoints=1)
    return policies


def paper_scenario(scale: float = 1.0, seed: int = 2015) -> Scenario:
    """The full 60-cycle scenario behind every benchmark."""
    return Scenario(universe=build_universe(scale=scale, seed=seed),
                    planner=paper_policies, cycles=CYCLES)
