"""Vantage points (monitors) and monitor teams.

Mirrors the Archipelago deployment: monitors scattered across stub/edge
ASes, organised into teams; each team independently covers the probed
address space (paper §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..igp.ecmp import flow_hash
from ..net.ip import ip_to_int
from .network import Internet

_TEN = ip_to_int("10.0.0.0")


@dataclass(frozen=True)
class Monitor:
    """One traceroute vantage point.

    Attributes:
        name: ark-style monitor name ("mon-00.as65001").
        asn: hosting AS.
        attachment_router: router id of its first-hop gateway.
        gateway_addr: the gateway's LAN-side interface address (the reply
            address of traceroute's first hop).
        src_addr: the monitor host's own source address.
    """

    name: str
    asn: int
    attachment_router: int
    gateway_addr: int
    src_addr: int


def build_monitors(internet: Internet, per_as: int = 2) -> List[Monitor]:
    """Create ``per_as`` monitors in every monitor AS of the universe.

    Gateway/source addresses are carved from the hosting AS's
    infrastructure block (10.i.2.x and 10.i.3.x), so IP2AS resolves them
    to the hosting AS like any real monitor address.
    """
    monitors = []
    for asn in sorted(internet.spec.monitor_ases):
        network = internet.network(asn)
        index = internet.as_index(asn)
        router_count = network.spec.router_count
        for slot in range(per_as):
            attachment = flow_hash(asn, 0xA77, slot) % router_count
            monitors.append(Monitor(
                name=f"mon-{slot:02d}.as{asn}",
                asn=asn,
                attachment_router=attachment,
                gateway_addr=_TEN + (index << 16) + (2 << 8) + slot,
                src_addr=_TEN + (index << 16) + (3 << 8) + slot,
            ))
    return monitors


def split_into_teams(monitors: List[Monitor], team_count: int = 3
                     ) -> List[List[Monitor]]:
    """Round-robin monitors into ``team_count`` teams (ark-style)."""
    if team_count < 1:
        raise ValueError(f"need at least one team, got {team_count}")
    teams: List[List[Monitor]] = [[] for _ in range(team_count)]
    for position, monitor in enumerate(monitors):
        teams[position % team_count].append(monitor)
    return [team for team in teams if team]
