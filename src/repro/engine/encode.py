"""CSR trace encoding: one pass from objects to flat columns.

Each snapshot's traces are flattened once into parallel arrays — hop
address ids, per-hop label/explicitness flags, per-trace CSR offsets,
monitor and destination columns — against a cycle-wide
:class:`~repro.engine.intern.Interner`.  Every kernel downstream
(extraction, filters, classification, dataset statistics) then works on
dense ints only; :class:`~repro.traces.TraceHop` objects are never
touched again after this pass.

The per-hop *explicit* flag bakes in the opaque-tunnel cut of
:data:`repro.core.extraction.MAX_EXPLICIT_LSE_TTL`, and *labeled*
records plain RFC 4950 evidence (any quoted stack) — dataset statistics
count an address as MPLS on the latter, extraction runs on the former,
exactly like the object pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import accumulate
from typing import List, Sequence

from ..core.extraction import MAX_EXPLICIT_LSE_TTL
from ..obs import get_registry
from ..traces import Trace
from .intern import Interner, NO_VALUE

_ROWS_ENCODED = get_registry().counter(
    "engine_rows_encoded_total",
    "Rows flattened into columnar form, by kind (trace/hop)")


@dataclass
class EncodedSnapshot:
    """One snapshot's traces in CSR form.

    Trace ``t`` owns hop rows ``offsets[t]:offsets[t + 1]``.  Hop
    columns are parallel: ``hop_address`` holds address ids
    (:data:`NO_VALUE` for anonymous hops), ``hop_labeled`` flags any
    quoted stack, ``hop_explicit`` flags explicit-tunnel evidence
    (labeled with a propagated LSE-TTL), and ``hop_label`` the quoted
    top label (0 on unlabeled hops — never read there).  ``monitors``
    and ``dsts`` are per-trace columns of monitor ids and destination
    address ids.
    """

    interner: Interner
    trace_count: int = 0
    offsets: List[int] = field(default_factory=lambda: [0])
    hop_address: List[int] = field(default_factory=list)
    hop_explicit: bytearray = field(default_factory=bytearray)
    hop_labeled: bytearray = field(default_factory=bytearray)
    hop_label: List[int] = field(default_factory=list)
    monitors: List[int] = field(default_factory=list)
    dsts: List[int] = field(default_factory=list)

    @property
    def hop_count(self) -> int:
        return len(self.hop_address)


def encode_snapshot(traces: Sequence[Trace],
                    interner: Interner) -> EncodedSnapshot:
    """Flatten one snapshot into columns against a shared interner.

    Follow-up snapshots of the same cycle must encode against the same
    interner as the primary: signature equality across snapshots then
    degrades to int equality, which is what the persistence kernel
    relies on.
    """
    encoded = EncodedSnapshot(interner=interner)
    address_id = interner.address_id

    # One flat pass per attribute: a single-expression comprehension
    # costs a fraction of the branching per-hop loop it replaces.
    addrs = [hop.address for trace in traces for hop in trace.hops]
    stacks = [hop.quoted_stack for trace in traces
              for hop in trace.hops]
    encoded.offsets.extend(
        accumulate(len(trace.hops) for trace in traces))

    # Intern each distinct address once, in first-seen order
    # (dict.fromkeys preserves it), then translate the whole column
    # with one C-speed map over a local table that folds in the
    # anonymous-hop sentinel.
    for address in dict.fromkeys(addrs):
        if address is not None:
            address_id(address)
    translate = dict(interner._addresses)
    translate[None] = NO_VALUE
    encoded.hop_address.extend(map(translate.__getitem__, addrs))

    # Label flags: truthiness of the quoted stack, at C speed; the
    # explicit flag and top label then only visit labeled positions.
    hop_labeled = bytearray(map(bool, stacks))
    hop_explicit = bytearray(len(stacks))
    hop_label = [0] * len(stacks)
    find_labeled = hop_labeled.find
    index = find_labeled(1)
    while index >= 0:
        entry = stacks[index][0]
        if entry.ttl <= MAX_EXPLICIT_LSE_TTL:
            hop_explicit[index] = 1
        hop_label[index] = entry.label
        index = find_labeled(1, index + 1)
    encoded.hop_labeled = hop_labeled
    encoded.hop_explicit = hop_explicit
    encoded.hop_label = hop_label

    monitor_id = interner.monitor_id
    encoded.monitors = [monitor_id(trace.monitor) for trace in traces]
    encoded.dsts = [address_id(trace.dst) for trace in traces]

    encoded.trace_count = len(encoded.monitors)
    _ROWS_ENCODED.inc(encoded.trace_count, kind="trace")
    _ROWS_ENCODED.inc(encoded.hop_count, kind="hop")
    return encoded
