"""The columnar analysis engine (DESIGN §12).

A drop-in backend for the per-cycle analysis stage: traces are interned
and flattened once into CSR-style int columns, then extraction, the
five LPR filters, IOTP grouping and Algorithm-1 classification run as
array kernels, decoding back to ``Lsp``/``Iotp`` dataclasses only at
the artifact boundary.  Selected with ``StudySpec.engine="columnar"``
(CLI: ``repro study --engine columnar``) and proven byte-identical to
the object pipeline by the differential matrix's ``columnar`` configs.
"""

from .encode import EncodedSnapshot, encode_snapshot
from .intern import Interner, NO_VALUE
from .kernels import (
    LspColumns,
    analyze_snapshots,
    classify_columns,
    dataset_columns,
    decode_iotps,
    extract_columns,
    filter_columns,
)

__all__ = [
    "EncodedSnapshot",
    "encode_snapshot",
    "Interner",
    "NO_VALUE",
    "LspColumns",
    "analyze_snapshots",
    "classify_columns",
    "dataset_columns",
    "decode_iotps",
    "extract_columns",
    "filter_columns",
]
