"""Dense integer interning for the columnar analysis engine.

Every value the kernels index on — interface addresses, monitor names,
label runs, LSP signatures — is mapped to a dense int id the first time
it is seen; ids are handed out in first-seen order, so the mapping is a
pure function of the value stream and two runs over the same traces
produce identical id spaces (the property the differential oracle
leans on).  The reverse tables keep the *original* objects, so decoding
back to dataclasses at the artifact boundary re-uses the exact objects
the traces carried — object sharing, and hence pickle bytes, stay a
pure function of the trace values just like the object engine's
``_canonicalize`` interning (DESIGN §8).

Id spaces are per-:class:`Interner`, and one interner spans all of a
cycle's snapshots: the primary and its follow-ups share address and
signature ids, which is what makes the persistence kernel a plain
int-set membership test.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

NO_VALUE = -1
"""Sentinel id for "no address here": an anonymous hop inside the
columns, or a missing entry/exit endpoint.  Decodes to ``None``."""

# One labeled hop in id space: (address id, label value).
RunHop = Tuple[int, int]


class Interner:
    """First-seen dense ids for addresses, monitors, runs, signatures."""

    __slots__ = ("_addresses", "address_values", "_monitors",
                 "monitor_values", "_runs", "run_values", "_signatures",
                 "signature_values")

    def __init__(self) -> None:
        self._addresses: Dict[int, int] = {}
        self.address_values: List[int] = []
        self._monitors: Dict[str, int] = {}
        self.monitor_values: List[str] = []
        self._runs: Dict[Tuple[RunHop, ...], int] = {}
        self.run_values: List[Tuple[RunHop, ...]] = []
        self._signatures: Dict[Tuple[int, int, int], int] = {}
        self.signature_values: List[Tuple[int, int, int]] = []

    def address_id(self, value: int) -> int:
        """The dense id of one interface address (stable per value)."""
        table = self._addresses
        ident = table.get(value)
        if ident is None:
            ident = len(table)
            table[value] = ident
            self.address_values.append(value)
        return ident

    def monitor_id(self, name: str) -> int:
        """The dense id of one vantage-point name."""
        table = self._monitors
        ident = table.get(name)
        if ident is None:
            ident = len(table)
            table[name] = ident
            self.monitor_values.append(name)
        return ident

    def run_id(self, hops: Tuple[RunHop, ...]) -> int:
        """The dense id of one labeled run, given in id space.

        ``hops`` is the tuple of ``(address id, label value)`` pairs of
        the run's explicit hops, in TTL order — the id-space image of
        ``Lsp.hops``.
        """
        table = self._runs
        ident = table.get(hops)
        if ident is None:
            ident = len(table)
            table[hops] = ident
            self.run_values.append(hops)
        return ident

    def signature_id(self, entry: int, exit_: int, run: int) -> int:
        """The dense id of one LSP signature ``(entry, exit, run)``.

        Entry/exit are address ids (or :data:`NO_VALUE`), ``run`` a run
        id; two LSPs share a signature id exactly when their value-space
        ``Lsp.signature`` tuples are equal.
        """
        key = (entry, exit_, run)
        table = self._signatures
        ident = table.get(key)
        if ident is None:
            ident = len(table)
            table[key] = ident
            self.signature_values.append(key)
        return ident

    def __repr__(self) -> str:
        return (f"Interner(addresses={len(self.address_values)}, "
                f"monitors={len(self.monitor_values)}, "
                f"runs={len(self.run_values)}, "
                f"signatures={len(self.signature_values)})")
