"""Columnar LPR kernels: extract → filter → classify on int columns.

Each kernel is the array form of one object-pipeline stage and is held
to *byte-identity* with it (proven per run by the differential matrix,
DESIGN §11): identical ``FilterStats``, identical IOTP dicts and
verdicts, identical counter totals.  The correspondence, stage by
stage:

==================  ====================================================
object stage        columnar kernel
==================  ====================================================
``extract_all``     :func:`extract_columns` — the same maximal-run scan
                    over the CSR hop arrays, emitting id columns
                    instead of ``Lsp`` objects
``drop_incomplete`` row selection on the ``complete`` flag column
``intra_as``        per-*run* origin resolution, memoised by run id —
                    every LSP sharing a label run shares the verdict
``target_as``       one indexed gather from the cycle's address→AS
                    table
``transit_``        int-keyed grouping ``(asn, entry id, exit id)``
``diversity``       with destination-AS sets
``persistence``     int-set membership of signature ids against the
                    follow-up snapshots' signature sets, with the same
                    sorted-AS re-injection sweep and dynamic tagging
``classify``        Algorithm 1 on run-id memo tables (lengths, address
                    sets, per-address label sets), iterating groups in
                    sorted *value*-key order
==================  ====================================================

Only the survivors of the filter chain are decoded back into
``Lsp``/``Iotp`` dataclasses — through :func:`group_into_iotps` itself,
with a first-seen value intern mirroring the object engine's
``_canonicalize`` — so ``CycleResult`` artifacts and checkpoint pickle
bytes stay a pure function of the trace values (DESIGN §8).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..core.classification import (
    ClassificationResult,
    IotpVerdict,
    MonoFecSubclass,
    TunnelClass,
    _IOTPS_CLASSIFIED,
)
from ..core.extraction import _LSPS_EXTRACTED, _TRACES_SCANNED
from ..core.filters import _ASES_REINJECTED, _LSPS_DROPPED, FilterStats
from ..core.model import Iotp, IotpKey, Lsp, group_into_iotps
from ..core.pipeline import DatasetStats
from ..net.ip2as import Ip2AsMapper, UNKNOWN_AS
from ..obs import emit, get_logger, get_registry, get_tracer, span
from ..traces import Trace
from .encode import EncodedSnapshot, encode_snapshot
from .intern import Interner, NO_VALUE

_log = get_logger(__name__)
_KERNEL_SECONDS = get_registry().counter(
    "engine_kernel_seconds",
    "Wall time spent inside columnar kernels (0 under the null clock)")

# An IOTP key in id space: (asn, entry address id, exit address id).
GroupKey = Tuple[int, int, int]

_MIXED = -2
"""Run-origin memo value for runs the IntraAS filter drops: several
origin ASes, or a single origin that is :data:`UNKNOWN_AS`."""


class LspColumns:
    """Extracted LSP observations as parallel id columns.

    One row per labeled run, in trace order — exactly the rows
    ``extract_all`` would materialise as ``Lsp`` objects.
    """

    __slots__ = ("count", "entry", "exit", "run", "signature",
                 "complete", "monitor", "dst")

    def __init__(self) -> None:
        self.count = 0
        self.entry: List[int] = []
        self.exit: List[int] = []
        self.run: List[int] = []
        self.signature: List[int] = []
        self.complete = bytearray()
        self.monitor: List[int] = []
        self.dst: List[int] = []


def extract_columns(encoded: EncodedSnapshot) -> LspColumns:
    """The maximal-run scan of ``extract_lsps``, over CSR columns.

    Replicates the object scanner hop for hop: runs absorb interior
    anonymous hops only when labels resume afterwards (counted as
    holes), the hop before/after the run provides entry/exit unless
    anonymous or absent, and ``complete`` requires zero holes plus both
    endpoints.  Increments the extraction counters exactly like
    ``extract_all``.
    """
    interner = encoded.interner
    run_id = interner.run_id
    signature_id = interner.signature_id
    offsets = encoded.offsets
    hop_address = encoded.hop_address
    hop_explicit = encoded.hop_explicit
    hop_label = encoded.hop_label
    monitors = encoded.monitors
    dsts = encoded.dsts

    columns = LspColumns()
    entry_col = columns.entry
    exit_col = columns.exit
    run_col = columns.run
    signature_col = columns.signature
    complete_col = columns.complete
    monitor_col = columns.monitor
    dst_col = columns.dst
    complete_count = 0

    find_explicit = hop_explicit.find
    for trace_index in range(encoded.trace_count):
        start = offsets[trace_index]
        end = offsets[trace_index + 1]
        # Jump between explicit hops at C speed: unlabeled stretches
        # (the vast majority of rows) never enter the Python loop.
        index = find_explicit(1, start, end)
        while index >= 0:
            run_start = index
            run_end = index
            probe = index + 1
            holes = 0
            pending = 0
            pair_list = [(hop_address[index], hop_label[index])]
            while probe < end:
                if hop_explicit[probe]:
                    run_end = probe
                    holes += pending
                    pending = 0
                    pair_list.append(
                        (hop_address[probe], hop_label[probe]))
                    probe += 1
                elif hop_address[probe] == NO_VALUE:
                    # Possibly an LSR that did not reply; absorb it
                    # only if labels resume afterwards.
                    pending += 1
                    probe += 1
                else:
                    break

            pairs = tuple(pair_list)
            entry = (hop_address[run_start - 1]
                     if run_start > start else NO_VALUE)
            exit_ = (hop_address[run_end + 1]
                     if run_end + 1 < end else NO_VALUE)
            complete = (holes == 0 and entry != NO_VALUE
                        and exit_ != NO_VALUE)

            rid = run_id(pairs)
            entry_col.append(entry)
            exit_col.append(exit_)
            run_col.append(rid)
            signature_col.append(signature_id(entry, exit_, rid))
            complete_col.append(1 if complete else 0)
            monitor_col.append(monitors[trace_index])
            dst_col.append(dsts[trace_index])
            complete_count += complete

            index = find_explicit(1, run_end + 1 + pending, end)

    columns.count = len(run_col)
    _TRACES_SCANNED.inc(encoded.trace_count)
    _LSPS_EXTRACTED.inc(complete_count, complete="true")
    _LSPS_EXTRACTED.inc(columns.count - complete_count,
                        complete="false")
    return columns


def _resolve_run_asns(columns: LspColumns, rows: Sequence[int],
                      addr_asn: Sequence[int],
                      interner: Interner) -> Dict[int, int]:
    """IntraAS, per distinct run: one origin AS or a drop marker.

    Every LSP sharing a label run shares its IntraAS verdict, so the
    per-hop origin scan runs once per *run id*, not once per LSP row.
    """
    run_values = interner.run_values
    run_col = columns.run
    verdicts: Dict[int, int] = {}
    for row in rows:
        rid = run_col[row]
        if rid in verdicts:
            continue
        origins = set()
        for aid, _label in run_values[rid]:
            if aid < 0:
                # A labeled anonymous hop: the object engine's lookup
                # crashes on the None address, and no real trace can
                # produce one (no reply means nothing quoted a stack).
                raise TypeError(
                    "anonymous hop inside a complete labeled run")
            origins.add(addr_asn[aid])
        if len(origins) == 1:
            asn = origins.pop()
            verdicts[rid] = _MIXED if asn == UNKNOWN_AS else asn
        else:
            verdicts[rid] = _MIXED
    return verdicts


def filter_columns(columns: LspColumns,
                   follow_up_signatures: Sequence[Set[int]],
                   addr_asn: Sequence[int], interner: Interner,
                   reinject_threshold: float
                   ) -> Tuple[List[int], List[int],
                              Dict[GroupKey, List[int]], FilterStats]:
    """The five-filter chain as row selections over the columns.

    Returns ``(surviving rows, their ASNs, final id-space grouping,
    stats)``; the rows come back in the exact order the object
    engine's ``run_filters`` would list its surviving ``Lsp`` objects,
    and the grouping dict in the insertion order ``group_into_iotps``
    would produce, so decoding preserves artifact bytes.
    """
    stats = FilterStats(extracted=columns.count)
    complete_col = columns.complete
    run_col = columns.run
    signature_col = columns.signature
    entry_col = columns.entry
    exit_col = columns.exit
    dst_col = columns.dst

    with span("filters.incomplete"):
        rows = [row for row in range(columns.count)
                if complete_col[row]]
        stats.after_incomplete = len(rows)
        _LSPS_DROPPED.inc(stats.extracted - stats.after_incomplete,
                          filter="incomplete")

    with span("filters.intra_as"):
        run_asn = _resolve_run_asns(columns, rows, addr_asn, interner)
        row_asn: Dict[int, int] = {}
        mapped: List[int] = []
        for row in rows:
            asn = run_asn[run_col[row]]
            if asn == _MIXED:
                continue
            row_asn[row] = asn
            mapped.append(row)
        stats.after_intra_as = len(mapped)
        _LSPS_DROPPED.inc(stats.after_incomplete - stats.after_intra_as,
                          filter="intra_as")

    with span("filters.target_as"):
        transit = [row for row in mapped
                   if addr_asn[dst_col[row]] != row_asn[row]]
        stats.after_target_as = len(transit)
        _LSPS_DROPPED.inc(stats.after_intra_as - stats.after_target_as,
                          filter="target_as")

    with span("filters.transit_diversity"):
        group_rows: Dict[GroupKey, List[int]] = {}
        group_dst_asns: Dict[GroupKey, Set[int]] = {}
        for row in transit:
            key = (row_asn[row], entry_col[row], exit_col[row])
            bucket = group_rows.get(key)
            if bucket is None:
                group_rows[key] = [row]
                group_dst_asns[key] = {addr_asn[dst_col[row]]}
            else:
                bucket.append(row)
                group_dst_asns[key].add(addr_asn[dst_col[row]])
        diverse_keys = {key for key, dst_asns in group_dst_asns.items()
                        if len(dst_asns) >= 2}
        diverse = [row for row in transit
                   if (row_asn[row], entry_col[row],
                       exit_col[row]) in diverse_keys]
        stats.after_transit_diversity = len(diverse)
        _LSPS_DROPPED.inc(
            stats.after_target_as - stats.after_transit_diversity,
            filter="transit_diversity")

    with span("filters.persistence"):
        if not follow_up_signatures:
            persisted = diverse
            dynamic: List[int] = []
        else:
            union: Set[int] = set()
            for signatures in follow_up_signatures:
                union |= signatures
            by_as: Dict[int, List[int]] = {}
            for row in diverse:
                by_as.setdefault(row_asn[row], []).append(row)
            persisted = []
            dynamic = []
            for asn in sorted(by_as):
                candidates = by_as[asn]
                survivors = [row for row in candidates
                             if signature_col[row] in union]
                if (len(survivors)
                        < reinject_threshold * len(candidates)):
                    persisted.extend(candidates)
                    dynamic.append(asn)
                else:
                    persisted.extend(survivors)
        stats.after_persistence = len(persisted)
        stats.reinjected_ases = dynamic
        _LSPS_DROPPED.inc(
            stats.after_transit_diversity - stats.after_persistence,
            filter="persistence")
        _ASES_REINJECTED.inc(len(dynamic))

    if len(persisted) == len(diverse):
        # Persistence dropped nothing: the TransitDiversity grouping of
        # the kept rows, restricted to diverse keys, is already the
        # final grouping in the right insertion order.
        final_rows = diverse
        final_groups = {key: bucket
                        for key, bucket in group_rows.items()
                        if key in diverse_keys}
    else:
        final_rows = persisted
        final_groups = {}
        for row in persisted:
            key = (row_asn[row], entry_col[row], exit_col[row])
            final_groups.setdefault(key, []).append(row)

    row_asns = [row_asn[row] for row in final_rows]
    _log.debug("engine.filters.done", extracted=stats.extracted,
               survivors=stats.after_persistence,
               reinjected=len(stats.reinjected_ases))
    return final_rows, row_asns, final_groups, stats


def decode_iotps(columns: LspColumns, rows: Sequence[int],
                 row_asns: Sequence[int], addr_asn: Sequence[int],
                 interner: Interner,
                 dynamic_ases: Sequence[int]) -> Dict[IotpKey, Iotp]:
    """Surviving rows back to ``Iotp`` dataclasses, bytes preserved.

    Values are re-interned first-seen exactly like the object engine's
    ``_canonicalize`` (and the ``Lsp`` per distinct signature is built
    once — within an IOTP only the first observation per signature is
    retained anyway), then the rows run through the real
    :func:`group_into_iotps` so dict/set construction order matches the
    object pipeline's survivor order.
    """
    table: dict = {}

    def canon(value):
        return table.setdefault(value, value)

    address_values = interner.address_values
    monitor_values = interner.monitor_values
    run_values = interner.run_values
    lsp_by_signature: Dict[int, Lsp] = {}

    pairs = []
    for row, asn in zip(rows, row_asns):
        sid = columns.signature[row]
        lsp = lsp_by_signature.get(sid)
        if lsp is None:
            hops = canon(tuple(
                canon((canon(address_values[aid]), canon(label)))
                for aid, label in run_values[columns.run[row]]
            ))
            lsp = Lsp(
                entry=canon(address_values[columns.entry[row]]),
                exit=canon(address_values[columns.exit[row]]),
                hops=hops,
                complete=True,
                monitor=canon(monitor_values[columns.monitor[row]]),
                dst=canon(address_values[columns.dst[row]]),
                asn=asn,
            )
            lsp_by_signature[sid] = lsp
        pairs.append((lsp, addr_asn[columns.dst[row]]))

    iotps = group_into_iotps(pairs)
    dynamic = set(dynamic_ases)
    for iotp in iotps.values():
        if iotp.asn in dynamic:
            iotp.dynamic = True
    return iotps


def classify_columns(final_groups: Dict[GroupKey, List[int]],
                     columns: LspColumns, interner: Interner,
                     dynamic_ases: Sequence[int],
                     php_heuristic: bool) -> ClassificationResult:
    """Algorithm 1 over id columns, with per-run memo tables.

    Iterates the groups in sorted *value*-key order — the order
    ``classify`` walks ``sorted(iotps)`` — so verdict insertion order
    and per-class counter totals match the object stage.  Run-scoped
    facts (length, address set, per-address label sets, label
    sequence) are memoised once per run id across all groups, where
    the object engine recomputes them per IOTP.
    """
    address_values = interner.address_values
    run_values = interner.run_values
    signature_values = interner.signature_values
    signature_col = columns.signature
    dynamic = set(dynamic_ases)

    run_length: Dict[int, int] = {}
    run_addresses: Dict[int, Set[int]] = {}
    run_labels_by_address: Dict[int, Dict[int, Set[int]]] = {}
    run_sequence: Dict[int, Tuple[int, ...]] = {}

    def run_facts(rid: int) -> None:
        if rid in run_length:
            return
        pairs = run_values[rid]
        run_length[rid] = len(pairs)
        run_addresses[rid] = {aid for aid, _label in pairs}
        by_address: Dict[int, Set[int]] = {}
        for aid, label in pairs:
            by_address.setdefault(aid, set()).add(label)
        run_labels_by_address[rid] = by_address
        run_sequence[rid] = tuple(label for _aid, label in pairs)

    result = ClassificationResult()
    ordered = sorted(
        final_groups,
        key=lambda key: (key[0], address_values[key[1]],
                         address_values[key[2]]))
    with span("classification.classify", iotps=len(final_groups)):
        for key in ordered:
            asn, entry_aid, exit_aid = key
            # Within one group all signatures share entry/exit, so the
            # distinct signatures differ exactly by their run ids.
            rids = list(dict.fromkeys(
                signature_values[signature_col[row]][2]
                for row in final_groups[key]))
            for rid in rids:
                run_facts(rid)
            lengths = [run_length[rid] for rid in rids]
            verdict_base = dict(
                key=(asn, address_values[entry_aid],
                     address_values[exit_aid]),
                dynamic=asn in dynamic,
                width=len(rids),
                length=max(lengths),
                symmetry=max(lengths) - min(lengths),
            )

            if len(rids) == 1:
                verdict = IotpVerdict(
                    tunnel_class=TunnelClass.MONO_LSP, **verdict_base)
            else:
                counts: Dict[int, int] = {}
                for rid in rids:
                    for aid in run_addresses[rid]:
                        counts[aid] = counts.get(aid, 0) + 1
                common = [aid for aid, count in counts.items()
                          if count >= 2]
                if not common:
                    if php_heuristic:
                        last_labels = {run_values[rid][-1][1]
                                       for rid in rids
                                       if run_values[rid]}
                        verdict = IotpVerdict(
                            tunnel_class=(TunnelClass.MULTI_FEC
                                          if len(last_labels) > 1
                                          else TunnelClass.MONO_FEC),
                            subclass=None, **verdict_base)
                    else:
                        verdict = IotpVerdict(
                            tunnel_class=TunnelClass.UNCLASSIFIED,
                            **verdict_base)
                elif any(
                    len(set().union(*(
                        run_labels_by_address[rid].get(aid, ())
                        for rid in rids))) > 1
                    for aid in common
                ):
                    verdict = IotpVerdict(
                        tunnel_class=TunnelClass.MULTI_FEC,
                        **verdict_base)
                else:
                    sequences = {run_sequence[rid] for rid in rids}
                    verdict = IotpVerdict(
                        tunnel_class=TunnelClass.MONO_FEC,
                        subclass=(MonoFecSubclass.PARALLEL_LINKS
                                  if len(sequences) == 1
                                  else MonoFecSubclass.ROUTERS_DISJOINT),
                        **verdict_base)

            result.add(verdict)
            _IOTPS_CLASSIFIED.inc(
                tunnel_class=verdict.tunnel_class.value)
    return result


def dataset_columns(encoded: EncodedSnapshot,
                    addr_asn: Sequence[int]) -> DatasetStats:
    """The Fig 5 raw statistics from the primary snapshot's columns.

    An address counts as MPLS on *any* quoted stack (``labeled``),
    while a trace counts as tunnel-crossing only on explicit evidence
    — the same two thresholds ``dataset_stats`` and
    ``traces_with_tunnels`` apply.
    """
    offsets = encoded.offsets
    hop_address = encoded.hop_address
    hop_explicit = encoded.hop_explicit
    hop_labeled = encoded.hop_labeled

    # Distinct addresses in first-seen hop order (dict.fromkeys, one
    # C-speed pass), MPLS flags from the labeled positions only (the
    # find chain skips the unlabeled majority), and per-trace tunnel
    # evidence as one find per row range.
    seen = dict.fromkeys(hop_address)
    seen.pop(NO_VALUE, None)

    mpls_aids: Set[int] = set()
    find_labeled = hop_labeled.find
    position = find_labeled(1)
    while position >= 0:
        mpls_aids.add(hop_address[position])
        position = find_labeled(1, position + 1)

    find_explicit = hop_explicit.find
    traces_with_tunnels = sum(
        1 for trace_index in range(encoded.trace_count)
        if find_explicit(1, offsets[trace_index],
                         offsets[trace_index + 1]) >= 0)

    mpls_by_as: Dict[int, int] = {}
    non_mpls_by_as: Dict[int, int] = {}
    mpls_addresses = 0
    for aid in seen:
        asn = addr_asn[aid]
        if aid in mpls_aids:
            mpls_by_as[asn] = mpls_by_as.get(asn, 0) + 1
            mpls_addresses += 1
        else:
            non_mpls_by_as[asn] = non_mpls_by_as.get(asn, 0) + 1

    return DatasetStats(
        trace_count=encoded.trace_count,
        traces_with_tunnels=traces_with_tunnels,
        mpls_addresses=mpls_addresses,
        non_mpls_addresses=len(seen) - mpls_addresses,
        mpls_by_as=mpls_by_as,
        non_mpls_by_as=non_mpls_by_as,
    )


def analyze_snapshots(cycle: int,
                      snapshots: Sequence[Sequence[Trace]],
                      ip2as: Ip2AsMapper, *, persistence_window: int,
                      reinject_threshold: float, php_heuristic: bool
                      ) -> Tuple[DatasetStats, FilterStats,
                                 Dict[IotpKey, Iotp],
                                 ClassificationResult]:
    """One cycle's full analysis through the columnar engine.

    The drop-in replacement for the object engine's extract → filter →
    dataset-stats → classify sequence inside ``pipeline.cycle``: same
    span names, same counter totals, identical artifacts.
    """
    clock = get_tracer().clock
    started = clock.now()

    interner = Interner()
    with span("pipeline.extract"):
        with span("engine.encode"):
            primary_encoded = encode_snapshot(snapshots[0], interner)
        with span("engine.extract"):
            primary = extract_columns(primary_encoded)

    with span("pipeline.follow_ups"):
        follow_up_signatures: List[Set[int]] = []
        for snapshot in snapshots[1:1 + persistence_window]:
            with span("engine.encode"):
                encoded = encode_snapshot(snapshot, interner)
            with span("engine.extract"):
                columns = extract_columns(encoded)
            follow_up_signatures.append({
                columns.signature[row]
                for row in range(columns.count)
                if columns.complete[row]
            })

    # The interner's address space is complete only after every
    # snapshot encoded; one batched lookup then serves all kernels.
    addr_asn = ip2as.lookup_many(interner.address_values)

    with span("pipeline.filters"):
        rows, row_asns, final_groups, filter_stats = filter_columns(
            primary, follow_up_signatures, addr_asn, interner,
            reinject_threshold)
        iotps = decode_iotps(primary, rows, row_asns, addr_asn,
                             interner, filter_stats.reinjected_ases)

    with span("pipeline.dataset_stats"):
        stats = dataset_columns(primary_encoded, addr_asn)

    with span("pipeline.classify"):
        classification = classify_columns(
            final_groups, primary, interner,
            filter_stats.reinjected_ases, php_heuristic)

    elapsed = clock.now() - started
    _KERNEL_SECONDS.inc(elapsed)
    emit("engine.encode", cycle=cycle,
         snapshots=1 + len(follow_up_signatures),
         addresses=len(interner.address_values),
         runs=len(interner.run_values),
         signatures=len(interner.signature_values))
    emit("engine.kernel", cycle=cycle,
         extracted=filter_stats.extracted,
         survivors=filter_stats.after_persistence,
         iotps=len(iotps), seconds=elapsed)
    return stats, filter_stats, iotps, classification
