"""The study flight recorder: an append-only event bus.

Long campaigns need a durable record of *what happened when* — shards
dispatched, retried and completed, checkpoints hit, caches flushed,
cycles finished — that survives a crash and can be replayed afterwards
(``repro report``).  The bus collects :class:`Event` records in memory
and, when a *sink* is attached (the CLI's ``--events-out FILE``),
appends each one as a JSON line the moment it is emitted, flushing per
line so a killed run loses at most the event in flight.

Determinism (DESIGN §6)
-----------------------

Every event carries a **logical sequence number** (``seq``, starting at
1, strictly increasing per bus).  Wall timestamps are only recorded
when the bus carries a real :class:`~repro.obs.trace.Clock` — the
default is a :class:`~repro.obs.trace.NullClock`, under which the
``ts`` field is omitted entirely, so a default run never reads the
clock and a sinked events file from a serial run is byte-reproducible.
The CLI swaps in a :class:`~repro.obs.trace.MonotonicClock` only when
the user also opted into wall-clock observability (``--progress``,
``--profile`` or ``--trace-out``).

Usage mirrors the tracer: a process-wide bus behind
:func:`get_event_bus`/:func:`set_event_bus`, and a module-level
:func:`emit` that instrumented code calls::

    emit("shard.retry", shard=3, attempt=2, error="BrokenProcessPool")

Worker processes install a fresh in-memory bus at shard start, so a
forked sink file descriptor is never written from two processes.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Union,
)

from .trace import Clock, NullClock

_RESERVED = frozenset({"seq", "kind", "ts"})

DEFAULT_KEEP = 65536
"""In-memory events retained per bus (a ring; the sink gets them all)."""


@dataclass(frozen=True)
class Event:
    """One flight-recorder record.

    ``ts`` is monotonic seconds and is None when the bus ran on a
    :class:`NullClock`; ``fields`` are the emitter's keyword payload.
    """

    seq: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)
    ts: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        if self.ts is not None:
            data["ts"] = round(self.ts, 6)
        data.update(self.fields)
        return data


def event_from_dict(data: Dict[str, Any]) -> Event:
    """Rebuild an :class:`Event` from one parsed JSONL row."""
    payload = dict(data)
    seq = payload.pop("seq")
    kind = payload.pop("kind")
    ts = payload.pop("ts", None)
    return Event(seq=seq, kind=kind, fields=payload, ts=ts)


class EventBus:
    """Append-only event collector with an optional JSONL sink.

    ``clock=None`` (the default :class:`NullClock`) keeps the bus free
    of wall-clock reads; ``sink`` is a path or text stream that
    receives one flushed JSON line per event.  The last
    :data:`DEFAULT_KEEP` events stay readable in memory via
    :attr:`events` whether or not a sink is attached.
    """

    def __init__(self, clock: Optional[Clock] = None,
                 sink: Union[str, Path, IO[str], None] = None,
                 keep: int = DEFAULT_KEEP):
        self.clock = clock or NullClock()
        self._seq = 0
        self._events: Deque[Event] = deque(maxlen=keep)
        self._stream: Optional[IO[str]] = None
        self._owns_stream = False
        self.sink_path: Optional[Path] = None
        if sink is not None:
            if isinstance(sink, (str, Path)):
                self.sink_path = Path(sink)
                self._stream = open(self.sink_path, "w",
                                    encoding="utf-8")
                self._owns_stream = True
            else:
                self._stream = sink

    @property
    def events(self) -> List[Event]:
        """The retained in-memory events, oldest first."""
        return list(self._events)

    @property
    def timed(self) -> bool:
        """Whether emitted events carry wall timestamps."""
        return not isinstance(self.clock, NullClock)

    def emit(self, kind: str, /, **fields: Any) -> Event:
        """Record one event; returns it (mostly for tests).

        ``kind`` is positional-only so a payload field may not shadow
        it; the other reserved keys are rejected explicitly.
        """
        clash = _RESERVED.intersection(fields)
        if clash:
            raise ValueError(f"event field(s) {sorted(clash)} shadow "
                             f"reserved flight-recorder keys")
        self._seq += 1
        event = Event(
            seq=self._seq,
            kind=kind,
            fields=fields,
            ts=self.clock.now() if self.timed else None,
        )
        self._events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event.to_dict(),
                                          default=str) + "\n")
            self._stream.flush()
        return event

    def reset(self) -> None:
        """Drop the in-memory events and restart sequence numbering.

        The sink (if any) keeps everything already written — the
        flight recorder never un-records.
        """
        self._events.clear()
        self._seq = 0

    def close(self) -> None:
        """Flush and close an owned sink stream (idempotent)."""
        if self._stream is not None and self._owns_stream:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Event]:
    """Load a flight-recorder JSONL file back into :class:`Event`\\ s.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming its line number, so a truncated final line (crash mid-write)
    is reported rather than silently dropped.
    """
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as error:
                raise ValueError(
                    f"{path}:{number}: bad flight-recorder line: "
                    f"{error}") from error
    return events


def iter_kind(events: Iterator[Event], kind: str) -> List[Event]:
    """The sub-list of ``events`` with one ``kind``, in order."""
    return [event for event in events if event.kind == kind]


_bus = EventBus()


def get_event_bus() -> EventBus:
    """The process-wide bus the instrumented library emits into."""
    return _bus


def set_event_bus(bus: EventBus) -> EventBus:
    """Replace the global bus (e.g. to attach a sink); returns it."""
    global _bus
    _bus = bus
    return bus


def emit(kind: str, /, **fields: Any) -> Event:
    """Emit one event against the *current* global bus."""
    return _bus.emit(kind, **fields)
