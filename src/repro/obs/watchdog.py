"""Heartbeat-deadline stall detection for sharded studies.

A worker that deadlocks, spins on a pathological cycle or blocks on a
dead filesystem looks *exactly* like a slow worker from the parent's
``wait()`` loop — it just never returns.  :class:`StallWatchdog` turns
the existing heartbeat stream into liveness: the runner registers each
dispatched shard, records every heartbeat, and periodically asks
:meth:`check` which shards have been silent past the deadline.

Deadlines are judged against an injectable
:class:`~repro.obs.trace.Clock` (tests drive a
:class:`~repro.obs.trace.FakeClock`; production uses a monotonic one),
and the whole mechanism is **off by default** — the runner only builds
a watchdog when a ``stall_timeout`` is passed, so the DESIGN §6 rule
stands: the library never reads the wall clock unless the caller opts
in.  Flagging is observational: the shard keeps running, the runner
emits ``shard.stalled``, bumps ``par_shards_stalled_total`` and flips
``/healthz``; if the worker later beats or completes, the shard is
*recovered* (``shard.recovered``) and health clears.  A shard that
never recovers still ends in the existing retry/subdivide machinery
once its worker dies or the pool breaks — the watchdog makes the wait
visible, it does not kill workers.

A registered shard's deadline starts at its **first heartbeat**, not at
submission: workers beat once on entry, so a queued shard waiting for a
pool slot is not "stalled", while a worker wedged before its first
cycle is caught.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set

from .trace import Clock, MonotonicClock


class StallWatchdog:
    """Flags shards whose heartbeats go silent past a deadline."""

    def __init__(self, timeout: float, clock: Optional[Clock] = None):
        if timeout <= 0:
            raise ValueError(f"stall timeout must be > 0: {timeout}")
        self.timeout = float(timeout)
        self.clock = clock or MonotonicClock()
        # shard -> last heartbeat time; None until the first beat.
        self._last: Dict[Any, Optional[float]] = {}
        self._stalled: Set[Any] = set()

    @property
    def stalled(self) -> FrozenSet[Any]:
        """Shards currently flagged as stalled."""
        return frozenset(self._stalled)

    def watch(self, shard_id: Any) -> None:
        """Register a dispatched shard (deadline armed on first beat)."""
        self._last.setdefault(shard_id, None)

    def beat(self, shard_id: Any) -> bool:
        """Record one heartbeat; True when it recovers a flagged shard."""
        if shard_id not in self._last:
            return False
        self._last[shard_id] = self.clock.now()
        if shard_id in self._stalled:
            self._stalled.discard(shard_id)
            return True
        return False

    def clear(self, shard_id: Any) -> bool:
        """Deregister a finished/failed shard; True if it was flagged."""
        self._last.pop(shard_id, None)
        if shard_id in self._stalled:
            self._stalled.discard(shard_id)
            return True
        return False

    def check(self) -> List[Any]:
        """Shards newly past the deadline (each reported only once)."""
        now = self.clock.now()
        fresh = sorted(
            shard_id
            for shard_id, last in self._last.items()
            if last is not None and shard_id not in self._stalled
            and now - last > self.timeout
        )
        self._stalled.update(fresh)
        return fresh
