"""A small metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-flavoured but dependency-free.  Metrics carry optional
labels::

    LSPS_DROPPED = REGISTRY.counter(
        "lsps_dropped_total", "LSPs removed by an LPR filter")
    LSPS_DROPPED.inc(34, filter="incomplete")

Counters only go up; gauges go both ways; histograms count observations
into fixed upper-bound buckets (plus ``sum``/``count``).  Everything a
metric records is an integer or a float derived deterministically from
the data — metrics never read the clock, so a seeded run always produces
the identical snapshot (DESIGN §6).

Snapshots are plain dicts (JSON-ready).  :meth:`MetricsRegistry.diff`
subtracts two snapshots (per-cycle accounting),
:meth:`MetricsRegistry.merge` adds any number of them, and
:meth:`MetricsRegistry.absorb` re-applies a delta to the live metrics —
how `repro.par` workers' registries merge back into the parent process
on sharded runs.  The process-wide default registry lives in
:data:`REGISTRY`; tests and the CLI reset it via
:meth:`MetricsRegistry.reset`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                   500.0, 1000.0)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Shared naming/labelling machinery for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help

    def labelled_values(self) -> List[Tuple[LabelKey, Any]]:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc {amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    def labelled_values(self) -> List[Tuple[LabelKey, Any]]:
        return sorted(self._values.items())

    def reset(self) -> None:
        self._values.clear()


class Gauge(Metric):
    """A value that can go up and down (sizes, fractions, levels)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    def labelled_values(self) -> List[Tuple[LabelKey, Any]]:
        return sorted(self._values.items())

    def reset(self) -> None:
        self._values.clear()


class Histogram(Metric):
    """Observations counted into fixed upper-bound buckets.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the rest.  Per label set the
    histogram keeps the bucket counts plus ``sum`` and ``count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name}: buckets must be "
                             f"non-empty, unique, increasing: {bounds}")
        self.buckets = bounds
        self._data: Dict[LabelKey, Dict[str, Any]] = {}

    def _cell(self, key: LabelKey) -> Dict[str, Any]:
        if key not in self._data:
            self._data[key] = {
                "buckets": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
        return self._data[key]

    def observe(self, value: float, **labels: Any) -> None:
        cell = self._cell(_label_key(labels))
        cell["buckets"][bisect_left(self.buckets, value)] += 1
        cell["sum"] += value
        cell["count"] += 1

    def snapshot_cell(self, **labels: Any) -> Dict[str, Any]:
        cell = self._cell(_label_key(labels))
        return {"buckets": list(cell["buckets"]),
                "sum": cell["sum"], "count": cell["count"]}

    def absorb_cell(self, cell: Mapping[str, Any],
                    **labels: Any) -> None:
        """Add a snapshot cell (buckets/sum/count) into this histogram."""
        mine = self._cell(_label_key(labels))
        if len(cell["buckets"]) != len(mine["buckets"]):
            raise ValueError(
                f"histogram {self.name}: cannot absorb a cell with "
                f"{len(cell['buckets'])} buckets into "
                f"{len(mine['buckets'])}")
        mine["buckets"] = [a + b for a, b in zip(mine["buckets"],
                                                 cell["buckets"])]
        mine["sum"] += cell["sum"]
        mine["count"] += cell["count"]

    def labelled_values(self) -> List[Tuple[LabelKey, Any]]:
        return sorted(
            (key, {"buckets": list(cell["buckets"]),
                   "sum": cell["sum"], "count": cell["count"]})
            for key, cell in self._data.items()
        )

    def reset(self) -> None:
        self._data.clear()


class MetricsRegistry:
    """Holds every metric; get-or-create accessors keep call sites flat."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       **kwargs: Any) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested {cls.kind}")
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every metric's values (registrations survive)."""
        for metric in self._metrics.values():
            metric.reset()

    def absorb(self, delta: Mapping[str, Any]) -> None:
        """Re-apply a snapshot delta to this registry's live metrics.

        ``delta`` is :meth:`diff`/:meth:`merge` output (e.g. the
        registry delta a sharded-run worker sends home).  Counters and
        histogram cells add onto the current values; gauges take the
        delta's value.  Metrics absent from this registry are created
        with the delta's type and help text.
        """
        for name in sorted(delta):
            data = delta[name]
            kind = data.get("type", "counter")
            if kind == "counter":
                counter = self.counter(name, data.get("help", ""))
                for entry in data["values"]:
                    counter.inc(entry["value"], **entry["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, data.get("help", ""))
                for entry in data["values"]:
                    gauge.set(entry["value"], **entry["labels"])
            elif kind == "histogram":
                histogram = self.histogram(
                    name, data.get("help", ""),
                    buckets=data.get("buckets", DEFAULT_BUCKETS))
                for entry in data["values"]:
                    histogram.absorb_cell(entry["value"],
                                          **entry["labels"])
            else:
                raise ValueError(
                    f"cannot absorb metric {name!r} of kind {kind!r}")

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready dump of every metric's current values."""
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "values": [
                    {"labels": dict(key), "value": value}
                    for key, value in metric.labelled_values()
                ],
            }
            if isinstance(metric, Histogram):
                out[metric.name]["buckets"] = list(metric.buckets)
        return out

    @staticmethod
    def diff(before: Mapping[str, Any],
             after: Mapping[str, Any]) -> Dict[str, Any]:
        """``after - before`` for counters/histograms; gauges keep
        their ``after`` value, but only when it *changed* in the
        window.  Metrics absent from ``before`` count from zero;
        zero-delta and unchanged-gauge entries are dropped — a
        long-lived gauge (say a worker's peak RSS) set outside the
        window must not leak into every subsequent delta.
        """
        out: Dict[str, Any] = {}
        for name, data in after.items():
            previous = {
                _label_key(entry["labels"]): entry["value"]
                for entry in before.get(name, {}).get("values", [])
            }
            values = []
            for entry in data["values"]:
                key = _label_key(entry["labels"])
                if (data["type"] == "gauge"
                        and previous.get(key) == entry["value"]):
                    continue
                delta = _subtract(data["type"], entry["value"],
                                  previous.get(key))
                if _is_zero(delta):
                    continue
                values.append({"labels": dict(entry["labels"]),
                               "value": delta})
            if values:
                out[name] = {**{k: v for k, v in data.items()
                                if k != "values"}, "values": values}
        return out

    @staticmethod
    def merge(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
        """Sum counters/histograms across snapshots (gauges: last wins)."""
        out: Dict[str, Any] = {}
        for snapshot in snapshots:
            for name, data in snapshot.items():
                if name not in out:
                    out[name] = {**{k: v for k, v in data.items()
                                    if k != "values"}, "values": []}
                merged = {
                    _label_key(entry["labels"]): entry["value"]
                    for entry in out[name]["values"]
                }
                for entry in data["values"]:
                    key = _label_key(entry["labels"])
                    if key in merged and data["type"] != "gauge":
                        merged[key] = _add(data["type"], merged[key],
                                           entry["value"])
                    else:
                        merged[key] = entry["value"]
                out[name]["values"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(merged.items())
                ]
        return out


def _subtract(kind: str, after: Any, before: Any) -> Any:
    if before is None:
        return after
    if kind == "gauge":
        return after
    if kind == "histogram":
        return {
            "buckets": [a - b for a, b in zip(after["buckets"],
                                              before["buckets"])],
            "sum": after["sum"] - before["sum"],
            "count": after["count"] - before["count"],
        }
    return after - before


def _add(kind: str, left: Any, right: Any) -> Any:
    if kind == "histogram":
        return {
            "buckets": [a + b for a, b in zip(left["buckets"],
                                              right["buckets"])],
            "sum": left["sum"] + right["sum"],
            "count": left["count"] + right["count"],
        }
    return left + right


def _is_zero(value: Any) -> bool:
    if isinstance(value, dict):
        return value.get("count", 0) == 0 and not any(value["buckets"])
    return value == 0


REGISTRY = MetricsRegistry()
"""The process-wide registry all library instrumentation reports to."""


def get_registry() -> MetricsRegistry:
    """The default registry (one per process, reset-able)."""
    return REGISTRY
