"""Per-process resource sampling for the live telemetry plane.

A long campaign's operational questions — is a worker leaking memory,
is the parent CPU-bound on reassembly, is GC churning — need per-process
resource telemetry, not just logical progress.  :func:`sample_resources`
reads the *current* process's peak RSS, cumulative user/system CPU time
and per-generation GC collection counts; workers attach the sample to
their heartbeats and the parent folds it into labelled gauges via
:func:`record_resources`.

Every sampled quantity is **cumulative/peak, hence monotone**: peak RSS
(``ru_maxrss``) never shrinks, CPU seconds and GC collection counts only
grow.  :func:`absorb_resources` therefore folds with ``max``, which
makes absorption **order-independent and idempotent** — duplicate or
out-of-order heartbeats (a retried shard, a laggy manager queue) can
never double-count or regress a gauge.  The heartbeat-robustness
property tests pin exactly this.

Sampling reads OS counters, not the wall clock, but the values are
still per-run execution detail: the gauges live only in the parent's
registry (worker metric deltas never contain them) and carry the
``worker_`` prefix the checkpoint layer strips, so byte-identity of
results, checkpoints and per-cycle deltas is untouched (DESIGN §6).
"""

from __future__ import annotations

import gc
import os
import sys
from typing import Any, Dict, Optional

try:  # POSIX-only; absent e.g. on Windows
    import resource as _resource
except ImportError:  # pragma: no cover - platform fallback
    _resource = None

from .events import emit
from .metrics import Gauge, MetricsRegistry, get_registry

RSS_GAUGE = "worker_rss_bytes"
CPU_GAUGE = "worker_cpu_seconds_total"
GC_GAUGE = "worker_gc_collections_total"

_HELP = {
    RSS_GAUGE: "Peak resident set size per process (bytes)",
    CPU_GAUGE: "Cumulative CPU seconds per process, by mode",
    GC_GAUGE: "Cumulative GC collections per process, by generation",
}


def sample_resources() -> Dict[str, Any]:
    """One resource sample of the calling process.

    ``rss_bytes`` is the peak RSS (0 where :mod:`resource` is
    unavailable); CPU times come from ``os.times`` (portable);
    ``gc_collections`` lists the per-generation collection counts.
    """
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS.
        rss = int(usage.ru_maxrss)
        if sys.platform != "darwin":
            rss *= 1024
    else:  # pragma: no cover - platform fallback
        rss = 0
    times = os.times()
    return {
        "rss_bytes": rss,
        "cpu_user_s": round(times.user, 6),
        "cpu_sys_s": round(times.system, 6),
        "gc_collections": [int(stat.get("collections", 0))
                           for stat in gc.get_stats()],
    }


def _fold(gauge: Gauge, value: float, **labels: Any) -> None:
    """Monotone fold: only ever raise the gauge (see module docstring)."""
    if value > gauge.value(**labels):
        gauge.set(value, **labels)


def absorb_resources(shard: Any, sample: Dict[str, Any],
                     registry: Optional[MetricsRegistry] = None) -> None:
    """Fold one process sample into the labelled worker gauges.

    ``shard`` labels the source process: a shard id, ``0`` for the
    serial loop, ``"parent"`` for the parent of a parallel run.
    """
    registry = registry or get_registry()
    shard = str(shard)
    _fold(registry.gauge(RSS_GAUGE, _HELP[RSS_GAUGE]),
          sample.get("rss_bytes", 0), shard=shard)
    cpu = registry.gauge(CPU_GAUGE, _HELP[CPU_GAUGE])
    _fold(cpu, sample.get("cpu_user_s", 0.0), shard=shard, mode="user")
    _fold(cpu, sample.get("cpu_sys_s", 0.0), shard=shard, mode="sys")
    gc_gauge = registry.gauge(GC_GAUGE, _HELP[GC_GAUGE])
    for gen, count in enumerate(sample.get("gc_collections", [])):
        _fold(gc_gauge, count, shard=shard, gen=str(gen))


def record_resources(shard: Any, sample: Dict[str, Any],
                     registry: Optional[MetricsRegistry] = None) -> None:
    """Absorb a sample *and* emit it as a ``worker.resources`` event.

    The event stream is what ``repro report`` rebuilds the resource
    usage section from; the gauges are what ``/metrics`` scrapes live.
    """
    absorb_resources(shard, sample, registry)
    emit("worker.resources", shard=shard, **sample)
