"""Exporters for metrics snapshots and trace trees.

Three formats:

* JSON — the registry snapshot dict, verbatim, for ``--metrics-out``
  and programmatic diffing;
* Prometheus text exposition (version 0.0.4) — ``# HELP``/``# TYPE``
  headers plus one sample per label set, histograms expanded into
  ``_bucket``/``_sum``/``_count`` series with cumulative ``le`` bounds;
* Chrome trace-event JSON (``--trace-out``) — the tracer's span trees
  as complete (``"ph": "X"``) events, loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans grafted
  from workers (tagged with a ``shard`` attribute) render on their own
  named track, so a sharded study shows parent and worker timelines
  side by side.
"""

from __future__ import annotations

import json
import math
from decimal import Decimal
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .metrics import MetricsRegistry, get_registry
from .trace import Span, Tracer

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
"""The standard content type of the text exposition format — what a
``/metrics`` HTTP handler (:mod:`repro.obs.live`) must declare."""


def snapshot_to_json(snapshot: Mapping[str, Any], indent: int = 2) -> str:
    """Serialize a registry snapshot (or diff/merge result) to JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def registry_to_json(registry: Optional[MetricsRegistry] = None,
                     indent: int = 2) -> str:
    """Serialize a whole registry's current state to JSON."""
    return snapshot_to_json((registry or get_registry()).snapshot(),
                            indent=indent)


def write_metrics_json(path: Union[str, Path],
                       registry: Optional[MetricsRegistry] = None,
                       trace: Optional[Tracer] = None) -> None:
    """Write ``{"metrics": ..., "spans": ...}`` to ``path``.

    ``spans`` is included only when a tracer is given and recorded
    anything — plain metric dumps stay pure snapshots.
    """
    payload: Dict[str, Any] = {
        "metrics": (registry or get_registry()).snapshot(),
    }
    if trace is not None and trace.roots:
        payload["spans"] = trace.to_dict()
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _prom_labels(labels: Mapping[str, str],
                 extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_number(value: float) -> str:
    """One Prometheus-canonical number.

    Non-finite values use the exposition-format spellings (``+Inf``,
    ``-Inf``, ``NaN`` — a histogram declared with an explicit infinite
    bound must not render Python's ``inf``); integral floats drop the
    ``.0``; and scientific notation from ``repr`` (``1e-07``,
    ``1e+21``) is expanded to plain decimal so ``le`` label values stay
    canonical across magnitudes.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value):
            return str(int(value))
    text = repr(value)
    if "e" in text or "E" in text:
        text = format(Decimal(text), "f")
    return text


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry in Prometheus text exposition format."""
    registry = registry or get_registry()
    lines: List[str] = []
    for name, data in registry.snapshot().items():
        if data["help"]:
            lines.append(f"# HELP {name} {data['help']}")
        lines.append(f"# TYPE {name} {data['type']}")
        if data["type"] == "histogram":
            bounds = data["buckets"]
            for entry in data["values"]:
                labels, cell = entry["labels"], entry["value"]
                cumulative = 0
                for bound, count in zip(bounds, cell["buckets"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_prom_labels(labels, {'le': _format_number(bound)})}"
                        f" {cumulative}")
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})}"
                    f" {cell['count']}")
                lines.append(f"{name}_sum{_prom_labels(labels)}"
                             f" {_format_number(cell['sum'])}")
                lines.append(f"{name}_count{_prom_labels(labels)}"
                             f" {cell['count']}")
        else:
            for entry in data["values"]:
                lines.append(
                    f"{name}{_prom_labels(entry['labels'])}"
                    f" {_format_number(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


_PARENT_TID = 0


def to_chrome_trace(tracer: Union[Tracer, Sequence[Span]]
                    ) -> Dict[str, Any]:
    """The span trees as a Chrome trace-event JSON object.

    Every closed span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur``; still-open spans are emitted with
    ``dur`` 0 and ``"open": true`` in their args.  Timestamps are
    shifted so the earliest span starts at 0 (Perfetto dislikes raw
    monotonic epochs).  A subtree whose root carries a ``shard``
    attribute — how :meth:`Tracer.graft` tags worker spans — is placed
    on thread id ``shard + 1`` and the track is named ``shard N`` via
    ``thread_name`` metadata; everything else lives on the parent
    track (tid 0).
    """
    roots = tracer.roots if isinstance(tracer, Tracer) else list(tracer)
    starts = [node.start for root in roots
              for _depth, node in root.walk()]
    origin = min(starts, default=0.0)
    events: List[Dict[str, Any]] = []
    tids: Dict[int, str] = {_PARENT_TID: "parent"}

    def walk(node: Span, tid: int) -> None:
        if "shard" in node.attrs:
            tid = int(node.attrs["shard"]) + 1
            tids.setdefault(tid, f"shard {node.attrs['shard']}")
        args = dict(node.attrs)
        if node.end is None:
            args["open"] = True
        event = {
            "name": node.name,
            "ph": "X",
            "ts": round((node.start - origin) * 1e6, 3),
            "dur": round(node.duration * 1e6, 3),
            "pid": 0,
            "tid": tid,
        }
        if args:
            event["args"] = args
        events.append(event)
        for child in node.children:
            walk(child, tid)

    for root in roots:
        walk(root, _PARENT_TID)
    metadata = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": label}}
        for tid, label in sorted(tids.items())
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, Path],
                       tracer: Optional[Tracer] = None) -> None:
    """Write the tracer's Chrome trace JSON to ``path``."""
    from .trace import get_tracer  # late: default to the live tracer
    payload = to_chrome_trace(tracer if tracer is not None
                              else get_tracer())
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
