"""Exporters for metrics snapshots and trace trees.

Two formats:

* JSON — the registry snapshot dict, verbatim, for ``--metrics-out``
  and programmatic diffing;
* Prometheus text exposition (version 0.0.4) — ``# HELP``/``# TYPE``
  headers plus one sample per label set, histograms expanded into
  ``_bucket``/``_sum``/``_count`` series with cumulative ``le`` bounds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from .metrics import MetricsRegistry, get_registry
from .trace import Tracer


def snapshot_to_json(snapshot: Mapping[str, Any], indent: int = 2) -> str:
    """Serialize a registry snapshot (or diff/merge result) to JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def registry_to_json(registry: Optional[MetricsRegistry] = None,
                     indent: int = 2) -> str:
    """Serialize a whole registry's current state to JSON."""
    return snapshot_to_json((registry or get_registry()).snapshot(),
                            indent=indent)


def write_metrics_json(path: Union[str, Path],
                       registry: Optional[MetricsRegistry] = None,
                       trace: Optional[Tracer] = None) -> None:
    """Write ``{"metrics": ..., "spans": ...}`` to ``path``.

    ``spans`` is included only when a tracer is given and recorded
    anything — plain metric dumps stay pure snapshots.
    """
    payload: Dict[str, Any] = {
        "metrics": (registry or get_registry()).snapshot(),
    }
    if trace is not None and trace.roots:
        payload["spans"] = trace.to_dict()
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _prom_labels(labels: Mapping[str, str],
                 extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_number(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry in Prometheus text exposition format."""
    registry = registry or get_registry()
    lines: List[str] = []
    for name, data in registry.snapshot().items():
        if data["help"]:
            lines.append(f"# HELP {name} {data['help']}")
        lines.append(f"# TYPE {name} {data['type']}")
        if data["type"] == "histogram":
            bounds = data["buckets"]
            for entry in data["values"]:
                labels, cell = entry["labels"], entry["value"]
                cumulative = 0
                for bound, count in zip(bounds, cell["buckets"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_prom_labels(labels, {'le': _format_number(bound)})}"
                        f" {cumulative}")
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})}"
                    f" {cell['count']}")
                lines.append(f"{name}_sum{_prom_labels(labels)}"
                             f" {_format_number(cell['sum'])}")
                lines.append(f"{name}_count{_prom_labels(labels)}"
                             f" {cell['count']}")
        else:
            for entry in data["values"]:
                lines.append(
                    f"{name}{_prom_labels(entry['labels'])}"
                    f" {_format_number(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")
