"""Observability: structured logging, span tracing, metrics.

The library instruments its hot path (simulation, extraction, filters,
classification) against the process-wide singletons exposed here:

* :func:`get_logger` — namespaced structured loggers (silent until
  :func:`configure_logging` attaches a handler);
* :func:`span` / :func:`get_tracer` — hierarchical wall-time spans.
  The default tracer carries a :class:`NullClock`, so the library never
  reads the wall clock unless a caller opts into profiling
  (DESIGN §6 determinism contract);
* :data:`REGISTRY` / :func:`get_registry` — counters, gauges and
  histograms, all derived deterministically from the data.

Exporters (:mod:`repro.obs.export`) render registry snapshots as JSON
or Prometheus text.
"""

from .log import (
    JsonFormatter,
    KeyValueFormatter,
    StructuredLogger,
    get_logger,
)
from .log import configure as configure_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .trace import (
    Clock,
    FakeClock,
    MonotonicClock,
    NullClock,
    Span,
    SpanTotals,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    traced,
)
from .export import (
    registry_to_json,
    snapshot_to_json,
    to_prometheus,
    write_metrics_json,
)

__all__ = [
    "JsonFormatter",
    "KeyValueFormatter",
    "StructuredLogger",
    "get_logger",
    "configure_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "Clock",
    "FakeClock",
    "MonotonicClock",
    "NullClock",
    "Span",
    "SpanTotals",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "registry_to_json",
    "snapshot_to_json",
    "to_prometheus",
    "write_metrics_json",
]
