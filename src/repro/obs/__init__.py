"""Observability: structured logging, span tracing, metrics.

The library instruments its hot path (simulation, extraction, filters,
classification) against the process-wide singletons exposed here:

* :func:`get_logger` — namespaced structured loggers (silent until
  :func:`configure_logging` attaches a handler);
* :func:`span` / :func:`get_tracer` — hierarchical wall-time spans.
  The default tracer carries a :class:`NullClock`, so the library never
  reads the wall clock unless a caller opts into profiling
  (DESIGN §6 determinism contract);
* :data:`REGISTRY` / :func:`get_registry` — counters, gauges and
  histograms, all derived deterministically from the data;
* :func:`emit` / :func:`get_event_bus` — the study flight recorder
  (:mod:`repro.obs.events`): an append-only event bus with logical
  sequence numbers always and wall timestamps only under a real
  :class:`Clock`;
* :class:`ProgressTracker` (:mod:`repro.obs.progress`) — live campaign
  progress aggregated from worker heartbeats, with ETA.

Exporters (:mod:`repro.obs.export`) render registry snapshots as JSON
or Prometheus text, and span trees as Chrome trace-event JSON
(Perfetto-loadable).

The **live telemetry plane** (DESIGN §13) builds on all of the above:
:class:`TelemetryServer` (:mod:`repro.obs.live`) serves the live
registry, health, progress and event tail over HTTP while a study
runs; :mod:`repro.obs.resources` samples per-process RSS/CPU/GC on
worker heartbeats; :class:`StallWatchdog` (:mod:`repro.obs.watchdog`)
flags shards whose heartbeats go silent past a deadline.  All of it is
opt-in and clock-injected, so the determinism contract holds.
"""

from .log import (
    JsonFormatter,
    KeyValueFormatter,
    StructuredLogger,
    get_logger,
)
from .log import configure as configure_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .trace import (
    Clock,
    FakeClock,
    MonotonicClock,
    NullClock,
    Span,
    SpanTotals,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    traced,
)
from .export import (
    PROMETHEUS_CONTENT_TYPE,
    registry_to_json,
    snapshot_to_json,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_metrics_json,
)
from .events import (
    Event,
    EventBus,
    emit,
    event_from_dict,
    get_event_bus,
    read_events,
    set_event_bus,
)
from .progress import ProgressPrinter, ProgressTracker
from .resources import (
    absorb_resources,
    record_resources,
    sample_resources,
)
from .watchdog import StallWatchdog
from .live import (
    HealthMonitor,
    TelemetryServer,
    parse_endpoint,
)

__all__ = [
    "JsonFormatter",
    "KeyValueFormatter",
    "StructuredLogger",
    "get_logger",
    "configure_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "Clock",
    "FakeClock",
    "MonotonicClock",
    "NullClock",
    "Span",
    "SpanTotals",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "registry_to_json",
    "snapshot_to_json",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
    "write_metrics_json",
    "Event",
    "EventBus",
    "emit",
    "event_from_dict",
    "get_event_bus",
    "read_events",
    "set_event_bus",
    "ProgressPrinter",
    "ProgressTracker",
    "PROMETHEUS_CONTENT_TYPE",
    "absorb_resources",
    "record_resources",
    "sample_resources",
    "StallWatchdog",
    "HealthMonitor",
    "TelemetryServer",
    "parse_endpoint",
]
