"""Structured logging on top of stdlib :mod:`logging`.

Every module of the library obtains a namespaced logger via
:func:`get_logger` (``repro.sim.ark``, ``repro.core.filters``, ...) and
emits *events* rather than prose: a short dotted event name plus
key=value fields::

    log = get_logger(__name__)
    log.info("cycle.done", cycle=12, traces=2381)

Nothing is printed until :func:`configure` attaches a handler — the
library itself stays silent (a :class:`logging.NullHandler` sits on the
``repro`` root), so importing it never touches stderr or the wall clock.
The CLI calls :func:`configure` from its global ``--log-level`` /
``--log-json`` flags; embedders may instead attach their own handlers to
the ``repro`` logger tree and still receive the structured fields via
``record.fields``.

Two formatters ship with the library:

* :class:`KeyValueFormatter` — one human-readable line,
  ``HH:MM:SS LEVEL logger event key=value ...``;
* :class:`JsonFormatter` — one JSON object per line, safe to feed into
  ``jq`` or a log pipeline.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Dict, IO, Mapping, Optional

ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

logging.getLogger(ROOT).addHandler(logging.NullHandler())


def _fields_of(record: logging.LogRecord) -> Mapping[str, Any]:
    return getattr(record, "fields", None) or {}


def _format_value(value: Any) -> str:
    """Render one field value for the key=value formatter."""
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return json.dumps(text)
    return text


class KeyValueFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger event key=value ...`` lines."""

    default_time_format = "%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        head = (f"{self.formatTime(record)} {record.levelname:<7} "
                f"{record.name} {record.getMessage()}")
        pairs = " ".join(
            f"{key}={_format_value(value)}"
            for key, value in _fields_of(record).items()
        )
        return f"{head} {pairs}" if pairs else head


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(_fields_of(record))
        return json.dumps(payload, default=str)


class StructuredLogger:
    """Thin wrapper turning keyword arguments into structured fields.

    The wrapper is deliberately lazy: when the level is disabled the
    call returns before any field formatting happens, so instrumented
    hot paths cost one integer comparison.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def is_enabled_for(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)

    def _log(self, level: int, event: str,
             fields: Dict[str, Any]) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """A structured logger namespaced under ``repro``.

    ``name`` is typically ``__name__``; names outside the ``repro``
    tree are re-rooted under it so :func:`configure` always governs
    them.
    """
    if name != ROOT and not name.startswith(ROOT + "."):
        name = f"{ROOT}.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure(level: str = "info", json_output: bool = False,
              stream: Optional[IO[str]] = None) -> logging.Handler:
    """Attach one stream handler to the ``repro`` logger tree.

    Replaces any handler a previous :func:`configure` call installed,
    so the CLI (and tests) can call it repeatedly.  Returns the handler
    for callers that want to detach it again.
    """
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"expected one of {sorted(_LEVELS)}")
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_configured", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_output
                         else KeyValueFormatter())
    handler._repro_configured = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(_LEVELS[level])
    root.propagate = False
    return handler
