"""The live telemetry plane: an opt-in HTTP window into a running study.

Every other observability surface in :mod:`repro.obs` is post-hoc —
metrics snapshots, event files and ``repro report`` only answer
questions after the run.  ``repro study --serve-telemetry [HOST:]PORT``
starts a :class:`TelemetryServer` (stdlib ``ThreadingHTTPServer``, no
new dependencies) on a daemon thread so an operator can ask a
multi-hour campaign, while it runs:

========================  ==============================================
endpoint                  answer
========================  ==============================================
``/metrics``              the live parent registry in Prometheus text
                          exposition (:data:`PROMETHEUS_CONTENT_TYPE`)
``/healthz``              200 + JSON while the study beats, 503 once a
                          shard stalls or heartbeats go stale
``/progress``             the :class:`~repro.obs.progress.\
ProgressTracker` snapshot: work done / total, ETA, per-shard high-water
``/events?n=K``           JSON tail (default 100) of the
                          :class:`~repro.obs.events.EventBus` ring
========================  ==============================================

The server only *reads* shared state — registry snapshots, the tracker
(behind its lock), the event ring — and serves on its own thread, so it
can never perturb results; byte-identity of a telemetry-served run
against a bare serial one is asserted end-to-end in the flight-recorder
tests (DESIGN §6).

:class:`HealthMonitor` is the tiny shared truth behind ``/healthz``:
the runner beats it on every heartbeat/cycle, the stall watchdog flips
it per-shard, and ``finish()`` freezes it healthy once the study
returns (a completed study is not "stale", however long ago it beat).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .events import EventBus, get_event_bus
from .export import PROMETHEUS_CONTENT_TYPE, to_prometheus
from .metrics import MetricsRegistry, get_registry
from .progress import ProgressTracker
from .trace import Clock, MonotonicClock

DEFAULT_HOST = "127.0.0.1"
DEFAULT_EVENT_TAIL = 100

JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def parse_endpoint(text: str) -> Tuple[str, int]:
    """``"[HOST:]PORT"`` -> ``(host, port)``; port 0 = ephemeral.

    A bare port binds loopback (:data:`DEFAULT_HOST`) — telemetry is
    plaintext and unauthenticated, so exposing it beyond the host is an
    explicit choice (``0.0.0.0:9090``).
    """
    host, _, port_text = text.rpartition(":")
    host = host or DEFAULT_HOST
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad telemetry endpoint {text!r}: expected [HOST:]PORT")
    if not 0 <= port <= 65535:
        raise ValueError(
            f"bad telemetry port {port}: expected 0-65535")
    return host, port


class HealthMonitor:
    """Thread-safe liveness state behind ``/healthz``.

    Healthy means: no shard currently flagged stalled, and — when built
    with a ``stall_timeout`` — the last beat is no older than that
    (covers the serial loop, which has no per-shard watchdog).  A
    finished study is permanently healthy.
    """

    def __init__(self, stall_timeout: Optional[float] = None,
                 clock: Optional[Clock] = None):
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError(
                f"stall timeout must be > 0: {stall_timeout}")
        self.stall_timeout = stall_timeout
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        self._beats = 0
        self._last_beat = self.clock.now()
        self._stalled: Dict[Any, float] = {}
        self._finished = False

    def beat(self) -> None:
        """Any sign of life: a heartbeat drained, a cycle finished."""
        with self._lock:
            self._beats += 1
            self._last_beat = self.clock.now()

    def stall(self, shard_id: Any) -> None:
        """The watchdog flagged one shard as silent past its deadline."""
        with self._lock:
            self._stalled[shard_id] = self.clock.now()

    def clear(self, shard_id: Any) -> None:
        """The flagged shard beat again or completed."""
        with self._lock:
            self._stalled.pop(shard_id, None)

    def finish(self) -> None:
        """The study returned: freeze healthy, stop judging staleness."""
        with self._lock:
            self._finished = True
            self._stalled.clear()

    @property
    def healthy(self) -> bool:
        with self._lock:
            if self._stalled:
                return False
            if self._finished or self.stall_timeout is None:
                return True
            return (self.clock.now() - self._last_beat
                    <= self.stall_timeout)

    def status(self) -> Dict[str, Any]:
        """The JSON body ``/healthz`` serves."""
        healthy = self.healthy
        with self._lock:
            return {
                "status": "ok" if healthy else "stalled",
                "beats": self._beats,
                "finished": self._finished,
                "stalled_shards": sorted(
                    str(shard) for shard in self._stalled),
                "since_last_beat_s": round(
                    self.clock.now() - self._last_beat, 3),
            }


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shim: all routing lives in TelemetryServer.respond."""

    server_version = "repro-telemetry"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        try:
            status, content_type, body = telemetry.respond(self.path)
        except Exception as error:  # never kill the serving thread
            status, content_type = 500, "text/plain; charset=utf-8"
            body = f"telemetry error: {error}\n".encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-response

    def log_message(self, format: str, *args: Any) -> None:
        pass  # scrapes must not spam the study's stderr


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    telemetry: "TelemetryServer"


class TelemetryServer:
    """Serves /metrics, /healthz, /progress and /events for one study.

    Build it, :meth:`start` it (port 0 picks a free port — read
    :attr:`url` after), pass :meth:`on_progress` as (part of) the
    study's progress callback so the tracker and liveness reach the
    server, and :meth:`stop` it when the run is over.  :meth:`respond`
    is the transport-free core — tests drive it directly, the HTTP
    handler delegates to it.
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = 0, *,
                 registry: Optional[MetricsRegistry] = None,
                 bus: Optional[EventBus] = None,
                 health: Optional[HealthMonitor] = None):
        self.host = host
        self.port = port
        self._registry = registry
        self._bus = bus
        self.health = health or HealthMonitor()
        self._tracker: Optional[ProgressTracker] = None
        self._httpd: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- study-side hooks ----------------------------------------------------

    def set_tracker(self, tracker: Optional[ProgressTracker]) -> None:
        self._tracker = tracker

    def on_progress(self, tracker: ProgressTracker) -> None:
        """Progress-callback form: latch the tracker, count a beat."""
        self._tracker = tracker
        self.health.beat()

    # -- lifecycle -----------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        httpd = _TelemetryHTTPServer((self.host, self.port), _Handler)
        httpd.telemetry = self
        self.host, self.port = httpd.server_address[:2]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-telemetry", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- routing -------------------------------------------------------------

    def respond(self, path: str) -> Tuple[int, str, bytes]:
        """Route one GET: ``(status, content type, body bytes)``."""
        parsed = urlsplit(path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            return self._metrics()
        if route == "/healthz":
            return self._healthz()
        if route == "/progress":
            return self._progress()
        if route == "/events":
            return self._events(parse_qs(parsed.query))
        return (404, "text/plain; charset=utf-8",
                b"unknown endpoint; try /metrics /healthz /progress "
                b"/events\n")

    def _metrics(self) -> Tuple[int, str, bytes]:
        registry = self._registry or get_registry()
        # snapshot() iterates live dicts the study mutates from its own
        # thread; retry the rare concurrent-resize race instead of
        # serving a 500 to the scraper.
        for attempt in range(3):
            try:
                body = to_prometheus(registry)
                break
            except RuntimeError:
                if attempt == 2:
                    raise
        return 200, PROMETHEUS_CONTENT_TYPE, body.encode("utf-8")

    def _healthz(self) -> Tuple[int, str, bytes]:
        status = self.health.status()
        code = 200 if status["status"] == "ok" else 503
        return code, JSON_CONTENT_TYPE, _json_body(status)

    def _progress(self) -> Tuple[int, str, bytes]:
        tracker = self._tracker
        if tracker is None:
            return (200, JSON_CONTENT_TYPE,
                    _json_body({"active": False, "eta": None}))
        return 200, JSON_CONTENT_TYPE, _json_body(tracker.snapshot())

    def _events(self, query: Dict[str, Any]) -> Tuple[int, str, bytes]:
        try:
            tail = int(query.get("n", [DEFAULT_EVENT_TAIL])[0])
        except (TypeError, ValueError):
            return (400, "text/plain; charset=utf-8",
                    b"bad ?n=: expected an integer\n")
        bus = self._bus or get_event_bus()
        events = bus.events
        if tail >= 0:
            events = events[-tail:] if tail else []
        return 200, JSON_CONTENT_TYPE, _json_body(
            {"count": len(events),
             "events": [event.to_dict() for event in events]})


def _json_body(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True, default=str) +
            "\n").encode("utf-8")
