"""Live study progress: heartbeat aggregation, ETA, one-line rendering.

A sharded study is a black box without this: workers probe for minutes
before their shard returns.  :class:`ProgressTracker` aggregates the
per-shard heartbeats the workers push over the runner's progress queue
(cycles done, pair blocks done, traces simulated) into campaign-level
totals, and derives an ETA from the completed-work rate.

The displayed work counter is **monotonically non-decreasing**: stale
or duplicate heartbeats are folded with ``max``, and when a failed
shard is abandoned for retry its partial progress stays on the high
water mark (the work is redone, but a progress line must never move
backwards).

Wall-clock use is opt-in, as everywhere in :mod:`repro.obs`: the
tracker only computes elapsed time / ETA when built with a real
:class:`~repro.obs.trace.Clock` (the CLI's ``--progress`` passes a
:class:`~repro.obs.trace.MonotonicClock`; tests pass a
:class:`~repro.obs.trace.FakeClock`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, IO, Optional

from .trace import Clock, NullClock


@dataclass
class ShardProgress:
    """Aggregated heartbeat state of one shard."""

    shard_id: int
    work: float
    """Cycle-units this shard covers (len(cycles), or 1/count for an
    intra-cycle pair block)."""
    is_block: bool = False
    work_done: float = 0.0
    traces: int = 0
    done: bool = False
    abandoned: bool = False


class ProgressTracker:
    """Campaign-level progress derived from per-shard heartbeats."""

    def __init__(self, total_cycles: int, clock: Optional[Clock] = None):
        self.total_cycles = total_cycles
        self.clock = clock or NullClock()
        self.shards: Dict[int, ShardProgress] = {}
        self._start = self.clock.now()
        self._high_water = 0.0

    # -- shard registry ------------------------------------------------------

    def add_shard(self, shard_id: int, work: float,
                  is_block: bool = False,
                  done: bool = False) -> None:
        """Register one shard's share of the campaign.

        ``work`` is in cycle units; ``done=True`` registers an
        already-finished shard (e.g. restored from a checkpoint).
        """
        progress = ShardProgress(shard_id=shard_id, work=work,
                                 is_block=is_block)
        self.shards[shard_id] = progress
        if done:
            self.shard_done(shard_id)

    def abandon_shard(self, shard_id: int) -> None:
        """Mark a failed shard: its work will be redone elsewhere."""
        progress = self.shards.get(shard_id)
        if progress is not None and not progress.done:
            progress.abandoned = True

    # -- updates -------------------------------------------------------------

    def heartbeat(self, shard_id: int, cycles_done: float = 0,
                  blocks_done: int = 0, traces: int = 0) -> None:
        """Fold one worker heartbeat in (monotonic per shard)."""
        progress = self.shards.get(shard_id)
        if progress is None:
            return
        work = float(cycles_done) + blocks_done * (
            progress.work if progress.is_block else 0.0)
        progress.work_done = min(progress.work,
                                 max(progress.work_done, work))
        progress.traces = max(progress.traces, traces)
        self._advance()

    def shard_done(self, shard_id: int) -> None:
        progress = self.shards.get(shard_id)
        if progress is None:
            return
        progress.done = True
        progress.abandoned = False
        progress.work_done = progress.work
        self._advance()

    def _advance(self) -> None:
        live = sum(p.work_done for p in self.shards.values()
                   if not p.abandoned)
        self._high_water = max(self._high_water, live)

    # -- derived totals ------------------------------------------------------

    @property
    def work_done(self) -> float:
        """Completed cycle-units (high-water, never decreases)."""
        return min(float(self.total_cycles), self._high_water)

    @property
    def traces(self) -> int:
        return sum(p.traces for p in self.shards.values())

    @property
    def shards_done(self) -> int:
        return sum(1 for p in self.shards.values() if p.done)

    @property
    def shards_total(self) -> int:
        return sum(1 for p in self.shards.values() if not p.abandoned)

    @property
    def fraction(self) -> float:
        if self.total_cycles <= 0:
            return 1.0
        return self.work_done / self.total_cycles

    def elapsed(self) -> float:
        return self.clock.now() - self._start

    def eta_seconds(self) -> Optional[float]:
        """Remaining seconds from the completed-work rate, or None.

        None until any work completed, or under a :class:`NullClock`
        (no elapsed time to rate against).
        """
        elapsed = self.elapsed()
        if elapsed <= 0 or self.work_done <= 0:
            return None
        rate = self.work_done / elapsed
        return (self.total_cycles - self.work_done) / rate

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """One status line, e.g.
        ``cycles 12.0/60 (20%) | shards 2/6 | traces 123456 | eta 42s``.
        """
        eta = self.eta_seconds()
        eta_text = _format_seconds(eta) if eta is not None else "--"
        return (f"cycles {self.work_done:g}/{self.total_cycles} "
                f"({self.fraction:.0%}) | "
                f"shards {self.shards_done}/{self.shards_total} | "
                f"traces {self.traces} | eta {eta_text}")


def _format_seconds(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, rest = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressPrinter:
    """Renders a tracker onto one self-overwriting terminal line.

    The line is padded to the previous render's width so a shrinking
    status never leaves stale characters behind; :meth:`finish` ends
    the line (call it before printing anything else).
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream or sys.stderr
        self._last_width = 0
        self._dirty = False

    def update(self, tracker: ProgressTracker) -> None:
        line = tracker.render()
        padded = line.ljust(self._last_width)
        self.stream.write("\r" + padded)
        self.stream.flush()
        self._last_width = len(line)
        self._dirty = True

    def finish(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
