"""Live study progress: heartbeat aggregation, ETA, one-line rendering.

A sharded study is a black box without this: workers probe for minutes
before their shard returns.  :class:`ProgressTracker` aggregates the
per-shard heartbeats the workers push over the runner's progress queue
(cycles done, pair blocks done, traces simulated) into campaign-level
totals, and derives an ETA from the completed-work rate.

The displayed work counter is **monotonically non-decreasing**: stale
or duplicate heartbeats are folded with ``max``, and when a failed
shard is abandoned for retry its partial progress stays on the high
water mark (the work is redone, but a progress line must never move
backwards).

Wall-clock use is opt-in, as everywhere in :mod:`repro.obs`: the
tracker only computes elapsed time / ETA when built with a real
:class:`~repro.obs.trace.Clock` (the CLI's ``--progress`` passes a
:class:`~repro.obs.trace.MonotonicClock`; tests pass a
:class:`~repro.obs.trace.FakeClock`).
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, IO, Optional

from .trace import Clock, NullClock


@dataclass
class ShardProgress:
    """Aggregated heartbeat state of one shard."""

    shard_id: int
    work: float
    """Cycle-units this shard covers (len(cycles), or 1/count for an
    intra-cycle pair block)."""
    is_block: bool = False
    work_done: float = 0.0
    traces: int = 0
    done: bool = False
    abandoned: bool = False


class ProgressTracker:
    """Campaign-level progress derived from per-shard heartbeats."""

    def __init__(self, total_cycles: int, clock: Optional[Clock] = None):
        self.total_cycles = total_cycles
        self.clock = clock or NullClock()
        self.shards: Dict[int, ShardProgress] = {}
        self._start = self.clock.now()
        self._high_water = 0.0
        # Mutations come from the runner's thread, reads also from the
        # telemetry server's handler threads; reentrant because
        # add_shard(done=True) folds through shard_done.
        self._lock = threading.RLock()

    # -- shard registry ------------------------------------------------------

    def add_shard(self, shard_id: int, work: float,
                  is_block: bool = False,
                  done: bool = False) -> None:
        """Register one shard's share of the campaign.

        ``work`` is in cycle units; ``done=True`` registers an
        already-finished shard (e.g. restored from a checkpoint).
        """
        with self._lock:
            progress = ShardProgress(shard_id=shard_id, work=work,
                                     is_block=is_block)
            self.shards[shard_id] = progress
            if done:
                self.shard_done(shard_id)

    def abandon_shard(self, shard_id: int) -> None:
        """Mark a failed shard: its work will be redone elsewhere."""
        with self._lock:
            progress = self.shards.get(shard_id)
            if progress is not None and not progress.done:
                progress.abandoned = True

    # -- updates -------------------------------------------------------------

    def heartbeat(self, shard_id: int, cycles_done: float = 0,
                  blocks_done: int = 0, traces: int = 0) -> None:
        """Fold one worker heartbeat in (monotonic per shard)."""
        with self._lock:
            progress = self.shards.get(shard_id)
            if progress is None:
                return
            work = float(cycles_done) + blocks_done * (
                progress.work if progress.is_block else 0.0)
            progress.work_done = min(progress.work,
                                     max(progress.work_done, work))
            progress.traces = max(progress.traces, traces)
            self._advance()

    def shard_done(self, shard_id: int) -> None:
        with self._lock:
            progress = self.shards.get(shard_id)
            if progress is None:
                return
            progress.done = True
            progress.abandoned = False
            progress.work_done = progress.work
            self._advance()

    def _advance(self) -> None:
        live = sum(p.work_done for p in self.shards.values()
                   if not p.abandoned)
        self._high_water = max(self._high_water, live)

    # -- derived totals ------------------------------------------------------

    @property
    def work_done(self) -> float:
        """Completed cycle-units (high-water, never decreases)."""
        return min(float(self.total_cycles), self._high_water)

    @property
    def traces(self) -> int:
        return sum(p.traces for p in self.shards.values())

    @property
    def shards_done(self) -> int:
        return sum(1 for p in self.shards.values() if p.done)

    @property
    def shards_total(self) -> int:
        return sum(1 for p in self.shards.values() if not p.abandoned)

    @property
    def fraction(self) -> float:
        if self.total_cycles <= 0:
            return 1.0
        return self.work_done / self.total_cycles

    def elapsed(self) -> float:
        return self.clock.now() - self._start

    def eta_seconds(self) -> Optional[float]:
        """Remaining seconds from the completed-work rate, or None.

        None until any work completed, or under a :class:`NullClock`
        (no elapsed time to rate against).
        """
        elapsed = self.elapsed()
        if elapsed <= 0 or self.work_done <= 0:
            return None
        rate = self.work_done / elapsed
        return (self.total_cycles - self.work_done) / rate

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of the whole campaign (thread-safe).

        What the live ``/progress`` endpoint serves: campaign totals,
        elapsed/ETA (the ``eta`` key is None until any work completed
        or under a :class:`NullClock`), and every shard's high-water
        progress.
        """
        with self._lock:
            eta = self.eta_seconds()
            return {
                "total_cycles": self.total_cycles,
                "work_done": self.work_done,
                "fraction": round(self.fraction, 6),
                "traces": self.traces,
                "shards_done": self.shards_done,
                "shards_total": self.shards_total,
                "elapsed_s": round(self.elapsed(), 6),
                "eta": round(eta, 6) if eta is not None else None,
                "shards": [
                    {"shard": p.shard_id, "work": p.work,
                     "work_done": p.work_done, "traces": p.traces,
                     "block": p.is_block, "done": p.done,
                     "abandoned": p.abandoned}
                    for p in sorted(self.shards.values(),
                                    key=lambda p: p.shard_id)
                ],
            }

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """One status line, e.g.
        ``cycles 12.0/60 (20%) | shards 2/6 | traces 123456 | eta 42s``.
        """
        eta = self.eta_seconds()
        eta_text = _format_seconds(eta) if eta is not None else "--"
        return (f"cycles {self.work_done:g}/{self.total_cycles} "
                f"({self.fraction:.0%}) | "
                f"shards {self.shards_done}/{self.shards_total} | "
                f"traces {self.traces} | eta {eta_text}")


def _format_seconds(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, rest = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressPrinter:
    """Renders a tracker as a live status line, terminal-aware.

    On a TTY each update redraws one self-overwriting line (``\\r``,
    padded to the previous render's width so a shrinking status never
    leaves stale characters behind).  When the stream is **not** a TTY
    — a CI log, a pipe, a redirected file — carriage returns would
    smear every redraw onto one unreadable mega-line, so updates are
    plain newline-terminated lines instead, de-duplicated so an idle
    study does not flood the log.

    :meth:`finish` always leaves a final summary as the last complete
    line (call it before printing anything else).
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream or sys.stderr
        isatty = getattr(self.stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False
        self._last_width = 0
        self._last_line: Optional[str] = None
        self._tracker: Optional[ProgressTracker] = None
        self._dirty = False

    def update(self, tracker: ProgressTracker) -> None:
        self._tracker = tracker
        line = tracker.render()
        if self._tty:
            self.stream.write("\r" + line.ljust(self._last_width))
            self._last_width = len(line)
            self._dirty = True
        else:
            if line == self._last_line:
                return
            self.stream.write(line + "\n")
        self._last_line = line
        self.stream.flush()

    def finish(self) -> None:
        """End the status display with a final summary line."""
        if self._tracker is not None:
            line = self._tracker.render()
            if self._tty:
                self.stream.write(
                    "\r" + line.ljust(self._last_width) + "\n")
                self._dirty = False
            elif line != self._last_line:
                self.stream.write(line + "\n")
            self._last_line = line
            self._tracker = None
            self.stream.flush()
        elif self._tty and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
