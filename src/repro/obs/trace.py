"""Span tracing: hierarchical wall-time accounting for the pipeline.

A *span* is a named interval with attributes and children::

    with span("filters.persistence", cycle=45):
        ...

Spans nest naturally — a span opened while another is active becomes its
child — so one ``study`` run produces a trace tree whose per-stage
totals the CLI renders as the ``--profile`` table.

Clock injection (DESIGN §6)
---------------------------

The library must stay deterministic: no wall-clock reads by default.
The module-level tracer therefore starts with a :class:`NullClock`
(every span lasts 0.0s and ``time.monotonic`` is never called); spans
still record structure and counts, just not durations.  Profiling
callers swap in a real clock::

    set_tracer(Tracer(MonotonicClock()))

and tests use :class:`FakeClock` to get exact, reproducible durations.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)


class Clock:
    """Monotonic-seconds source; subclasses override :meth:`now`."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real wall clock (``time.monotonic``) — profiling runs only."""

    def now(self) -> float:
        return time.monotonic()


class NullClock(Clock):
    """Always 0.0: structure without timing, no wall-clock reads."""

    def now(self) -> float:
        return 0.0


class FakeClock(Clock):
    """A manually advanced clock for deterministic tests."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance backwards: {seconds}")
        self._now += seconds


@dataclass
class Span:
    """One node of the trace tree."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    end: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration minus the time spent in child spans."""
        return self.duration - sum(c.duration for c in self.children)

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) pairs, self first."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name}
        if self.end is None:
            # Explicitly flagged rather than silently serialized as a
            # zero-duration span (the dict consumer must not mistake an
            # interrupted stage for an instantaneous one).
            data["open"] = True
        else:
            data["duration_s"] = round(self.duration, 9)
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data


@dataclass
class SpanTotals:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0

    @property
    def mean_ms(self) -> float:
        return self.total_s / self.count * 1000.0 if self.count else 0.0


class Tracer:
    """Builds the span tree; usable as context manager or decorator."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or NullClock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the currently active one."""
        node = Span(name=name, attrs=attrs, start=self.clock.now())
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.end = self.clock.now()
            # A reset() between open and close empties the stack; the
            # orphaned span just closes without popping anything.
            if self._stack and self._stack[-1] is node:
                self._stack.pop()

    def traced(self, name: str, **attrs: Any) -> Callable:
        """Decorator form of :meth:`span`."""
        def decorate(function: Callable) -> Callable:
            @functools.wraps(function)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(name, **attrs):
                    return function(*args, **kwargs)
            return wrapper
        return decorate

    @property
    def active(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Drop every recorded span, including any still open.

        The stack is cleared too: spans opened before the reset become
        orphans whose exits are no-ops, instead of silently appending
        children into a discarded tree.
        """
        self.roots = []
        self._stack = []

    def graft(self, roots: Sequence[Span], **attrs: Any) -> None:
        """Attach foreign span trees under the currently active span.

        This is how a parallel study accounts for time spent *inside*
        workers: each shard returns its tracer roots, and the parent
        grafts them — tagged with ``attrs`` (e.g. ``shard=3``) merged
        into each root's attributes — as children of the innermost open
        span (new roots when none is open).
        """
        target = (self._stack[-1].children if self._stack
                  else self.roots)
        for root in roots:
            if attrs:
                root.attrs.update(attrs)
            target.append(root)

    def totals(self) -> List[SpanTotals]:
        """Per-name aggregates in first-seen (tree) order."""
        order: List[str] = []
        by_name: Dict[str, SpanTotals] = {}
        for root in self.roots:
            for _depth, node in root.walk():
                if node.name not in by_name:
                    by_name[node.name] = SpanTotals(name=node.name)
                    order.append(node.name)
                aggregate = by_name[node.name]
                aggregate.count += 1
                aggregate.total_s += node.duration
                aggregate.self_s += node.self_time
        return [by_name[name] for name in order]

    def to_dict(self) -> List[Dict[str, Any]]:
        return [root.to_dict() for root in self.roots]


_tracer = Tracer(NullClock())


def get_tracer() -> Tracer:
    """The process-wide tracer the instrumented library reports to."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the global tracer (e.g. with a monotonic one); returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def span(name: str, **attrs: Any):
    """``with span("stage", cycle=3):`` against the global tracer."""
    return _tracer.span(name, **attrs)


def traced(name: str, **attrs: Any) -> Callable:
    """Decorator against the *current* global tracer at call time."""
    def decorate(function: Callable) -> Callable:
        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with _tracer.span(name, **attrs):
                return function(*args, **kwargs)
        return wrapper
    return decorate
