"""Shard-granular checkpointing for restartable studies.

A multi-hour campaign must not lose everything to one crash near the
end.  Each completed shard's :class:`~repro.par.runner.ShardResult`
(the ordered ``CycleResult`` list plus the shard's metrics delta) is
persisted as soon as the parent collects it; a restarted study loads
the finished shards back and dispatches only the missing cycle ranges.
Because every shard is a pure function of ``(StudySpec, cycle range)``
(DESIGN §6/§8), a resumed run is byte-identical to an uninterrupted one.

Layout: ``<checkpoint-dir>/<spec-hash>/shard-<first>-<last>.ckpt`` for
cycle-range shards; intra-cycle pair blocks (DESIGN §8) add a block
component — ``shard-<first>-<last>-b<index>-<count>.ckpt`` — so the
checkpoint key is ``(spec, cycle range, pair range)``.  The directory
is **content-addressed by the spec hash**, and the hash is verified
again inside each file, so a stale checkpoint from a different spec
(other seed, scale, filter knobs, or format version) is *rejected* —
counted in ``par_checkpoint_rejected_total{reason}`` — never silently
reused.  Writes go through a temp file + ``os.replace`` so a crash
mid-write leaves no half-checkpoint behind; unreadable files degrade
to a re-run of that shard, not an abort.

Persisted metrics deltas are **stripped of layout-dependent cache
counters** (``route_cache_*``, ``hop_cache_*``,
``quoted_stack_cache_*``): serial and sharded runs split the same probe
stream over differently warmed per-era caches, so those hit/miss splits
are per-process observability, not campaign results.  Stripping keeps a
cycle's checkpoint byte-identical whatever worker layout produced it —
which is also what lets a serial run's per-cycle checkpoints seed a
parallel resume and vice versa.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, replace
from pathlib import Path
from typing import Optional, Tuple

from ..obs import emit, get_logger, get_registry

CHECKPOINT_VERSION = 5
"""Bumped whenever the on-disk payload shape changes; old files are
then rejected (reason ``version``) instead of mis-read.  Version 2:
pair-block results (raw snapshots + block key) and layout-dependent
counter stripping.  Version 3: ``ShardResult`` grew a ``spans`` field
(worker trace trees) — stripped on save, since span timing is per-run
observability, not a campaign result, and its presence would make
profiled and unprofiled checkpoints diverge.  Version 4:
``replayed_cycles`` is normalised to 0 on save — warm-started workers
(:mod:`repro.par.statestore`) replay fewer cycles than cold ones, and
that schedule detail must not leak into checkpoint bytes.  Version 5:
``StudySpec`` grew the ``engine`` field (the spec hash covers it) and
the stripped prefixes gained the engine/IP2AS-memo counters."""

LAYOUT_DEPENDENT_PREFIXES = (
    "route_cache_", "hop_cache_", "quoted_stack_cache_",
    "state_snapshot_", "engine_", "ip2as_lookup_cache_",
    "worker_", "par_shards_stalled")
"""Metric-name prefixes whose values depend on how the probe stream was
split over caches — or, for ``state_snapshot_*``, on how warm the
state store happened to be — stripped from persisted deltas.  The
``engine_*`` and ``ip2as_lookup_cache_*`` families count *how* a cycle
was computed (columnar encoding rows, kernel wall time, batched-lookup
memo hits), which differs between byte-identical engines, so they are
execution detail under the same rule.  The live-telemetry families —
``worker_*`` resource gauges and the stall counter — are per-run
operational state; they can only reach a delta window through a clock
(never through results), and stripping them keeps telemetry-on
checkpoints byte-identical to bare ones even so.  (The registry's
unchanged-gauge diff rule already keeps them out of per-cycle deltas;
this is defence in depth, not a payload-shape change — hence no
version bump.)"""


def strip_layout_dependent(delta: dict) -> dict:
    """A metrics delta without the per-process cache counters.

    Preserves the (sorted) key order of the input, so equal stripped
    deltas pickle to equal bytes.
    """
    return {name: payload for name, payload in delta.items()
            if not name.startswith(LAYOUT_DEPENDENT_PREFIXES)}

_log = get_logger(__name__)
_HITS = get_registry().counter(
    "par_checkpoint_hits_total",
    "Shards restored from a checkpoint instead of re-run")
_MISSES = get_registry().counter(
    "par_checkpoint_misses_total",
    "Shard checkpoint lookups that found no file")
_WRITES = get_registry().counter(
    "par_checkpoint_writes_total",
    "Shard checkpoints persisted to disk")
_REJECTED = get_registry().counter(
    "par_checkpoint_rejected_total",
    "Checkpoint files rejected instead of reused, by reason")


def spec_hash(spec) -> str:
    """Content hash of a :class:`~repro.par.runner.StudySpec`.

    The spec is plain numbers, so a sorted-key JSON dump is a canonical
    byte form; the checkpoint format version is mixed in so a payload
    change also invalidates old directories.
    """
    payload = json.dumps(
        {"checkpoint_version": CHECKPOINT_VERSION, **asdict(spec)},
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """Loads and saves shard results under one spec's directory."""

    def __init__(self, root, spec):
        self.spec_hash = spec_hash(spec)
        self.directory = Path(root) / self.spec_hash

    def path_for(self, first: int, last: int,
                 block: Optional[Tuple[int, int]] = None) -> Path:
        if block is not None:
            index, count = block
            return self.directory / (
                f"shard-{first:04d}-{last:04d}"
                f"-b{index:04d}-{count:04d}.ckpt")
        return self.directory / f"shard-{first:04d}-{last:04d}.ckpt"

    def load(self, first: int, last: int,
             block: Optional[Tuple[int, int]] = None):
        """The stored ShardResult for one cycle/pair range, or None.

        Anything short of a verified payload — missing file, truncated
        or corrupt pickle, foreign spec hash, other format version —
        returns None so the runner re-runs the shard.
        """
        path = self.path_for(first, last, block)
        try:
            with open(path, "rb") as stream:
                payload = pickle.load(stream)
        except FileNotFoundError:
            _MISSES.inc()
            emit("checkpoint.miss", path=path.name)
            return None
        except Exception as error:  # garbage pickles fail arbitrarily
            self._reject(path, "corrupt", error)
            return None
        return self._verify(path, payload)

    def _verify(self, path: Path, payload) -> Optional[object]:
        from .runner import ShardResult  # circular at module load time

        if not isinstance(payload, dict):
            return self._reject(path, "corrupt")
        if payload.get("version") != CHECKPOINT_VERSION:
            return self._reject(path, "version")
        if payload.get("spec_hash") != self.spec_hash:
            return self._reject(path, "spec_mismatch")
        result = payload.get("result")
        if not isinstance(result, ShardResult) or \
                not (result.results or result.snapshots):
            return self._reject(path, "corrupt")
        _HITS.inc()
        _log.info("checkpoint.hit", path=str(path),
                  cycles=len(result.results))
        emit("checkpoint.hit", path=path.name,
             cycles=len(result.results))
        return result

    def _reject(self, path: Path, reason: str, error=None) -> None:
        _REJECTED.inc(reason=reason)
        _log.warning("checkpoint.rejected", path=str(path),
                     reason=reason,
                     **({"error": str(error)} if error else {}))
        emit("checkpoint.rejected", path=path.name, reason=reason)
        return None

    def save(self, result) -> Path:
        """Atomically persist one shard result; returns its path.

        Pair-block results are keyed by their (cycle, pair-range);
        every stored delta has the layout-dependent cache counters
        stripped (module docstring).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if result.block is not None:
            cycle, index, count = result.block
            path = self.path_for(cycle, cycle, (index, count))
        else:
            first = result.results[0].cycle
            last = result.results[-1].cycle
            path = self.path_for(first, last)
        payload = {
            "version": CHECKPOINT_VERSION,
            "spec_hash": self.spec_hash,
            "result": replace(
                result,
                metrics_delta=strip_layout_dependent(
                    result.metrics_delta),
                replayed_cycles=0,
                spans=None),
        }
        handle, tmp = tempfile.mkstemp(dir=self.directory,
                                       prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(payload, stream,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _WRITES.inc()
        _log.info("checkpoint.written", path=str(path),
                  cycles=len(result.results))
        emit("checkpoint.write", path=path.name,
             cycles=len(result.results))
        return path
