"""Shard-granular checkpointing for restartable studies.

A multi-hour campaign must not lose everything to one crash near the
end.  Each completed shard's :class:`~repro.par.runner.ShardResult`
(the ordered ``CycleResult`` list plus the shard's metrics delta) is
persisted as soon as the parent collects it; a restarted study loads
the finished shards back and dispatches only the missing cycle ranges.
Because every shard is a pure function of ``(StudySpec, cycle range)``
(DESIGN §6/§8), a resumed run is byte-identical to an uninterrupted one.

Layout: ``<checkpoint-dir>/<spec-hash>/shard-<first>-<last>.ckpt``.
The directory is **content-addressed by the spec hash**, and the hash
is verified again inside each file, so a stale checkpoint from a
different spec (other seed, scale, filter knobs, or format version) is
*rejected* — counted in ``par_checkpoint_rejected_total{reason}`` —
never silently reused.  Writes go through a temp file + ``os.replace``
so a crash mid-write leaves no half-checkpoint behind; unreadable files
degrade to a re-run of that shard, not an abort.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from ..obs import get_logger, get_registry

CHECKPOINT_VERSION = 1
"""Bumped whenever the on-disk payload shape changes; old files are
then rejected (reason ``version``) instead of mis-read."""

_log = get_logger(__name__)
_HITS = get_registry().counter(
    "par_checkpoint_hits_total",
    "Shards restored from a checkpoint instead of re-run")
_MISSES = get_registry().counter(
    "par_checkpoint_misses_total",
    "Shard checkpoint lookups that found no file")
_WRITES = get_registry().counter(
    "par_checkpoint_writes_total",
    "Shard checkpoints persisted to disk")
_REJECTED = get_registry().counter(
    "par_checkpoint_rejected_total",
    "Checkpoint files rejected instead of reused, by reason")


def spec_hash(spec) -> str:
    """Content hash of a :class:`~repro.par.runner.StudySpec`.

    The spec is plain numbers, so a sorted-key JSON dump is a canonical
    byte form; the checkpoint format version is mixed in so a payload
    change also invalidates old directories.
    """
    payload = json.dumps(
        {"checkpoint_version": CHECKPOINT_VERSION, **asdict(spec)},
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """Loads and saves shard results under one spec's directory."""

    def __init__(self, root, spec):
        self.spec_hash = spec_hash(spec)
        self.directory = Path(root) / self.spec_hash

    def path_for(self, first: int, last: int) -> Path:
        return self.directory / f"shard-{first:04d}-{last:04d}.ckpt"

    def load(self, first: int, last: int):
        """The stored ShardResult for one cycle range, or None.

        Anything short of a verified payload — missing file, truncated
        or corrupt pickle, foreign spec hash, other format version —
        returns None so the runner re-runs the shard.
        """
        path = self.path_for(first, last)
        try:
            with open(path, "rb") as stream:
                payload = pickle.load(stream)
        except FileNotFoundError:
            _MISSES.inc()
            return None
        except Exception as error:  # garbage pickles fail arbitrarily
            self._reject(path, "corrupt", error)
            return None
        return self._verify(path, payload)

    def _verify(self, path: Path, payload) -> Optional[object]:
        from .runner import ShardResult  # circular at module load time

        if not isinstance(payload, dict):
            return self._reject(path, "corrupt")
        if payload.get("version") != CHECKPOINT_VERSION:
            return self._reject(path, "version")
        if payload.get("spec_hash") != self.spec_hash:
            return self._reject(path, "spec_mismatch")
        result = payload.get("result")
        if not isinstance(result, ShardResult) or not result.results:
            return self._reject(path, "corrupt")
        _HITS.inc()
        _log.info("checkpoint.hit", path=str(path),
                  cycles=len(result.results))
        return result

    def _reject(self, path: Path, reason: str, error=None) -> None:
        _REJECTED.inc(reason=reason)
        _log.warning("checkpoint.rejected", path=str(path),
                     reason=reason,
                     **({"error": str(error)} if error else {}))
        return None

    def save(self, result) -> Path:
        """Atomically persist one shard result; returns its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        first = result.results[0].cycle
        last = result.results[-1].cycle
        path = self.path_for(first, last)
        payload = {
            "version": CHECKPOINT_VERSION,
            "spec_hash": self.spec_hash,
            "result": result,
        }
        handle, tmp = tempfile.mkstemp(dir=self.directory,
                                       prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(payload, stream,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _WRITES.inc()
        _log.info("checkpoint.written", path=str(path),
                  cycles=len(result.results))
        return path
