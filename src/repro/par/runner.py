"""The process-pool study runner.

A :class:`StudySpec` is the complete, picklable recipe for one
longitudinal campaign; :func:`build_study` turns it into a fresh
``(ArkSimulator, LprPipeline)`` pair.  Because every simulation object
is a pure function of the spec's seed (DESIGN §6), a worker process that
builds the same spec and fast-forwards to its shard's first cycle holds
exactly the network state the serial run would have there — label
allocators, TE sessions and all.

:func:`run_study` is the single entry point: ``workers <= 1`` runs the
familiar serial loop in-process; ``workers > 1`` fans the shards out
over a process pool, collects the per-shard results in cycle order,
absorbs each shard's metrics delta into the parent registry (tagged
with per-shard accounting counters), and finally fast-forwards a parent
simulator through the whole campaign so that post-study experiments
(Figs 6, 16, 17 re-run cycles on top of the end state) see the identical
state a serial run leaves behind.

When ``workers`` exceeds the cycle count — including the degenerate but
common 1-cycle study — :func:`~repro.par.shard.plan_shards` keeps
sharding *inside* cycles: surplus workers each trace one contiguous
**pair block** of a cycle's (monitor, destination) list over the same
fast-forwarded state, the parent reassembles the blocks' traces in pair
order into one :class:`~repro.sim.ark.CycleData` and runs the pipeline
on it exactly as a serial cycle would, so results, metrics deltas and
checkpoints stay byte-identical (DESIGN §8).

The runner is **fault tolerant** (DESIGN §8):

* a dead worker (``BrokenProcessPool``) or a per-shard exception marks
  the shard failed, not the study; failed shards are re-dispatched with
  exponential backoff up to ``max_retries`` times, optionally
  subdivided — cycle ranges into halves, pair blocks into half-blocks —
  to route around a poisonous unit of work;
* with ``checkpoint_dir`` set, every completed shard (cycle ranges,
  assembled cycles and raw pair blocks alike) is persisted and a
  restarted study replays only the missing work
  (:mod:`repro.par.checkpoint`);
* both paths keep the headline guarantee: because each shard is a pure
  function of ``(spec, cycle range, pair range)``, a retried,
  subdivided or resumed run stays byte-identical to an uninterrupted
  serial one.

The runner is also the **flight recorder's** main instrument
(DESIGN §9): it emits study/shard/cycle lifecycle events to the
:mod:`repro.obs.events` bus, streams worker heartbeats (cycles done,
pair blocks done, traces simulated) over a progress queue into a live
:class:`~repro.obs.progress.ProgressTracker`, persists each cycle's
metrics delta as a ``cycle.metrics`` event, and — when the caller
profiles — grafts every worker's span tree under the study root so
``--profile`` and ``--trace-out`` account for time spent *inside*
workers.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.pipeline import CycleResult, LprPipeline
from ..obs import (
    Clock,
    EventBus,
    HealthMonitor,
    MonotonicClock,
    NullClock,
    ProgressTracker,
    Span,
    StallWatchdog,
    Tracer,
    emit,
    get_logger,
    get_registry,
    get_tracer,
    record_resources,
    sample_resources,
    set_event_bus,
    set_tracer,
    span,
)
from ..sim import ArkSimulator
from ..sim.ark import CycleData
from ..sim.scenarios import CYCLES, paper_scenario
from .checkpoint import CheckpointStore
from .faults import FaultPlan, ShardFault
from .shard import Shard, plan_shards, shard_cycles
from .statestore import DEFAULT_SNAPSHOT_STRIDE, StateStore

_log = get_logger(__name__)
_SHARDS_RUN = get_registry().counter(
    "par_shards_total", "Shards executed by parallel study runs")
_SHARD_CYCLES = get_registry().counter(
    "par_shard_cycles_total",
    "Cycles processed per shard of a parallel study run")
_PAIR_BLOCKS = get_registry().counter(
    "par_pair_blocks_total",
    "Intra-cycle pair blocks traced by parallel study runs")
_CYCLES_REPLAYED = get_registry().counter(
    "par_cycles_replayed_total",
    "Cycles fast-forwarded (control-plane replay, no probes)")
_SHARD_RETRIES = get_registry().counter(
    "par_shard_retries_total",
    "Shard re-dispatches after a worker death or shard exception")
_SHARDS_FAILED = get_registry().counter(
    "par_shards_failed_total",
    "Shards that exhausted their retry budget (aborts the study)")
_SHARDS_STALLED = get_registry().counter(
    "par_shards_stalled_total",
    "Shards flagged silent past the --stall-timeout deadline")


class StudyFailure(RuntimeError):
    """A shard kept failing after every retry; the study aborted."""


@dataclass(frozen=True)
class StudySpec:
    """Everything needed to rebuild one campaign from scratch.

    Plain numbers only, so the spec pickles cheaply into worker
    processes and two equal specs always produce byte-identical runs.
    """

    scale: float = 1.0
    seed: int = 2015
    cycles: int = CYCLES
    snapshots_per_cycle: int = 3
    persistence_window: int = 2
    reinject_threshold: float = 0.10
    php_heuristic: bool = False
    memoize: bool = True
    """Forwarding-path memoization (DESIGN §8).  The caches are exact,
    so flipping this never changes results — which is precisely what
    the differential oracle (:mod:`repro.verify`) asserts by running
    the same campaign with and without them."""
    engine: str = "object"
    """Analysis backend: ``"object"`` (the classic per-``Lsp``
    pipeline) or ``"columnar"`` (the interned kernel engine of
    :mod:`repro.engine`, DESIGN §12).  Like ``memoize``, flipping it
    never changes results — the differential matrix's ``columnar``
    configs assert exactly that."""


def build_study(spec: StudySpec) -> Tuple[ArkSimulator, LprPipeline]:
    """A fresh simulator + pipeline pair for one spec."""
    simulator = ArkSimulator(
        paper_scenario(scale=spec.scale, seed=spec.seed),
        snapshots_per_cycle=spec.snapshots_per_cycle,
        memoize=spec.memoize,
    )
    pipeline = LprPipeline(
        simulator.internet.ip2as,
        persistence_window=spec.persistence_window,
        reinject_threshold=spec.reinject_threshold,
        php_heuristic=spec.php_heuristic,
        engine=spec.engine,
    )
    return simulator, pipeline


@dataclass
class ShardResult:
    """What one worker sends back: results plus its metrics delta.

    A cycle-range shard carries processed ``results``; an intra-cycle
    pair block instead carries the raw per-snapshot ``snapshots`` it
    traced, tagged with its ``block = (cycle, index, count)`` — the
    parent reassembles a full cycle from the blocks and runs the
    pipeline itself.
    """

    shard_id: int
    results: List[CycleResult]
    metrics_delta: Dict[str, Any]
    replayed_cycles: int
    block: Optional[Tuple[int, int, int]] = None
    snapshots: Optional[List[list]] = None
    spans: Optional[List[Span]] = None
    """The worker's tracer roots, returned only on profiled runs and
    grafted under the parent's study span (stripped from checkpoints —
    timing is per-run observability, not a campaign result)."""


@dataclass
class StudyRun:
    """One executed campaign: end-state simulator + ordered results."""

    simulator: ArkSimulator
    pipeline: LprPipeline
    results: List[CycleResult]
    shards: List[ShardResult] = field(default_factory=list)
    """Per-shard accounting of a parallel run (empty when serial):
    cycle-range results and raw pair blocks, in (cycle, pair) order."""


def _beat(beats, shard: Shard, **fields: Any) -> None:
    """Push one heartbeat; a dying progress channel never fails work."""
    if beats is None:
        return
    try:
        beats.put({"shard": shard.shard_id, **fields})
    except Exception:
        pass


def _run_shard(
    args: Tuple[StudySpec, Shard, int, Optional[ShardFault], bool, Any,
                Any, bool]
) -> ShardResult:
    """Worker entry: reconstruct state, run the shard's work locally.

    The worker installs a *fresh* event bus (a forked sink file
    descriptor must never be written from two processes) and a fresh
    tracer — monotonic when the parent profiles, so the returned
    ``par.worker`` span tree carries real durations the parent grafts
    into its own trace.  ``beats`` (a manager queue or None) receives
    a liveness heartbeat on entry and after the prefix replay — what
    arms the stall watchdog's deadline — then one per finished cycle /
    pair block.  With ``resources`` set each heartbeat also carries a
    :func:`~repro.obs.resources.sample_resources` sample of *this*
    worker process; the parent folds it into its own registry, so the
    shard's ``metrics_delta`` stays free of resource gauges.

    With ``state_dir`` set the worker warm-starts: it restores the
    newest usable snapshot at or before ``first - 1`` from the shared
    :class:`StateStore` and replays only the tail, instead of the whole
    ``1..first-1`` prefix.  Probing never mutates the control plane
    (DESIGN §6), so the resulting state — and hence the shard's output
    — is byte-identical either way; ``replayed_cycles`` records what
    was actually replayed.
    """
    (spec, shard, attempt, fault, profile, beats, state_dir,
     resources) = args
    set_event_bus(EventBus())
    tracer = set_tracer(Tracer(MonotonicClock() if profile
                               else NullClock()))

    def _res() -> Dict[str, Any]:
        return ({"resources": sample_resources()} if resources else {})

    _beat(beats, shard, **_res())
    simulator, pipeline = build_study(spec)
    registry = get_registry()
    before = registry.snapshot()
    sim_traces = registry.counter("sim_traces_total")
    traces_start = sim_traces.value()
    block_attrs = ({"block": f"{shard.block[0]}/{shard.block[1]}"}
                   if shard.block is not None else {})
    results: List[CycleResult] = []
    snapshots: Optional[List[list]] = None
    replay_from = 1
    with tracer.span("par.worker", first=shard.first, last=shard.last,
                     **block_attrs):
        if state_dir is not None and shard.first > 1:
            found = StateStore(state_dir, spec).load_nearest(
                shard.first - 1)
            if found is not None:
                snapshot_cycle, state = found
                simulator.internet.restore_state(state)
                replay_from = snapshot_cycle + 1
        simulator.fast_forward(replay_from, shard.first - 1)
        if shard.first > 1:
            _beat(beats, shard, **_res())  # prefix replayed, alive
        if shard.block is not None:
            if fault is not None:
                fault.maybe_fire(attempt, 0)
            data = simulator.run_cycle(shard.first,
                                       pair_block=shard.block)
            snapshots = data.snapshots
            _beat(beats, shard, blocks_done=1,
                  traces=sim_traces.value() - traces_start, **_res())
        else:
            for index, cycle in enumerate(shard.cycles):
                if fault is not None:
                    fault.maybe_fire(attempt, index)
                results.append(
                    pipeline.process_cycle(simulator.run_cycle(cycle)))
                _beat(beats, shard, cycles_done=index + 1,
                      traces=sim_traces.value() - traces_start,
                      **_res())
    return ShardResult(
        shard_id=shard.shard_id,
        results=results,
        metrics_delta=registry.diff(before, registry.snapshot()),
        replayed_cycles=shard.first - replay_from,
        block=((shard.first,) + shard.block
               if shard.block is not None else None),
        snapshots=snapshots,
        spans=tracer.roots if profile else None,
    )


def _pool_context():
    """Fork where the platform offers it (cheap, shares the warm
    imports); spawn otherwise.  Workers derive everything from the
    pickled spec either way, so the start method never affects output.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_study(spec: StudySpec, workers: int = 1, *,
              max_retries: int = 2,
              backoff_base: float = 0.5,
              subdivide: bool = True,
              checkpoint_dir=None,
              state_dir=None,
              snapshot_stride: int = DEFAULT_SNAPSHOT_STRIDE,
              fault_plan: Optional[FaultPlan] = None,
              sleep: Callable[[float], None] = time.sleep,
              progress: Optional[Callable[[ProgressTracker],
                                          None]] = None,
              progress_clock: Optional[Clock] = None,
              resources: bool = False,
              stall_timeout: Optional[float] = None,
              stall_clock: Optional[Clock] = None,
              health: Optional[HealthMonitor] = None) -> StudyRun:
    """Execute a campaign, sharded over ``workers`` processes.

    Results come back ordered by cycle whatever the pool's scheduling,
    and each shard's metrics delta is absorbed into this process's
    registry, so counters reconcile exactly with a serial run.  With
    more workers than cycles the surplus splits cycles into pair blocks
    (:func:`~repro.par.shard.plan_shards`), so even a 1-cycle study
    scales out — still byte-identical.

    Failure handling: a shard whose worker dies or raises is
    re-dispatched up to ``max_retries`` times, sleeping
    ``backoff_base * 2^round`` seconds between rounds (``sleep`` is
    injectable for tests); on retry, when ``subdivide`` is set,
    multi-cycle shards split into halves and pair blocks into
    half-blocks, so a single bad allocation or kill costs only part of
    the work.  When every retry is exhausted the study aborts with
    :class:`StudyFailure`.

    With ``checkpoint_dir`` set, finished shards (or, serially, single
    cycles) are persisted through a :class:`CheckpointStore` and a
    restarted run replays only the missing work — byte-identical output
    either way.  Reassembled cycles are checkpointed under the same key
    a serial run uses, so serial checkpoints seed parallel resumes and
    vice versa.  ``fault_plan`` is the test-only injection hook
    (:mod:`repro.par.faults`); production runs leave it None.

    With ``state_dir`` set, control-plane snapshots are shared through
    a :class:`StateStore` every ``snapshot_stride`` cycles
    (:mod:`repro.par.statestore`): the parent seeds the store while
    advancing its own end-state simulator *before* dispatching, each
    worker warm-starts from the nearest snapshot ≤ its shard's first
    cycle instead of replaying the whole prefix, and the serial loop
    writes snapshots as it runs so an interrupted study resumes warm.
    Snapshots only shortcut :meth:`~repro.sim.ark.ArkSimulator.\
fast_forward` — never probing — so output stays byte-identical with or
    without them.

    Telemetry (DESIGN §9): lifecycle events (``study.start``,
    ``shard.dispatch``/``done``/``retry``/``restored``,
    ``cycle.metrics`` with each cycle's registry delta, ``study.done``)
    go to the current :mod:`repro.obs.events` bus.  ``progress`` is an
    optional callback invoked with a live
    :class:`~repro.obs.progress.ProgressTracker` on every heartbeat and
    shard completion — passing it opens a worker→parent progress queue
    and (unless ``progress_clock`` injects a fake) reads the wall clock
    for ETA, an explicit observability opt-in.  When the caller's
    global tracer has a real clock (``--profile``/``--trace-out``),
    workers time their own spans and the parent grafts each shard's
    tree under the study span, tagged ``shard=<id>``.

    The live telemetry plane (DESIGN §13) adds three more opt-ins, all
    default-off so the determinism contract stands.  ``resources=True``
    attaches an RSS/CPU/GC sample to every heartbeat (workers, the
    serial loop and the parent alike), folded into ``worker_*`` gauges
    in *this* process's registry and emitted as ``worker.resources``
    events — never into results, per-cycle deltas or checkpoints.
    ``stall_timeout`` arms a heartbeat-deadline
    :class:`~repro.obs.watchdog.StallWatchdog` (``stall_clock``
    injectable for tests): a shard silent past the deadline gets a
    ``shard.stalled`` event, a ``par_shards_stalled_total`` bump and —
    via ``health`` — flips ``/healthz``; a later beat or completion
    emits ``shard.recovered``.  ``health`` is the
    :class:`~repro.obs.live.HealthMonitor` a
    :class:`~repro.obs.live.TelemetryServer` shares with this run;
    the runner beats it on every sign of life and freezes it healthy
    on return.
    """
    if max_retries < 0:
        raise ValueError(f"negative max_retries: {max_retries}")
    if backoff_base < 0:
        raise ValueError(f"negative backoff_base: {backoff_base}")
    if snapshot_stride < 1:
        raise ValueError(f"snapshot_stride must be >= 1: "
                         f"{snapshot_stride}")
    if stall_timeout is not None and stall_timeout <= 0:
        raise ValueError(f"stall_timeout must be > 0: {stall_timeout}")
    store = (CheckpointStore(checkpoint_dir, spec)
             if checkpoint_dir is not None else None)
    state_store = (StateStore(state_dir, spec)
                   if state_dir is not None else None)
    emit("study.start", cycles=spec.cycles, workers=workers)
    if workers <= 1:
        run = _run_serial(spec, store, fault_plan, progress=progress,
                          progress_clock=progress_clock,
                          state_store=state_store,
                          snapshot_stride=snapshot_stride,
                          resources=resources, health=health)
        if health is not None:
            health.finish()
        emit("study.done", cycles=len(run.results), shards=0)
        return run

    # Workers inherit profiling from the parent's tracer clock: a real
    # clock means span durations are wanted, so shards time themselves
    # and return their trees for grafting.
    profile = not isinstance(get_tracer().clock, NullClock)
    shards = plan_shards(1, spec.cycles, workers)
    emit("study.plan", shards=len(shards), workers=workers)
    tracker: Optional[ProgressTracker] = None
    manager = None
    beats = None
    # Heartbeats carry progress, resource samples and watchdog
    # liveness alike: open the worker→parent queue when any consumer
    # exists.
    telemetry = (progress is not None or resources
                 or stall_timeout is not None)
    if progress is not None:
        tracker = ProgressTracker(spec.cycles,
                                  clock=progress_clock
                                  or MonotonicClock())
    if telemetry:
        manager = _pool_context().Manager()
        beats = manager.Queue()
    watchdog = (StallWatchdog(stall_timeout, clock=stall_clock)
                if stall_timeout is not None else None)

    def _notify() -> None:
        if progress is not None and tracker is not None:
            progress(tracker)

    def _register(shard: Shard, done: bool = False) -> None:
        if tracker is None:
            return
        work = (1.0 / shard.block[1] if shard.block is not None
                else float(len(shard)))
        tracker.add_shard(shard.shard_id, work,
                          is_block=shard.block is not None, done=done)

    def _on_beat(beat: Dict[str, Any]) -> None:
        sample = beat.pop("resources", None)
        shard_id = beat.get("shard", -1)
        if tracker is not None:
            tracker.heartbeat(shard_id,
                              cycles_done=beat.get("cycles_done", 0),
                              blocks_done=beat.get("blocks_done", 0),
                              traces=beat.get("traces", 0))
        emit("shard.heartbeat", **beat)
        if sample is not None:
            record_resources(shard_id, sample)
        if watchdog is not None and watchdog.beat(shard_id):
            emit("shard.recovered", shard=shard_id)
            if health is not None:
                health.clear(shard_id)
        if health is not None:
            health.beat()
        _notify()

    def _on_tick() -> None:
        """Dispatch-loop pulse: flag shards newly past the deadline."""
        if watchdog is None:
            return
        for shard_id in watchdog.check():
            _SHARDS_STALLED.inc(shard=shard_id)
            _log.warning("par.shard.stalled", shard=shard_id,
                         timeout=stall_timeout)
            emit("shard.stalled", shard=shard_id,
                 timeout=stall_timeout)
            if health is not None:
                health.stall(shard_id)

    def _on_settle(shard_id: int) -> None:
        """A shard's future resolved (result or error): unflag it."""
        if watchdog is not None and watchdog.clear(shard_id):
            emit("shard.recovered", shard=shard_id)
            if health is not None:
                health.clear(shard_id)

    _log.info("par.study.start", cycles=spec.cycles, workers=workers,
              shards=len(shards))
    try:
        with span("par.study", cycles=spec.cycles, shards=len(shards)):
            # The parent simulator never probes, but its end state
            # backs post-study experiments — and, with a state store,
            # its one replay pass seeds the snapshots every worker
            # warm-starts from, so it runs *before* dispatch.  Without
            # a store the replay is deferred until after collection
            # (nothing to share).
            simulator, pipeline = build_study(spec)
            if state_store is not None:
                with span("par.state_seed", cycles=spec.cycles,
                          stride=snapshot_stride):
                    _seed_state_store(simulator, state_store,
                                      spec.cycles, snapshot_stride)
            # completed: full cycle-range ShardResults (executed or
            # restored at cycle granularity); blocks: raw pair blocks
            # per cycle.
            completed: List[ShardResult] = []
            blocks: Dict[int, List[ShardResult]] = {}
            pending: List[Shard] = []
            attempts: Dict[Shard, int] = {}
            next_id = len(shards)
            cycle_restored: set = set()
            for shard in shards:
                if shard.block is None:
                    cached = (store.load(shard.first, shard.last)
                              if store is not None else None)
                    if cached is not None:
                        completed.append(cached)
                        _register(shard, done=True)
                        emit("shard.restored", shard=shard.shard_id,
                             first=shard.first, last=shard.last)
                    else:
                        pending.append(shard)
                        attempts[shard] = 0
                        _register(shard)
                    continue
                # Intra-cycle shard: prefer a whole-cycle checkpoint
                # (same key a serial run writes), then this block's own
                # file.
                cycle = shard.first
                if cycle in cycle_restored:
                    _register(shard, done=True)
                    continue
                if store is not None and shard.block[0] == 0:
                    cached = store.load(cycle, cycle)
                    if cached is not None:
                        completed.append(cached)
                        cycle_restored.add(cycle)
                        _register(shard, done=True)
                        emit("shard.restored", shard=shard.shard_id,
                             first=cycle, last=cycle)
                        continue
                cached = (store.load(cycle, cycle, shard.block)
                          if store is not None else None)
                if cached is not None:
                    blocks.setdefault(cycle, []).append(cached)
                    _register(shard, done=True)
                    emit("shard.restored", shard=shard.shard_id,
                         first=cycle, last=cycle,
                         block=list(shard.block))
                else:
                    pending.append(shard)
                    attempts[shard] = 0
                    _register(shard)
            _notify()

            round_index = 0
            while pending:
                if round_index > 0:
                    delay = backoff_base * (2 ** (round_index - 1))
                    if delay > 0:
                        sleep(delay)
                executed, failed = _dispatch(spec, pending, workers,
                                             attempts, fault_plan,
                                             profile, beats, _on_beat,
                                             state_dir=state_dir,
                                             resources=resources,
                                             watchdog=watchdog,
                                             on_tick=_on_tick,
                                             on_settle=_on_settle)
                for result in executed:
                    _SHARDS_RUN.inc()
                    if result.block is not None:
                        _PAIR_BLOCKS.inc(shard=result.shard_id)
                    else:
                        _SHARD_CYCLES.inc(len(result.results),
                                          shard=result.shard_id)
                    _CYCLES_REPLAYED.inc(result.replayed_cycles)
                    if store is not None:
                        store.save(result)
                    if result.block is not None:
                        blocks.setdefault(result.block[0],
                                          []).append(result)
                    else:
                        completed.append(result)
                    if tracker is not None:
                        tracker.shard_done(result.shard_id)
                        _notify()
                    emit("shard.done", shard=result.shard_id,
                         cycles=len(result.results),
                         replayed=result.replayed_cycles,
                         traces=_delta_total(result.metrics_delta,
                                             "sim_traces_total"),
                         cache_hits=_cache_total(result.metrics_delta,
                                                 "hits"),
                         cache_misses=_cache_total(
                             result.metrics_delta, "misses"),
                         **({"block": list(result.block)}
                            if result.block is not None else {}))
                retry: List[Shard] = []
                for shard, error in failed:
                    attempt = attempts.pop(shard)
                    if attempt >= max_retries:
                        _SHARDS_FAILED.inc()
                        emit("shard.failed", shard=shard.shard_id,
                             first=shard.first, last=shard.last,
                             attempts=attempt + 1, error=str(error))
                        raise StudyFailure(
                            f"shard of cycles {shard.first}-"
                            f"{shard.last} failed after {attempt + 1} "
                            f"attempts: {error}"
                        ) from error
                    _SHARD_RETRIES.inc(shard=shard.shard_id)
                    _log.warning("par.shard.retry",
                                 shard=shard.shard_id,
                                 first=shard.first, last=shard.last,
                                 attempt=attempt + 1,
                                 error=str(error))
                    emit("shard.retry", shard=shard.shard_id,
                         first=shard.first, last=shard.last,
                         attempt=attempt + 1, error=str(error))
                    children: List[Shard] = []
                    if subdivide and shard.block is not None:
                        index, count = shard.block
                        for child_block in ((2 * index, 2 * count),
                                            (2 * index + 1,
                                             2 * count)):
                            children.append(Shard(
                                shard_id=next_id, first=shard.first,
                                last=shard.last, block=child_block))
                            next_id += 1
                    elif subdivide and len(shard) > 1:
                        for half in shard_cycles(shard.first,
                                                 shard.last, 2):
                            children.append(Shard(
                                shard_id=next_id, first=half.first,
                                last=half.last))
                            next_id += 1
                    if children:
                        if tracker is not None:
                            tracker.abandon_shard(shard.shard_id)
                        emit("shard.subdivided",
                             parent=shard.shard_id,
                             children=[c.shard_id for c in children])
                        for child in children:
                            attempts[child] = attempt + 1
                            _register(child)
                            retry.append(child)
                    else:
                        attempts[shard] = attempt + 1
                        retry.append(shard)
                pending = retry
                round_index += 1

            # Assemble in cycle order: absorb cycle-range deltas
            # as-is; reassemble pair-block cycles and pipeline them
            # in-process, exactly where a serial run would.
            registry = get_registry()
            results: List[CycleResult] = []
            shards_out: List[ShardResult] = []
            units = [(r.results[0].cycle, r, None) for r in completed]
            for cycle, cycle_blocks in blocks.items():
                units.append((cycle, None, cycle_blocks))
            units.sort(key=lambda unit: unit[0])
            for cycle, whole, cycle_blocks in units:
                if whole is not None:
                    if whole.spans:
                        get_tracer().graft(whole.spans,
                                           shard=whole.shard_id)
                    registry.absorb(whole.metrics_delta)
                    for result in whole.results:
                        emit("cycle.metrics", cycle=result.cycle,
                             metrics=result.metrics)
                    results.extend(whole.results)
                    shards_out.append(whole)
                    continue
                assembled, ordered = _assemble_cycle(
                    spec, cycle, cycle_blocks, pipeline, registry)
                if store is not None:
                    store.save(assembled)
                results.extend(assembled.results)
                shards_out.extend(ordered)

            # Post-study experiments (persistence sweeps, ramp
            # campaigns, label dynamics) run extra cycles on top of
            # the campaign's end state — replay the whole
            # control-plane evolution so that state matches a serial
            # run.  With a state store the seeding pass above already
            # left the simulator at the end state.
            if state_store is None:
                with span("par.fast_forward", cycles=spec.cycles):
                    simulator.fast_forward(1, spec.cycles)
    finally:
        if manager is not None:
            manager.shutdown()
    if resources:
        # The parent's own footprint (reassembly, absorption, replay),
        # after every delta window has closed.
        record_resources("parent", sample_resources())
    if health is not None:
        health.finish()
    _log.info("par.study.done", cycles=len(results),
              shards=len(shards_out))
    emit("study.done", cycles=len(results), shards=len(shards_out))
    return StudyRun(simulator=simulator, pipeline=pipeline,
                    results=results, shards=shards_out)


def _seed_state_store(simulator: ArkSimulator, state_store: StateStore,
                      cycles: int, stride: int) -> None:
    """Advance ``simulator`` to the campaign's end state, writing any
    missing stride snapshots on the way.

    The seeding pass itself warm-starts: it restores the newest usable
    snapshot that does not skip past a missing stride target, so a
    resumed or repeated study pays only for the snapshots it still
    lacks.  On completion the simulator holds the cycle-``cycles`` end
    state — the parallel runner's final ``fast_forward`` folded into
    the same pass.
    """
    targets = range(stride, cycles + 1, stride)
    missing = [cycle for cycle in targets
               if not state_store.has(cycle)]
    horizon = missing[0] if missing else cycles
    cursor = 0
    found = state_store.load_nearest(horizon)
    if found is not None:
        cursor, state = found
        simulator.internet.restore_state(state)
    remaining = set(missing)
    for cycle in range(cursor + 1, cycles + 1):
        simulator.fast_forward(cycle, cycle)
        if cycle in remaining:
            state_store.save(cycle, simulator.internet.capture_state())


def _delta_total(delta: Dict[str, Any], name: str) -> float:
    """Sum of one metric's values across label sets in a delta."""
    data = delta.get(name)
    if not data:
        return 0
    return sum(entry["value"] for entry in data["values"])


_CACHE_METRICS = ("route_cache", "hop_cache", "quoted_stack_cache")


def _cache_total(delta: Dict[str, Any], side: str) -> float:
    """Combined cache ``hits``/``misses`` across the memoization
    layers (the per-process counters checkpoints strip)."""
    return sum(_delta_total(delta, f"{prefix}_{side}_total")
               for prefix in _CACHE_METRICS)


def _assemble_cycle(spec: StudySpec, cycle: int,
                    cycle_blocks: List[ShardResult],
                    pipeline: LprPipeline, registry
                    ) -> Tuple[ShardResult, List[ShardResult]]:
    """One cycle reassembled from its pair blocks, then pipelined.

    Blocks sort by their fractional start (``index/count`` — retry
    subdivision can mix granularities) and must tile [0, 1) exactly;
    each snapshot's traces are concatenated in that order, which is
    pair order.  The pipeline then runs in-process over the rebuilt
    :class:`CycleData`, and the cycle's metrics delta — absorbed block
    deltas plus the pipeline stages — matches a serial cycle's
    (modulo the layout-dependent cache counters the checkpoint layer
    strips).  Returns the cycle-level ShardResult (checkpointed under
    the serial key) plus the ordered blocks for accounting.
    """
    ordered = sorted(cycle_blocks,
                     key=lambda r: Fraction(r.block[1], r.block[2]))
    position = Fraction(0)
    for block in ordered:
        _cycle, index, count = block.block
        if Fraction(index, count) != position:
            raise StudyFailure(
                f"cycle {cycle}: pair blocks do not tile: expected a "
                f"block starting at {position}, got {index}/{count}")
        position = Fraction(index + 1, count)
    if position != 1:
        raise StudyFailure(
            f"cycle {cycle}: pair blocks cover only {position} of the "
            f"pair list")
    snapshots: List[list] = []
    for snapshot_index in range(spec.snapshots_per_cycle):
        merged: list = []
        for block in ordered:
            merged.extend(block.snapshots[snapshot_index])
        snapshots.append(merged)
    before = registry.snapshot()
    for block in ordered:
        if block.spans:
            get_tracer().graft(block.spans, shard=block.shard_id)
        registry.absorb(block.metrics_delta)
    result = pipeline.process_cycle(
        CycleData(cycle=cycle, snapshots=snapshots))
    assembled = ShardResult(
        shard_id=cycle - 1,
        results=[result],
        metrics_delta=registry.diff(before, registry.snapshot()),
        replayed_cycles=0,
    )
    emit("cycle.assembled", cycle=cycle, blocks=len(ordered))
    emit("cycle.metrics", cycle=cycle, metrics=result.metrics)
    return assembled, ordered


def _drain(beats, on_beat: Callable[[Dict[str, Any]], None]) -> None:
    """Deliver every queued heartbeat to the parent-side callback."""
    if beats is None:
        return
    while True:
        try:
            beat = beats.get_nowait()
        except queue_module.Empty:
            return
        except Exception:
            # Manager connection torn down mid-run: heartbeats are
            # best-effort telemetry, never worth failing the study.
            return
        on_beat(beat)


def _dispatch(spec: StudySpec, shards: List[Shard], workers: int,
              attempts: Dict[Shard, int],
              fault_plan: Optional[FaultPlan],
              profile: bool = False,
              beats=None,
              on_beat: Optional[Callable[[Dict[str, Any]],
                                         None]] = None,
              state_dir=None,
              resources: bool = False,
              watchdog: Optional[StallWatchdog] = None,
              on_tick: Optional[Callable[[], None]] = None,
              on_settle: Optional[Callable[[int], None]] = None
              ) -> Tuple[List[ShardResult],
                         List[Tuple[Shard, BaseException]]]:
    """One pool round: run every shard once, sorting survivors from
    casualties.  A broken pool (worker killed) fails every shard that
    had not finished; the pool itself is rebuilt next round.

    With a progress queue, the completion wait runs on a short timeout
    so heartbeats drain (and the progress line refreshes) while shards
    are still in flight; without one it blocks until each completion.
    A ``watchdog`` registers each submitted shard and ``on_tick`` runs
    after every drain, so stall deadlines are judged on the same pulse
    heartbeats arrive on; ``on_settle`` fires once per resolved future
    (success or failure), letting the runner unflag a stalled shard
    whose worker finally returned.
    """
    executed: List[ShardResult] = []
    failed: List[Tuple[Shard, BaseException]] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(shards)),
                             mp_context=_pool_context()) as pool:
        futures = {
            pool.submit(
                _run_shard,
                (spec, shard, attempts[shard],
                 fault_plan.for_shard(shard) if fault_plan else None,
                 profile, beats, state_dir, resources),
            ): shard
            for shard in shards
        }
        for shard in shards:
            if watchdog is not None:
                watchdog.watch(shard.shard_id)
            emit("shard.dispatch", shard=shard.shard_id,
                 first=shard.first, last=shard.last,
                 attempt=attempts[shard] + 1,
                 **({"block": list(shard.block)}
                    if shard.block is not None else {}))
        pending = set(futures)
        while pending:
            done, pending = wait(
                pending,
                timeout=0.2 if beats is not None else None,
                return_when=FIRST_COMPLETED)
            if on_beat is not None:
                _drain(beats, on_beat)
            if on_tick is not None:
                on_tick()
            for future in done:
                shard = futures[future]
                try:
                    executed.append(future.result())
                except Exception as error:  # incl. BrokenProcessPool
                    failed.append((shard, error))
                if on_settle is not None:
                    on_settle(shard.shard_id)
        if on_beat is not None:
            _drain(beats, on_beat)
    return executed, failed


def _run_serial(spec: StudySpec, store: Optional[CheckpointStore],
                fault_plan: Optional[FaultPlan],
                progress: Optional[Callable[[ProgressTracker],
                                            None]] = None,
                progress_clock: Optional[Clock] = None,
                state_store: Optional[StateStore] = None,
                snapshot_stride: int = DEFAULT_SNAPSHOT_STRIDE,
                resources: bool = False,
                health: Optional[HealthMonitor] = None
                ) -> StudyRun:
    """The in-process loop, with optional per-cycle checkpointing.

    Serially each cycle is its own checkpoint unit: a resumed run
    replays the control plane through checkpointed cycles (no probing)
    and absorbs their stored metrics deltas, so registry totals and
    results match an uninterrupted run exactly (modulo the stripped
    cache counters, which only ever count probes actually issued by
    this process).

    With a ``state_store`` the loop writes a control-plane snapshot
    after each probed stride-multiple cycle and the control-plane
    advance is *deferred*: a checkpointed cycle needs no simulator
    state, so over a run of restored cycles the loop stays put, then
    jumps the gap in one hop — nearest snapshot plus tail replay — when
    it next probes (or at the end, for the end state).  An interrupted
    ``--state-dir`` study therefore resumes warm instead of replaying
    its whole checkpointed prefix.

    A serial run is its own single "shard" on the progress tracker (one
    heartbeat per finished cycle), and emits the same ``cycle.metrics``
    events a parallel run does, so ``repro report`` reads both alike.
    With ``resources`` it samples itself once per cycle under shard
    label 0 — *after* the cycle's checkpoint delta window closed, so
    the persisted bytes never see a gauge — and beats ``health`` on
    the same cadence (the serial path's stall detection is the
    monitor's staleness rule, there being no per-shard watchdog).
    """
    simulator, pipeline = build_study(spec)
    registry = get_registry()
    sim_traces = registry.counter("sim_traces_total")
    traces_start = sim_traces.value()
    tracker: Optional[ProgressTracker] = None
    if progress is not None:
        tracker = ProgressTracker(spec.cycles,
                                  clock=progress_clock
                                  or MonotonicClock())
        tracker.add_shard(0, float(spec.cycles))
    results: List[CycleResult] = []
    # Last cycle whose control-plane evolution the simulator holds.
    state_cursor = 0

    def _advance_to(target: int) -> None:
        nonlocal state_cursor
        if target <= state_cursor:
            return
        if state_store is not None:
            found = state_store.load_nearest(target, after=state_cursor)
            if found is not None:
                state_cursor, state = found
                simulator.internet.restore_state(state)
        if state_cursor < target:
            simulator.fast_forward(state_cursor + 1, target)
            state_cursor = target

    for cycle in range(1, spec.cycles + 1):
        cached = (store.load(cycle, cycle)
                  if store is not None else None)
        if cached is not None:
            if state_store is None:
                _advance_to(cycle)
            registry.absorb(cached.metrics_delta)
            for result in cached.results:
                emit("cycle.metrics", cycle=result.cycle,
                     metrics=result.metrics, restored=True)
            results.extend(cached.results)
        else:
            if fault_plan is not None:
                fault = fault_plan.for_cycle(cycle)
                if fault is not None:
                    fault.maybe_fire(0, 0)
            before = registry.snapshot() if store is not None else None
            _advance_to(cycle - 1)
            result = pipeline.process_cycle(simulator.run_cycle(cycle))
            state_cursor = cycle
            results.append(result)
            emit("cycle.metrics", cycle=result.cycle,
                 metrics=result.metrics)
            if store is not None:
                store.save(ShardResult(
                    shard_id=cycle - 1,
                    results=[result],
                    metrics_delta=registry.diff(before,
                                                registry.snapshot()),
                    replayed_cycles=0,
                ))
            if (state_store is not None
                    and cycle % snapshot_stride == 0
                    and not state_store.has(cycle)):
                state_store.save(cycle,
                                 simulator.internet.capture_state())
        if resources:
            record_resources(0, sample_resources())
        if health is not None:
            health.beat()
        if tracker is not None:
            tracker.heartbeat(
                0, cycles_done=cycle,
                traces=sim_traces.value() - traces_start)
            progress(tracker)
    _advance_to(spec.cycles)
    if tracker is not None:
        tracker.shard_done(0)
        progress(tracker)
    return StudyRun(simulator=simulator, pipeline=pipeline,
                    results=results)
