"""The process-pool study runner.

A :class:`StudySpec` is the complete, picklable recipe for one
longitudinal campaign; :func:`build_study` turns it into a fresh
``(ArkSimulator, LprPipeline)`` pair.  Because every simulation object
is a pure function of the spec's seed (DESIGN §6), a worker process that
builds the same spec and fast-forwards to its shard's first cycle holds
exactly the network state the serial run would have there — label
allocators, TE sessions and all.

:func:`run_study` is the single entry point: ``workers <= 1`` runs the
familiar serial loop in-process; ``workers > 1`` fans the shards out
over a process pool, collects the per-shard results in cycle order,
absorbs each shard's metrics delta into the parent registry (tagged
with per-shard accounting counters), and finally fast-forwards a parent
simulator through the whole campaign so that post-study experiments
(Figs 6, 16, 17 re-run cycles on top of the end state) see the identical
state a serial run leaves behind.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..core.pipeline import CycleResult, LprPipeline
from ..obs import get_logger, get_registry, span
from ..sim import ArkSimulator
from ..sim.scenarios import CYCLES, paper_scenario
from .shard import Shard, shard_cycles

_log = get_logger(__name__)
_SHARDS_RUN = get_registry().counter(
    "par_shards_total", "Shards executed by parallel study runs")
_SHARD_CYCLES = get_registry().counter(
    "par_shard_cycles_total",
    "Cycles processed per shard of a parallel study run")
_CYCLES_REPLAYED = get_registry().counter(
    "par_cycles_replayed_total",
    "Cycles fast-forwarded (control-plane replay, no probes)")


@dataclass(frozen=True)
class StudySpec:
    """Everything needed to rebuild one campaign from scratch.

    Plain numbers only, so the spec pickles cheaply into worker
    processes and two equal specs always produce byte-identical runs.
    """

    scale: float = 1.0
    seed: int = 2015
    cycles: int = CYCLES
    snapshots_per_cycle: int = 3
    persistence_window: int = 2
    reinject_threshold: float = 0.10
    php_heuristic: bool = False


def build_study(spec: StudySpec) -> Tuple[ArkSimulator, LprPipeline]:
    """A fresh simulator + pipeline pair for one spec."""
    simulator = ArkSimulator(
        paper_scenario(scale=spec.scale, seed=spec.seed),
        snapshots_per_cycle=spec.snapshots_per_cycle,
    )
    pipeline = LprPipeline(
        simulator.internet.ip2as,
        persistence_window=spec.persistence_window,
        reinject_threshold=spec.reinject_threshold,
        php_heuristic=spec.php_heuristic,
    )
    return simulator, pipeline


@dataclass
class ShardResult:
    """What one worker sends back: results plus its metrics delta."""

    shard_id: int
    results: List[CycleResult]
    metrics_delta: Dict[str, Any]
    replayed_cycles: int


@dataclass
class StudyRun:
    """One executed campaign: end-state simulator + ordered results."""

    simulator: ArkSimulator
    pipeline: LprPipeline
    results: List[CycleResult]
    shards: List[ShardResult] = field(default_factory=list)
    """Per-shard accounting of a parallel run (empty when serial)."""


def _run_shard(args: Tuple[StudySpec, Shard]) -> ShardResult:
    """Worker entry: reconstruct state, run the shard's cycles locally."""
    spec, shard = args
    simulator, pipeline = build_study(spec)
    registry = get_registry()
    before = registry.snapshot()
    simulator.fast_forward(1, shard.first - 1)
    results = [
        pipeline.process_cycle(simulator.run_cycle(cycle))
        for cycle in shard.cycles
    ]
    return ShardResult(
        shard_id=shard.shard_id,
        results=results,
        metrics_delta=registry.diff(before, registry.snapshot()),
        replayed_cycles=shard.first - 1,
    )


def _pool_context():
    """Fork where the platform offers it (cheap, shares the warm
    imports); spawn otherwise.  Workers derive everything from the
    pickled spec either way, so the start method never affects output.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_study(spec: StudySpec, workers: int = 1) -> StudyRun:
    """Execute a campaign, sharded over ``workers`` processes.

    Results come back ordered by cycle whatever the pool's scheduling,
    and each shard's metrics delta is absorbed into this process's
    registry, so counters reconcile exactly with a serial run.
    """
    if workers <= 1:
        simulator, pipeline = build_study(spec)
        results = [
            pipeline.process_cycle(simulator.run_cycle(cycle))
            for cycle in range(1, spec.cycles + 1)
        ]
        return StudyRun(simulator=simulator, pipeline=pipeline,
                        results=results)

    shards = shard_cycles(1, spec.cycles, workers)
    _log.info("par.study.start", cycles=spec.cycles, workers=workers,
              shards=len(shards))
    with span("par.study", cycles=spec.cycles, shards=len(shards)):
        with ProcessPoolExecutor(max_workers=len(shards),
                                 mp_context=_pool_context()) as pool:
            shard_results = list(pool.map(
                _run_shard, [(spec, shard) for shard in shards]))

        registry = get_registry()
        results: List[CycleResult] = []
        for shard_result in sorted(shard_results,
                                   key=lambda r: r.shard_id):
            registry.absorb(shard_result.metrics_delta)
            _SHARDS_RUN.inc()
            _SHARD_CYCLES.inc(len(shard_result.results),
                              shard=shard_result.shard_id)
            _CYCLES_REPLAYED.inc(shard_result.replayed_cycles)
            results.extend(shard_result.results)

        # The parent simulator never probed, but post-study experiments
        # (persistence sweeps, ramp campaigns, label dynamics) run extra
        # cycles on top of the campaign's end state — replay the whole
        # control-plane evolution so that state matches a serial run.
        simulator, pipeline = build_study(spec)
        with span("par.fast_forward", cycles=spec.cycles):
            simulator.fast_forward(1, spec.cycles)
    _log.info("par.study.done", cycles=len(results),
              shards=len(shard_results))
    return StudyRun(simulator=simulator, pipeline=pipeline,
                    results=results, shards=shard_results)
