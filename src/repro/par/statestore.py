"""Warm-start snapshots of the simulated control plane.

A C-cycle campaign sharded S ways makes every worker rebuild its
starting state by replaying cycles ``1..first-1``
(:meth:`~repro.sim.ark.ArkSimulator.fast_forward`) — O(C²) aggregate
replay before the first probe.  The :class:`StateStore` removes that
wall: full :meth:`~repro.sim.network.Internet.capture_state` snapshots
are persisted every ``snapshot_stride`` cycles, and anyone needing the
state *after* cycle N loads the nearest snapshot ≤ N and replays only
the tail — near-O(1) in campaign length once the store is warm
(DESIGN §10).

Three parties share one store:

* the **parallel parent** seeds it while advancing its own end-state
  simulator (writing any missing stride snapshots), so even a first
  run's late shards warm-start;
* **workers** load the nearest snapshot ≤ their shard's first cycle
  and replay only the remainder;
* the **serial loop** writes snapshots as it runs, so an interrupted
  ``repro study --state-dir DIR`` resumes warm.

The store is a sibling of :class:`~repro.par.checkpoint.CheckpointStore`
and inherits its trust model: content-addressed directory
(``<state-dir>/<spec-hash>/state-<cycle>.snap``), the spec hash embedded
in every file and re-verified on load, atomic temp-file +
``os.replace`` writes, and hit/miss/write/rejected counters
(``state_snapshot_*``) plus ``snapshot.hit/miss/write/rejected``
flight-recorder events.  A corrupt, foreign-spec or wrong-version
snapshot is *rejected* — the search falls back to the next older
snapshot, and ultimately to a cold replay — never silently restored.

Snapshots are pure control-plane state (DESIGN §6: probing never
mutates the network), so a warm-started run is byte-identical to a
replayed one — results, artifacts, checkpoints and end-state
fingerprints alike (asserted in ``tests/test_statestore.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional, Tuple

from ..obs import emit, get_logger, get_registry

STATE_VERSION = 1
"""Bumped when the snapshot container shape changes; old files are then
rejected (reason ``version``) instead of mis-read."""

DEFAULT_SNAPSHOT_STRIDE = 8
"""Cycles between snapshots.  Smaller strides cut tail replay, larger
strides cut disk and capture time; 8 keeps the worst-case tail under
one stride while a 60-cycle campaign stores only 7 snapshots."""

_FILE_PATTERN = re.compile(r"^state-(\d{4})\.snap$")

_log = get_logger(__name__)
_HITS = get_registry().counter(
    "state_snapshot_hits_total",
    "Warm starts served from a state snapshot instead of full replay")
_MISSES = get_registry().counter(
    "state_snapshot_misses_total",
    "State lookups that found no usable snapshot (cold replay)")
_WRITES = get_registry().counter(
    "state_snapshot_writes_total",
    "Control-plane snapshots persisted to disk")
_REJECTED = get_registry().counter(
    "state_snapshot_rejected_total",
    "Snapshot files rejected instead of restored, by reason")


def state_spec_hash(spec) -> str:
    """Content hash naming one spec's snapshot directory.

    Same construction as the checkpoint layer's
    :func:`~repro.par.checkpoint.spec_hash`, but mixing in the *state*
    format version: snapshot and checkpoint formats evolve
    independently, so their directories must too.
    """
    payload = json.dumps(
        {"state_version": STATE_VERSION, **asdict(spec)},
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class StateStore:
    """Loads and saves control-plane snapshots under one spec's dir."""

    def __init__(self, root, spec):
        self.spec_hash = state_spec_hash(spec)
        self.directory = Path(root) / self.spec_hash

    def path_for(self, cycle: int) -> Path:
        return self.directory / f"state-{cycle:04d}.snap"

    def has(self, cycle: int) -> bool:
        """Whether a snapshot file exists for a cycle (unverified)."""
        return self.path_for(cycle).exists()

    def cycles(self) -> List[int]:
        """Cycles with a snapshot file on disk, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for name in os.listdir(self.directory):
            match = _FILE_PATTERN.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def save(self, cycle: int, state) -> Path:
        """Atomically persist one snapshot; returns its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(cycle)
        payload = {
            "version": STATE_VERSION,
            "spec_hash": self.spec_hash,
            "cycle": cycle,
            "state": state,
        }
        handle, tmp = tempfile.mkstemp(dir=self.directory,
                                       prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(payload, stream,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _WRITES.inc()
        _log.info("snapshot.written", path=str(path), cycle=cycle)
        emit("snapshot.write", path=path.name, cycle=cycle)
        return path

    def load(self, cycle: int):
        """One cycle's verified state, or None (missing or rejected)."""
        path = self.path_for(cycle)
        try:
            with open(path, "rb") as stream:
                payload = pickle.load(stream)
        except FileNotFoundError:
            return None
        except Exception as error:  # garbage pickles fail arbitrarily
            self._reject(path, "corrupt", error)
            return None
        return self._verify(path, cycle, payload)

    def load_nearest(self, target: int, after: int = 0
                     ) -> Optional[Tuple[int, object]]:
        """The newest usable snapshot in ``(after, target]``.

        Returns ``(cycle, state)``; candidates are tried newest-first,
        so a rejected file degrades the warm start instead of failing
        it.  ``after`` lets a mid-run caller skip snapshots at or
        before its current position.  A fruitless search counts one
        miss (a cold replay will follow).
        """
        for cycle in reversed(self.cycles()):
            if cycle > target or cycle <= after:
                continue
            state = self.load(cycle)
            if state is not None:
                _HITS.inc()
                saved = cycle - after
                _log.info("snapshot.hit", cycle=cycle, target=target,
                          saved=saved)
                emit("snapshot.hit", cycle=cycle, target=target,
                     saved=saved)
                return cycle, state
        _MISSES.inc()
        emit("snapshot.miss", target=target)
        return None

    # -- internals -----------------------------------------------------------

    def _verify(self, path: Path, cycle: int, payload):
        if not isinstance(payload, dict):
            return self._reject(path, "corrupt")
        if payload.get("version") != STATE_VERSION:
            return self._reject(path, "version")
        if payload.get("spec_hash") != self.spec_hash:
            return self._reject(path, "spec_mismatch")
        if payload.get("cycle") != cycle or payload.get("state") is None:
            return self._reject(path, "corrupt")
        return payload["state"]

    def _reject(self, path: Path, reason: str, error=None) -> None:
        _REJECTED.inc(reason=reason)
        _log.warning("snapshot.rejected", path=str(path), reason=reason,
                     **({"error": str(error)} if error else {}))
        emit("snapshot.rejected", path=path.name, reason=reason)
        return None
