"""Parallel study execution: deterministic cycle sharding.

The longitudinal campaign (60 monthly cycles, simulate -> extract ->
filter -> classify each) is embarrassingly parallel *across* cycles as
long as every worker sees the exact network state a serial run would
have at its cycles.  This package provides that:

* :func:`shard_cycles` splits a cycle range into contiguous blocks, one
  per worker — contiguity minimises replay work; :func:`plan_shards`
  extends the split *inside* cycles when workers outnumber them
  (intra-cycle pair blocks, reassembled in pair order by the runner);
* each worker deterministically reconstructs its block's starting state
  with :meth:`~repro.sim.ark.ArkSimulator.fast_forward` (control-plane
  replay: policies applied and timers ticked, no probes), then runs its
  cycles locally;
* :func:`run_study` collects the per-shard :class:`CycleResult` lists in
  cycle order and merges each shard's metrics delta back into the parent
  registry via :meth:`repro.obs.MetricsRegistry.absorb`.

The contract — asserted in ``tests/test_par.py`` — is that a run with
``workers=N`` produces **byte-identical** tables, figures,
classifications and merged metrics to the serial run (DESIGN §6 and §8).

The runner is also **fault tolerant**: failed shards retry with
exponential backoff (and optional subdivision), completed shards can be
checkpointed to disk and replayed on restart
(:mod:`repro.par.checkpoint`), and :mod:`repro.par.faults` provides the
test-only hooks that stage worker deaths so the recovery paths stay
covered (``tests/test_par_faults.py``).

Replay itself is near-O(1) when a **state store** is attached
(:mod:`repro.par.statestore`): full control-plane snapshots every
``snapshot_stride`` cycles let workers and resumed runs restore the
nearest snapshot and replay only the tail, instead of the whole prefix
— still byte-identical (DESIGN §10).
"""

from .shard import Shard, plan_shards, shard_cycles
from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    spec_hash,
    strip_layout_dependent,
)
from .faults import KILL, RAISE, FaultInjected, FaultPlan, ShardFault
from .statestore import (
    DEFAULT_SNAPSHOT_STRIDE,
    STATE_VERSION,
    StateStore,
    state_spec_hash,
)
from .runner import (
    ShardResult,
    StudyFailure,
    StudyRun,
    StudySpec,
    build_study,
    run_study,
)

__all__ = [
    "Shard",
    "plan_shards",
    "shard_cycles",
    "strip_layout_dependent",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "spec_hash",
    "DEFAULT_SNAPSHOT_STRIDE",
    "STATE_VERSION",
    "StateStore",
    "state_spec_hash",
    "KILL",
    "RAISE",
    "FaultInjected",
    "FaultPlan",
    "ShardFault",
    "ShardResult",
    "StudyFailure",
    "StudyRun",
    "StudySpec",
    "build_study",
    "run_study",
]
