"""Deterministic cycle sharding for parallel study execution.

Cycles are dealt into *contiguous* blocks: a worker reconstructs its
starting state by replaying cycles ``1..first-1`` (cheap control-plane
fast-forward), so contiguity keeps total replay work at
``sum(first_k - 1)`` instead of one replay per cycle.  The split is a
pure function of ``(first, last, shards)`` — no randomness, no
load-balancer state — which keeps shard assignment reproducible and the
merged output independent of worker scheduling.

When callers ask for more workers than there are cycles,
:func:`plan_shards` keeps going *inside* the cycles: the surplus
workers each take one contiguous **pair block** — a slice of a cycle's
(monitor, destination) list (``Shard.block``) — so a 1-cycle study
still fills every core.  Pair-block shards trace over the same
fast-forwarded state a full-cycle worker would hold, and the runner
reassembles their traces in pair order, so the output stays
byte-identical (DESIGN §8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous block of cycles (inclusive bounds).

    ``block`` is None for an ordinary cycle-range shard.  For an
    intra-cycle shard it is ``(index, count)``: the shard covers pair
    block ``index`` of ``count`` of the single cycle ``first``
    (``first == last``), sliced per snapshot by
    :func:`repro.sim.ark.block_bounds`.
    """

    shard_id: int
    first: int
    last: int
    block: Optional[Tuple[int, int]] = None

    @property
    def cycles(self) -> range:
        """The cycle numbers of this shard, ascending."""
        return range(self.first, self.last + 1)

    def __len__(self) -> int:
        return self.last - self.first + 1


def shard_cycles(first: int, last: int, shards: int) -> List[Shard]:
    """Split ``[first, last]`` into at most ``shards`` contiguous blocks.

    Blocks differ in size by at most one cycle (the earlier blocks take
    the remainder).  Asking for more shards than cycles yields one
    single-cycle shard per cycle; an empty range yields no shards.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    total = last - first + 1
    if total <= 0:
        return []
    count = min(shards, total)
    base, extra = divmod(total, count)
    out: List[Shard] = []
    start = first
    for shard_id in range(count):
        size = base + (1 if shard_id < extra else 0)
        out.append(Shard(shard_id=shard_id, first=start,
                         last=start + size - 1))
        start += size
    return out


def plan_shards(first: int, last: int, workers: int) -> List[Shard]:
    """One shard per worker, splitting cycles when workers outnumber them.

    With ``workers <= cycles`` this is exactly :func:`shard_cycles`.
    With more workers, every cycle becomes its own unit and the surplus
    workers split cycles into pair blocks: ``divmod`` spreads the
    workers over the cycles (earlier cycles take the remainder), and a
    cycle assigned ``k > 1`` workers yields ``k`` intra-cycle shards
    ``block=(0..k-1, k)``.  Shard ids run in (cycle, block) order.
    """
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    total = last - first + 1
    if total <= 0:
        return []
    if workers <= total:
        return shard_cycles(first, last, workers)
    base, extra = divmod(workers, total)
    out: List[Shard] = []
    shard_id = 0
    for offset in range(total):
        cycle = first + offset
        count = base + (1 if offset < extra else 0)
        if count == 1:
            out.append(Shard(shard_id=shard_id, first=cycle,
                             last=cycle))
            shard_id += 1
            continue
        for index in range(count):
            out.append(Shard(shard_id=shard_id, first=cycle,
                             last=cycle, block=(index, count)))
            shard_id += 1
    return out
