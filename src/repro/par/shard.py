"""Deterministic cycle sharding for parallel study execution.

Cycles are dealt into *contiguous* blocks: a worker reconstructs its
starting state by replaying cycles ``1..first-1`` (cheap control-plane
fast-forward), so contiguity keeps total replay work at
``sum(first_k - 1)`` instead of one replay per cycle.  The split is a
pure function of ``(first, last, shards)`` — no randomness, no
load-balancer state — which keeps shard assignment reproducible and the
merged output independent of worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Shard:
    """One worker's contiguous block of cycles (inclusive bounds)."""

    shard_id: int
    first: int
    last: int

    @property
    def cycles(self) -> range:
        """The cycle numbers of this shard, ascending."""
        return range(self.first, self.last + 1)

    def __len__(self) -> int:
        return self.last - self.first + 1


def shard_cycles(first: int, last: int, shards: int) -> List[Shard]:
    """Split ``[first, last]`` into at most ``shards`` contiguous blocks.

    Blocks differ in size by at most one cycle (the earlier blocks take
    the remainder).  Asking for more shards than cycles yields one
    single-cycle shard per cycle; an empty range yields no shards.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    total = last - first + 1
    if total <= 0:
        return []
    count = min(shards, total)
    base, extra = divmod(total, count)
    out: List[Shard] = []
    start = first
    for shard_id in range(count):
        size = base + (1 if shard_id < extra else 0)
        out.append(Shard(shard_id=shard_id, first=start,
                         last=start + size - 1))
        start += size
    return out
