"""Test-only fault injection hooks for the study runner.

Real campaigns die in ways a unit test can't trigger naturally: a worker
process OOM-killed mid-shard, a transient exception deep in one cycle, a
checkpoint file half-written by a crashed parent.  This module gives
tests a deterministic way to stage those deaths so the recovery paths in
:mod:`repro.par.runner` stay exercised (``tests/test_par_faults.py``,
run as its own CI step).

A :class:`FaultPlan` maps a shard's **first cycle** (stable across
worker counts, unlike shard ids) to a :class:`ShardFault` saying how and
when to fail.  Plans are plain frozen dataclasses so they pickle into
worker processes; production runs simply pass no plan, and the hooks
cost one ``is None`` check per cycle.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

KILL = "kill"
"""Terminate the worker process abruptly (``os._exit``) — what an
OOM-kill or segfault looks like from the parent: a broken pool."""

RAISE = "raise"
"""Raise :class:`FaultInjected` inside the worker — an ordinary
per-shard exception travelling back through the future."""

HANG = "hang"
"""Stop making progress for ``hang_seconds`` (the worker sleeps, then
carries on) — what a wedged syscall or a pathological cycle looks like
to the heartbeat watchdog.  Unlike KILL/RAISE the shard eventually
completes, so the drill exercises the stall -> recovered path."""


class FaultInjected(RuntimeError):
    """The exception an injected ``RAISE`` fault throws."""


@dataclass(frozen=True)
class ShardFault:
    """One staged failure.

    ``attempts`` gates firing on the runner's retry counter, so a fault
    that fires on attempt 0 only lets the retry succeed; ``after_cycles``
    delays the death until that many of the shard's cycles finished
    (mid-campaign kills leave partial work behind, the interesting case).
    """

    kind: str
    attempts: Tuple[int, ...] = (0,)
    after_cycles: int = 0
    hang_seconds: float = 1.0
    """How long a ``HANG`` fault stays silent before resuming."""

    def __post_init__(self):
        if self.kind not in (KILL, RAISE, HANG):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.hang_seconds < 0:
            raise ValueError(
                f"negative hang_seconds: {self.hang_seconds}")

    def maybe_fire(self, attempt: int, cycles_done: int) -> None:
        """Fire iff this attempt is staged and enough cycles ran."""
        if attempt in self.attempts and cycles_done == self.after_cycles:
            self.fire()

    def fire(self) -> None:
        if self.kind == HANG:
            time.sleep(self.hang_seconds)
            return
        if self.kind == KILL:
            os._exit(43)
        raise FaultInjected(
            f"injected worker failure (attempts {self.attempts})")


@dataclass(frozen=True)
class FaultPlan:
    """Which shards fail, keyed by the shard's first cycle."""

    by_first_cycle: Mapping[int, ShardFault] = field(default_factory=dict)

    def for_shard(self, shard) -> Optional[ShardFault]:
        return self.by_first_cycle.get(shard.first)

    def for_cycle(self, cycle: int) -> Optional[ShardFault]:
        """Serial runs treat every cycle as a one-cycle shard."""
        return self.by_first_cycle.get(cycle)
