"""Auto-shrinking divergent specs to minimal reproductions.

A divergence found by the matrix runner on a 60-cycle campaign is a
terrible debugging artifact: the failing run takes minutes and the
interesting cycle is buried.  This module shrinks the spec the way
property-testing frameworks shrink counterexamples — greedily, one
dimension at a time, re-checking after every cut that the candidate
still diverges:

1. **cycle bisection** — cap the run at the first divergent cycle,
   then binary-search the smallest cycle count that still diverges;
2. **scale ladder** — halve the topology scale while the divergence
   survives (floored so the scenario stays buildable);
3. **snapshot reduction** — drop follow-up snapshots to the smallest
   count that still reproduces.

Every trial re-runs both the serial reference and the failing
configuration on the candidate spec, so the result is a spec that
*provably* still diverges, emitted as a standalone ``repro verify``
command.  Progress is streamed as ``verify.shrink.step`` events; the
end state as one ``verify.minimal`` event (DESIGN §11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from ..obs import emit, get_logger, get_registry
from ..par import StudySpec, run_study
from .differential import (
    Divergence,
    VerifyConfig,
    diff_cycles,
    execute_config,
    repro_command,
    state_fingerprint,
)

_log = get_logger(__name__)
_TRIALS = get_registry().counter(
    "verify_shrink_trials_total",
    "Shrink trials executed while minimising a divergence")

MIN_SCALE = 0.05
"""Smallest topology scale the shrinker will try — below this the
scenario generator degenerates to too few transit ASes to probe."""


@dataclass(frozen=True)
class ShrinkResult:
    """The minimal reproducing spec and how much work finding it took."""

    spec: StudySpec
    divergence: Divergence
    trials: int


def _still_diverges(spec: StudySpec, config: VerifyConfig,
                    workdir: Path) -> Optional[Divergence]:
    """Re-run reference + config on a candidate spec; None = converged.

    A candidate whose *execution* fails outright (rather than
    diverging) is treated as still-reproducing only if it raised the
    same way a divergence would not — conservatively, an error means
    the cut went too far, so the candidate is rejected.
    """
    try:
        reference = run_study(spec, workers=1)
        results, end = execute_config(spec, config, workdir)
    except Exception:
        return None
    divergence = diff_cycles(reference.results, results, config)
    if divergence is None and end is not None \
            and end != state_fingerprint(reference.simulator.internet):
        divergence = Divergence(config=config.name, stage="end-state",
                                cycle=None)
    return divergence


class _Shrinker:
    """Greedy shrink loop with trial accounting."""

    def __init__(self, config: VerifyConfig, workdir: Path) -> None:
        self.config = config
        self.workdir = Path(workdir)
        self.trials = 0

    def diverges(self, spec: StudySpec) -> Optional[Divergence]:
        self.trials += 1
        _TRIALS.inc()
        trial_dir = self.workdir / f"trial-{self.trials}"
        trial_dir.mkdir(parents=True, exist_ok=True)
        divergence = _still_diverges(spec, self.config, trial_dir)
        emit("verify.shrink.step", config=self.config.name,
             trial=self.trials, cycles=spec.cycles, scale=spec.scale,
             snapshots=spec.snapshots_per_cycle,
             diverged=divergence is not None)
        return divergence


def shrink_divergence(spec: StudySpec, config: VerifyConfig,
                      divergence: Divergence,
                      workdir: Path) -> ShrinkResult:
    """Minimise a diverging (spec, config) pair.

    Returns the smallest spec found that still reproduces the
    divergence; if no cut survives, that is the original spec.  The
    caller gets a ``verify.minimal`` event either way, carrying the
    final spec and a standalone repro command.
    """
    shrinker = _Shrinker(config, workdir)
    best_spec = spec
    best_divergence = divergence

    # 1. Cap at the first divergent cycle, then bisect the cycle count.
    hi = divergence.cycle if divergence.cycle is not None \
        else spec.cycles
    hi = min(max(hi, 1), spec.cycles)
    capped = shrinker.diverges(replace(spec, cycles=hi))
    if capped is not None:
        best_spec = replace(spec, cycles=hi)
        best_divergence = capped
        lo = 1
        while lo < hi:
            mid = (lo + hi) // 2
            found = shrinker.diverges(replace(spec, cycles=mid))
            if found is not None:
                hi = mid
                best_spec = replace(spec, cycles=mid)
                best_divergence = found
            else:
                lo = mid + 1

    # 2. Halve the topology scale while the divergence survives.
    scale = best_spec.scale
    while scale / 2 >= MIN_SCALE:
        candidate = replace(best_spec, scale=round(scale / 2, 6))
        found = shrinker.diverges(candidate)
        if found is None:
            break
        best_spec = candidate
        best_divergence = found
        scale = candidate.scale

    # 3. Smallest snapshot count that still reproduces.
    for snapshots in range(1, best_spec.snapshots_per_cycle):
        candidate = replace(best_spec, snapshots_per_cycle=snapshots)
        found = shrinker.diverges(candidate)
        if found is not None:
            best_spec = candidate
            best_divergence = found
            break

    command = repro_command(best_spec, config)
    emit("verify.minimal", config=config.name, trials=shrinker.trials,
         cycles=best_spec.cycles, scale=best_spec.scale,
         snapshots=best_spec.snapshots_per_cycle,
         stage=best_divergence.stage, command=command)
    _log.info("verify.minimal", config=config.name,
              trials=shrinker.trials, cycles=best_spec.cycles,
              scale=best_spec.scale)
    return ShrinkResult(spec=best_spec, divergence=best_divergence,
                        trials=shrinker.trials)
