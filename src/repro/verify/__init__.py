"""Correctness backstop: invariants + differential oracle + shrinker.

After the parallel runner, pair-block sharding, forwarding-path
memoization, checkpoint resume and warm-start snapshots, the same
:class:`~repro.par.StudySpec` can execute through half a dozen
independent fast paths.  The paper's LPR conclusions are only
trustworthy if all of them are *byte-identical* to the plain serial
reference — an equivalence previously asserted only in scattered
pairwise tests.  This package makes it a first-class subsystem:

* :mod:`repro.verify.invariants` — per-cycle and per-run invariant
  checkers (filter-funnel monotonicity, classification share/count
  reconciliation, drop-counter accounting, cache accounting,
  capture/restore idempotence) every figure silently assumes;
* :mod:`repro.verify.differential` — a matrix runner that executes one
  spec through every configuration (serial, sharded, pair-block,
  unmemoized, checkpoint kill+resume, cold/warm state store, strict vs
  tolerant archive round-trips) and diffs canonical artifacts
  cycle-by-cycle, reporting the first divergent (config, cycle, stage);
* :mod:`repro.verify.shrink` — on divergence, auto-shrinks the spec
  (cycle bisection, then scale / snapshot reduction) to a minimal
  reproducing spec emitted as a standalone ``repro verify`` command.

``repro verify`` drives all three from the CLI; every step emits
``verify.*`` flight-recorder events and ``verify_*`` metrics, surfaced
in ``repro report`` (DESIGN §11).
"""

from .invariants import (
    CYCLE_CHECKERS,
    RUN_CHECKERS,
    Violation,
    audit_run,
    check_cycle,
    check_run,
)
from .differential import (
    CONFIG_NAMES,
    ConfigOutcome,
    DiffEntry,
    Divergence,
    MatrixReport,
    VerifyConfig,
    canonical_cycle,
    default_matrix,
    diff_cycles,
    execute_config,
    repro_command,
    run_matrix,
    state_fingerprint,
)
from .shrink import ShrinkResult, shrink_divergence

__all__ = [
    "CYCLE_CHECKERS",
    "RUN_CHECKERS",
    "Violation",
    "audit_run",
    "check_cycle",
    "check_run",
    "CONFIG_NAMES",
    "ConfigOutcome",
    "DiffEntry",
    "Divergence",
    "MatrixReport",
    "VerifyConfig",
    "canonical_cycle",
    "default_matrix",
    "diff_cycles",
    "execute_config",
    "repro_command",
    "run_matrix",
    "state_fingerprint",
    "ShrinkResult",
    "shrink_divergence",
]
