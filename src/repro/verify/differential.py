"""The differential oracle: one spec, every execution path, zero diffs.

The study runner grew five independent fast paths (process-pool cycle
shards, intra-cycle pair blocks, forwarding-path memoization,
checkpoint resume, warm-start state snapshots) plus two archive read
modes.  Each claims byte-identity with the serial reference; this
module *proves* it per run, the way TNT-style measurement studies
cross-validate pipelines: execute the same
:class:`~repro.par.StudySpec` through every configuration, canonicalise
each cycle's artifacts, and diff them cycle-by-cycle against the
reference, reporting the first divergent ``(config, cycle, stage)``
with a structured value diff.

A configuration is a :class:`VerifyConfig`; :func:`default_matrix`
builds the standard eight.  :func:`run_matrix` executes them all,
audits the reference run against the invariant registry
(:mod:`repro.verify.invariants`), and — on divergence — hands the
failing configuration to the shrinker (:mod:`repro.verify.shrink`) for
a minimal reproducing spec.  Everything emits ``verify.*`` events on
the flight-recorder bus and ``verify_configs_total`` /
``verify_divergences_total`` metrics, so ``repro report`` can
reconstruct a verification run post-hoc (DESIGN §11).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.render import format_table
from ..core.pipeline import CycleResult
from ..obs import emit, get_logger, get_registry
from ..par import (
    FaultInjected,
    FaultPlan,
    RAISE,
    ShardFault,
    StudySpec,
    build_study,
    run_study,
    strip_layout_dependent,
)
from ..warts import read_archive, salvage_archive, write_archive
from .invariants import Violation, audit_run

_log = get_logger(__name__)
_CONFIGS = get_registry().counter(
    "verify_configs_total",
    "Differential configurations executed, by config")
_DIVERGENCES = get_registry().counter(
    "verify_divergences_total",
    "Configurations that diverged from the serial reference")

STAGES = ("stats", "filter_stats", "iotps", "classification",
          "metrics")
"""Per-cycle diff stages, in the order the pipeline produces them —
the first divergent stage names the layer that broke."""

MAX_DIFF_ENTRIES = 8
"""Structured-diff entries reported per divergence (the first one
names the failure; the rest are context)."""


@dataclass(frozen=True)
class VerifyConfig:
    """One way of executing a study spec.

    ``workers`` shards cycles; ``oversubscribe`` instead requests
    ``2 * cycles`` workers so every cycle splits into pair blocks.
    ``memoize=False`` runs the uncached forwarding reference.
    ``resume`` stages a mid-study crash (RAISE fault against a
    checkpointed serial run) and re-runs to completion from the
    checkpoints.  ``state`` names a shared warm-start store key:
    configs with the same key use the same ``--state-dir``, so a
    ``cold`` run seeds the snapshots a later ``warm`` run restores.
    ``archive`` round-trips cycle 1 through the warts codec and back
    (``strict`` reader or ``tolerant`` salvage path) before the
    pipeline runs.  ``engine`` selects the analysis backend
    (``object`` or ``columnar``, DESIGN §12).
    """

    name: str
    description: str = ""
    workers: int = 1
    oversubscribe: bool = False
    memoize: bool = True
    resume: bool = False
    state: Optional[str] = None
    archive: Optional[str] = None
    engine: str = "object"

    @property
    def partial(self) -> bool:
        """Whether this config only reproduces a prefix of the run."""
        return self.archive is not None


def default_matrix(workers: int = 2) -> List[VerifyConfig]:
    """The standard configuration matrix (DESIGN §11).

    Order matters only for the state-store pair: ``state-cold`` seeds
    the shared snapshot directory ``state-warm`` then restores from.
    """
    return [
        VerifyConfig(name="workers", workers=workers,
                     description=f"cycle shards over {workers} "
                                 f"worker processes"),
        VerifyConfig(name="pair-block", oversubscribe=True,
                     description="2x workers per cycle: intra-cycle "
                                 "pair blocks, reassembled"),
        VerifyConfig(name="no-memo", memoize=False,
                     description="forwarding-path memoization "
                                 "disabled (uncached reference)"),
        VerifyConfig(name="resume", resume=True,
                     description="mid-study crash, then checkpoint "
                                 "resume"),
        VerifyConfig(name="state-cold", state="shared",
                     description="serial run seeding a warm-start "
                                 "state store"),
        VerifyConfig(name="state-warm", state="shared",
                     description="serial run restoring the snapshots "
                                 "state-cold wrote"),
        VerifyConfig(name="strict-archive", archive="strict",
                     description="cycle 1 round-tripped through the "
                                 "warts codec (strict reader)"),
        VerifyConfig(name="tolerant-archive", archive="tolerant",
                     description="cycle 1 round-tripped through the "
                                 "salvage reader (clean archives)"),
        VerifyConfig(name="columnar", engine="columnar",
                     description="serial run through the columnar "
                                 "kernel engine (DESIGN §12)"),
        VerifyConfig(name="columnar+workers", engine="columnar",
                     workers=workers,
                     description=f"columnar engine inside {workers} "
                                 f"cycle-shard worker processes"),
    ]


CONFIG_NAMES = tuple(config.name for config in default_matrix())


@dataclass(frozen=True)
class DiffEntry:
    """One differing value: where, and the two sides."""

    path: str
    reference: Any
    candidate: Any

    def __str__(self) -> str:
        return (f"{self.path}: reference={self.reference!r} "
                f"candidate={self.candidate!r}")


@dataclass(frozen=True)
class Divergence:
    """The first point where a configuration left the reference."""

    config: str
    stage: str
    cycle: Optional[int]
    entries: Tuple[DiffEntry, ...] = ()

    def describe(self) -> str:
        where = (f"cycle {self.cycle}, stage {self.stage}"
                 if self.cycle is not None else f"stage {self.stage}")
        lines = [f"config {self.config!r} diverged at {where}:"]
        lines.extend(f"  {entry}" for entry in self.entries)
        return "\n".join(lines)


@dataclass
class ConfigOutcome:
    """What one configuration's execution produced."""

    config: VerifyConfig
    divergence: Optional[Divergence] = None
    error: Optional[str] = None
    cycles: int = 0
    minimal_spec: Optional[StudySpec] = None
    command: Optional[str] = None
    shrink_trials: int = 0

    @property
    def status(self) -> str:
        if self.error is not None:
            return "error"
        return "ok" if self.divergence is None else "DIVERGED"


@dataclass
class MatrixReport:
    """The verdict of one full differential + invariant sweep."""

    spec: StudySpec
    outcomes: List[ConfigOutcome] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def divergences(self) -> List[Divergence]:
        return [outcome.divergence for outcome in self.outcomes
                if outcome.divergence is not None]

    @property
    def clean(self) -> bool:
        return (not self.divergences and not self.violations
                and all(o.error is None for o in self.outcomes))

    def render(self) -> str:
        """Printable summary: the matrix table, then any findings."""
        rows = [[outcome.config.name, outcome.cycles, outcome.status,
                 outcome.config.description]
                for outcome in self.outcomes]
        sections = [
            f"spec: cycles={self.spec.cycles} scale={self.spec.scale} "
            f"seed={self.spec.seed} "
            f"snapshots={self.spec.snapshots_per_cycle}",
            format_table(["config", "cycles", "status", "exercises"],
                         rows),
        ]
        for violation in self.violations:
            sections.append(f"invariant violation: {violation}")
        for outcome in self.outcomes:
            if outcome.error is not None:
                sections.append(f"config {outcome.config.name!r} "
                                f"failed to run: {outcome.error}")
            if outcome.divergence is not None:
                sections.append(outcome.divergence.describe())
            if outcome.minimal_spec is not None:
                spec = outcome.minimal_spec
                sections.append(
                    f"minimal reproducing spec "
                    f"({outcome.shrink_trials} shrink trials): "
                    f"cycles={spec.cycles} scale={spec.scale} "
                    f"snapshots={spec.snapshots_per_cycle}\n"
                    f"  repro: {outcome.command}")
        verdict = ("verify: all configurations byte-identical, "
                   "all invariants hold"
                   if self.clean else
                   f"verify: {len(self.divergences)} divergence(s), "
                   f"{len(self.violations)} invariant violation(s)")
        sections.append(verdict)
        return "\n\n".join(sections)


def state_fingerprint(internet) -> tuple:
    """Canonical end-state digest: every label allocator's position
    plus every TE session's label bindings, per AS."""
    state = []
    for asn in sorted(internet.networks):
        network = internet.networks[asn]
        if network.labels is None:
            state.append((asn, None))
            continue
        allocators = tuple(
            (router, alloc._next, alloc.allocated_total,
             tuple(sorted(alloc._in_use)))
            for router, alloc in sorted(
                network.labels.allocators.items())
        )
        sessions = tuple(sorted(
            (str(session.fec), tuple(sorted(session.labels.items())))
            for session in network.rsvp._sessions.values()
        )) if network.rsvp else ()
        state.append((asn, allocators, sessions))
    return tuple(state)


def canonical_cycle(result: CycleResult) -> Dict[str, Any]:
    """One cycle's artifacts in diffable form.

    Layout-dependent cache counters are stripped from the metrics
    delta exactly as the checkpoint layer does — how warm a cache
    happened to be is an execution detail, not a result.
    """
    return {
        "stats": asdict(result.stats),
        "filter_stats": asdict(result.filter_stats),
        "iotps": sorted(result.iotps),
        "classification": {
            key: (verdict.tunnel_class.value,
                  verdict.subclass.value if verdict.subclass else None,
                  verdict.dynamic, verdict.width, verdict.length,
                  verdict.symmetry)
            for key, verdict in sorted(
                result.classification.verdicts.items())
        },
        "metrics": strip_layout_dependent(result.metrics),
    }


def _diff_value(path: str, reference: Any, candidate: Any,
                out: List[DiffEntry]) -> None:
    """Recursive structured diff, appending leaf-level entries."""
    if len(out) >= MAX_DIFF_ENTRIES:
        return
    if isinstance(reference, dict) and isinstance(candidate, dict):
        for key in sorted(set(reference) | set(candidate), key=str):
            if key not in reference:
                out.append(DiffEntry(f"{path}.{key}", "<absent>",
                                     candidate[key]))
            elif key not in candidate:
                out.append(DiffEntry(f"{path}.{key}", reference[key],
                                     "<absent>"))
            elif reference[key] != candidate[key]:
                _diff_value(f"{path}.{key}", reference[key],
                            candidate[key], out)
            if len(out) >= MAX_DIFF_ENTRIES:
                return
        return
    if (isinstance(reference, (list, tuple))
            and isinstance(candidate, (list, tuple))):
        if len(reference) != len(candidate):
            out.append(DiffEntry(f"{path}.<len>", len(reference),
                                 len(candidate)))
        for index, (left, right) in enumerate(zip(reference,
                                                  candidate)):
            if left != right:
                _diff_value(f"{path}[{index}]", left, right, out)
            if len(out) >= MAX_DIFF_ENTRIES:
                return
        return
    out.append(DiffEntry(path, reference, candidate))


def diff_cycles(reference: List[CycleResult],
                candidate: List[CycleResult],
                config: VerifyConfig) -> Optional[Divergence]:
    """First divergent (cycle, stage) between two result lists.

    A partial config (archive round-trips) only reproduces a prefix;
    full configs must match the reference cycle-for-cycle.
    """
    by_cycle = {result.cycle: result for result in reference}
    if not config.partial:
        want = sorted(by_cycle)
        got = sorted(result.cycle for result in candidate)
        if want != got:
            return Divergence(
                config=config.name, stage="cycle-count", cycle=None,
                entries=(DiffEntry("cycles", want, got),))
    for result in sorted(candidate, key=lambda r: r.cycle):
        base = by_cycle.get(result.cycle)
        if base is None:
            return Divergence(
                config=config.name, stage="cycle-count",
                cycle=result.cycle,
                entries=(DiffEntry("cycle", "<absent>",
                                   result.cycle),))
        left = canonical_cycle(base)
        right = canonical_cycle(result)
        for stage in STAGES:
            if left[stage] != right[stage]:
                entries: List[DiffEntry] = []
                _diff_value(stage, left[stage], right[stage], entries)
                return Divergence(
                    config=config.name, stage=stage,
                    cycle=result.cycle, entries=tuple(entries))
    return None


def _mid_cycle(spec: StudySpec) -> int:
    """Where the staged crash of a ``resume`` config fires."""
    return max(1, (spec.cycles + 1) // 2)


def execute_config(spec: StudySpec, config: VerifyConfig,
                   workdir: Path
                   ) -> Tuple[List[CycleResult], Optional[tuple]]:
    """Run one configuration; returns (results, end fingerprint).

    ``workdir`` holds this matrix run's scratch state; per-config
    directories are derived from the config name, except the shared
    warm-start store which is keyed by ``config.state`` so cold and
    warm runs see the same snapshots.
    """
    workdir = Path(workdir)
    if config.archive is not None:
        return _archive_roundtrip(spec, config, workdir), None
    spec = replace(spec, memoize=config.memoize,
                   engine=config.engine)
    workers = (2 * spec.cycles if config.oversubscribe
               else config.workers)
    options: Dict[str, Any] = {}
    if config.state is not None:
        options["state_dir"] = workdir / f"state-{config.state}"
        options["snapshot_stride"] = 1
    if config.resume:
        checkpoint_dir = workdir / f"checkpoint-{config.name}"
        plan = FaultPlan({_mid_cycle(spec): ShardFault(kind=RAISE)})
        try:
            run_study(spec, workers=1, checkpoint_dir=checkpoint_dir,
                      fault_plan=plan, **options)
        except FaultInjected:
            pass
        else:  # pragma: no cover - the staged fault always fires
            raise RuntimeError("staged mid-study fault did not fire")
        run = run_study(spec, workers=1,
                        checkpoint_dir=checkpoint_dir, **options)
    else:
        run = run_study(spec, workers=workers, **options)
    return run.results, state_fingerprint(run.simulator.internet)


def _archive_roundtrip(spec: StudySpec, config: VerifyConfig,
                       workdir: Path) -> List[CycleResult]:
    """Cycle 1 written to warts archives and read back, then piped.

    The strict reader and the tolerant salvage reader must agree with
    each other *and* with the in-memory reference on clean archives —
    and salvage must skip nothing.
    """
    simulator, pipeline = build_study(spec)
    data = simulator.run_cycle(1)
    archive_dir = workdir / f"archive-{config.archive}"
    archive_dir.mkdir(parents=True, exist_ok=True)
    snapshots = []
    for index, snapshot in enumerate(data.snapshots):
        path = archive_dir / f"snapshot-{index}.rwts"
        write_archive(path, snapshot)
        if config.archive == "tolerant":
            traces, skipped = salvage_archive(path)
            if skipped:
                raise RuntimeError(
                    f"salvage skipped {sum(skipped.values())} "
                    f"record(s) of a clean archive: {skipped}")
        else:
            traces = read_archive(path)
        snapshots.append(traces)
    return [pipeline.process_snapshots(1, snapshots)]


def repro_command(spec: StudySpec, config: VerifyConfig) -> str:
    """A standalone CLI invocation reproducing one configuration."""
    parts = [
        "repro", "verify",
        "--cycles", str(spec.cycles),
        "--scale", str(spec.scale),
        "--seed", str(spec.seed),
        "--snapshots-per-cycle", str(spec.snapshots_per_cycle),
        "--configs", config.name,
    ]
    if config.workers > 1:
        parts += ["--workers", str(config.workers)]
    return " ".join(parts)


def run_matrix(spec: StudySpec,
               configs: Optional[List[VerifyConfig]] = None,
               *, workdir: Path, shrink: bool = True,
               workers: int = 2) -> MatrixReport:
    """Execute the full differential + invariant sweep for one spec.

    The serial run is the reference: it is executed first, audited
    against the invariant registry, then every configuration is
    executed and diffed against it.  With ``shrink`` set, each
    divergent configuration is handed to
    :func:`repro.verify.shrink.shrink_divergence` for a minimal
    reproducing spec and a standalone repro command.
    """
    from .shrink import shrink_divergence  # circular: shrink re-runs us

    if configs is None:
        configs = default_matrix(workers=workers)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    emit("verify.start", configs=[config.name for config in configs],
         cycles=spec.cycles, scale=spec.scale, seed=spec.seed)
    _log.info("verify.start", configs=len(configs),
              cycles=spec.cycles, scale=spec.scale)

    registry = get_registry()
    before = registry.snapshot()
    reference = run_study(spec, workers=1)
    delta = registry.diff(before, registry.snapshot())
    violations = audit_run(reference, delta)
    reference_end = state_fingerprint(reference.simulator.internet)

    report = MatrixReport(spec=spec, violations=violations)
    for config in configs:
        _CONFIGS.inc(config=config.name)
        try:
            results, end = execute_config(spec, config, workdir)
        except Exception as error:
            report.outcomes.append(ConfigOutcome(
                config=config, error=f"{type(error).__name__}: "
                                     f"{error}"))
            emit("verify.config", config=config.name, status="error",
                 error=str(error))
            continue
        divergence = diff_cycles(reference.results, results, config)
        if divergence is None and end is not None \
                and end != reference_end:
            divergence = Divergence(
                config=config.name, stage="end-state", cycle=None,
                entries=(DiffEntry("state_fingerprint",
                                   "<reference>", "<differs>"),))
        outcome = ConfigOutcome(config=config, divergence=divergence,
                                cycles=len(results))
        report.outcomes.append(outcome)
        emit("verify.config", config=config.name,
             status=outcome.status, cycles=len(results))
        if divergence is None:
            continue
        _DIVERGENCES.inc()
        emit("verify.divergence", config=config.name,
             stage=divergence.stage,
             detail=(str(divergence.entries[0])
                     if divergence.entries else ""),
             **({"cycle": divergence.cycle}
                if divergence.cycle is not None else {}))
        _log.warning("verify.divergence", config=config.name,
                     stage=divergence.stage, cycle=divergence.cycle)
        if shrink:
            shrunk = shrink_divergence(spec, config, divergence,
                                       workdir / "shrink")
            outcome.minimal_spec = shrunk.spec
            outcome.shrink_trials = shrunk.trials
            outcome.command = repro_command(shrunk.spec, config)
    emit("verify.done", configs=len(report.outcomes),
         divergences=len(report.divergences),
         violations=len(report.violations))
    _log.info("verify.done", configs=len(report.outcomes),
              divergences=len(report.divergences))
    return report
