"""Invariant checkers over study results.

Every figure and table rests on a handful of structural facts the
pipeline never states explicitly: the filter funnel only ever narrows,
class shares are a probability distribution over the verdicts, the
per-filter drop counters reconcile exactly with the survivor deltas,
the memoization layers account for every probe, and a control-plane
snapshot restores to exactly the state it captured.  A bug in any fast
path that *happens* to keep artifacts equal would still be caught here
— and conversely, a divergence flagged by the differential oracle
(:mod:`repro.verify.differential`) usually trips one of these first.

Checkers come in two granularities:

* **cycle checkers** (`CYCLE_CHECKERS`) take one
  :class:`~repro.core.pipeline.CycleResult` and validate facts local to
  a cycle;
* **run checkers** (`RUN_CHECKERS`) take a finished
  :class:`~repro.par.StudyRun` plus the run's registry delta and
  validate cross-cycle accounting and end-state round-trips.

Each returns a list of human-readable violation messages (empty =
clean).  :func:`audit_run` sweeps everything, emitting one
``verify.violation`` event and one ``verify_violations_total{checker=}``
increment per finding.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..core.pipeline import CycleResult
from ..obs import emit, get_registry

SHARE_EPSILON = 1e-9
"""Tolerance for float share sums (counts are exact integers)."""

_VIOLATIONS = get_registry().counter(
    "verify_violations_total",
    "Invariant violations found by the verify subsystem, by checker")

_FUNNEL_STAGES = ("extracted", "after_incomplete", "after_intra_as",
                  "after_target_as", "after_transit_diversity",
                  "after_persistence")

_DROP_FILTERS = ("incomplete", "intra_as", "target_as",
                 "transit_diversity", "persistence")


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which checker, where, and what it saw."""

    checker: str
    message: str
    cycle: Optional[int] = None

    def __str__(self) -> str:
        where = f"cycle {self.cycle}: " if self.cycle is not None else ""
        return f"[{self.checker}] {where}{self.message}"


CycleChecker = Callable[[CycleResult], List[str]]
RunChecker = Callable[[Any, Mapping[str, Any]], List[str]]

CYCLE_CHECKERS: Dict[str, CycleChecker] = {}
RUN_CHECKERS: Dict[str, RunChecker] = {}


def cycle_checker(name: str) -> Callable[[CycleChecker], CycleChecker]:
    """Register a per-cycle invariant checker under ``name``."""
    def register(fn: CycleChecker) -> CycleChecker:
        CYCLE_CHECKERS[name] = fn
        return fn
    return register


def run_checker(name: str) -> Callable[[RunChecker], RunChecker]:
    """Register a per-run invariant checker under ``name``."""
    def register(fn: RunChecker) -> RunChecker:
        RUN_CHECKERS[name] = fn
        return fn
    return register


@cycle_checker("filter-funnel")
def filter_funnel(result: CycleResult) -> List[str]:
    """The five filters only ever narrow the survivor set.

    ``extracted >= after_incomplete >= ... >= after_persistence >= 0``
    — Persistence may *re-inject* an AS's candidates, but those are a
    subset of the TransitDiversity survivors, so even the re-injection
    path keeps the funnel monotone.
    """
    stats = result.filter_stats
    counts = [getattr(stats, stage) for stage in _FUNNEL_STAGES]
    problems = []
    if counts[-1] < 0:
        problems.append(
            f"negative survivor count: after_persistence="
            f"{counts[-1]}")
    for left, right in zip(_FUNNEL_STAGES, _FUNNEL_STAGES[1:]):
        if getattr(stats, left) < getattr(stats, right):
            problems.append(
                f"filter funnel widened: {left}="
                f"{getattr(stats, left)} < {right}="
                f"{getattr(stats, right)}")
    survivors = len(result.iotps)
    if survivors > stats.after_persistence:
        problems.append(
            f"{survivors} IOTPs built from only "
            f"{stats.after_persistence} persistent LSPs")
    return problems


@cycle_checker("classification-reconciliation")
def classification_reconciliation(result: CycleResult) -> List[str]:
    """``shares()`` and ``counts()`` must describe the same verdicts.

    Counts sum to ``len(verdicts)`` exactly; shares sum to 1 ± epsilon
    (all zero for an empty cycle) and each share equals its count over
    the total.
    """
    classification = result.classification
    counts = classification.counts()
    shares = classification.shares()
    total = len(classification.verdicts)
    problems = []
    if sum(counts.values()) != total:
        problems.append(
            f"class counts sum to {sum(counts.values())}, but there "
            f"are {total} verdicts")
    share_sum = sum(shares.values())
    if total == 0:
        if share_sum != 0.0:
            problems.append(
                f"empty cycle reports nonzero shares (sum "
                f"{share_sum})")
        return problems
    if abs(share_sum - 1.0) > SHARE_EPSILON:
        problems.append(
            f"class shares sum to {share_sum!r}, not 1 "
            f"(±{SHARE_EPSILON})")
    for tunnel_class, count in counts.items():
        if count < 0:
            problems.append(
                f"negative count for {tunnel_class.value}: {count}")
            continue
        expected = count / total
        if abs(shares[tunnel_class] - expected) > SHARE_EPSILON:
            problems.append(
                f"share of {tunnel_class.value} is "
                f"{shares[tunnel_class]!r}, expected {count}/{total}")
    return problems


@cycle_checker("filter-drop-counters")
def filter_drop_counters(result: CycleResult) -> List[str]:
    """``lsps_dropped_total`` deltas reconcile with FilterStats.

    The filters increment one labelled counter per stage; the cycle's
    metrics delta must show exactly the survivor difference of each
    stage (absent label = zero drops).
    """
    stats = result.filter_stats
    funnel = [getattr(stats, stage) for stage in _FUNNEL_STAGES]
    expected = {name: funnel[index] - funnel[index + 1]
                for index, name in enumerate(_DROP_FILTERS)}
    recorded = {name: 0.0 for name in _DROP_FILTERS}
    payload = result.metrics.get("lsps_dropped_total")
    if not payload and not any(expected.values()):
        return []
    for entry in (payload or {}).get("values", []):
        name = entry.get("labels", {}).get("filter")
        if name in recorded:
            recorded[name] += entry["value"]
    return [
        f"drop counter mismatch for {name}: counter says "
        f"{recorded[name]:g}, funnel says {expected[name]}"
        for name in _DROP_FILTERS
        if recorded[name] != expected[name]
    ]


@run_checker("cache-accounting")
def cache_accounting(run: Any, delta: Mapping[str, Any]) -> List[str]:
    """Every probe resolves its route exactly once: hit or miss.

    Over a memoized run, ``route_cache_hits + route_cache_misses``
    equals ``sim_traces_total`` (DESIGN §8); an unmemoized run keeps
    both counters at zero.  Negative counter deltas are impossible by
    construction and flagged unconditionally.
    """
    traces = _delta_total(delta, "sim_traces_total")
    hits = _delta_total(delta, "route_cache_hits_total")
    misses = _delta_total(delta, "route_cache_misses_total")
    problems = []
    for name in ("route_cache_hits_total", "route_cache_misses_total",
                 "hop_cache_hits_total", "hop_cache_misses_total",
                 "quoted_stack_cache_hits_total",
                 "quoted_stack_cache_misses_total"):
        if _delta_total(delta, name) < 0:
            problems.append(
                f"cache counter went backwards: {name}="
                f"{_delta_total(delta, name):g}")
    if hits + misses and hits + misses != traces:
        problems.append(
            f"route cache accounted for {hits + misses:g} probes, "
            f"but {traces:g} traces were simulated")
    return problems


@run_checker("state-roundtrip")
def state_roundtrip(run: Any, delta: Mapping[str, Any]) -> List[str]:
    """``capture_state -> restore_state -> capture_state`` is a fixed
    point: re-capturing a just-restored internet must reproduce the
    snapshot byte-for-byte (the warm-start contract, DESIGN §10)."""
    internet = run.simulator.internet
    first = internet.capture_state()
    internet.restore_state(first)
    second = internet.capture_state()
    if pickle.dumps(first) != pickle.dumps(second):
        return ["capture -> restore -> capture is not idempotent: "
                "re-captured snapshot differs from the original"]
    return []


def _delta_total(delta: Mapping[str, Any], name: str) -> float:
    """Summed value of one metric across a registry delta's labels."""
    payload = delta.get(name)
    if not payload:
        return 0.0
    return sum(entry["value"] for entry in payload["values"])


def check_cycle(result: CycleResult) -> List[Violation]:
    """Run every cycle checker over one result."""
    return [
        Violation(checker=name, cycle=result.cycle, message=message)
        for name, checker in CYCLE_CHECKERS.items()
        for message in checker(result)
    ]


def check_run(run: Any, delta: Mapping[str, Any]) -> List[Violation]:
    """Run every run checker over a finished study."""
    return [
        Violation(checker=name, message=message)
        for name, checker in RUN_CHECKERS.items()
        for message in checker(run, delta)
    ]


def audit_run(run: Any, delta: Mapping[str, Any]) -> List[Violation]:
    """The full invariant sweep: every cycle, then the run itself.

    Emits one ``verify.violation`` event and bumps
    ``verify_violations_total{checker=}`` per finding, so a broken
    invariant shows up in the flight recorder and ``repro report``
    even when the caller ignores the return value.
    """
    violations: List[Violation] = []
    for result in run.results:
        violations.extend(check_cycle(result))
    violations.extend(check_run(run, delta))
    for violation in violations:
        _VIOLATIONS.inc(checker=violation.checker)
        emit("verify.violation", checker=violation.checker,
             message=violation.message,
             **({"cycle": violation.cycle}
                if violation.cycle is not None else {}))
    return violations
