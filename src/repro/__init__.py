"""repro — reproduction of "MPLS Under the Microscope" (IMC 2015).

The package exposes two halves:

* the paper's contribution: the **LPR** (Label Pattern Recognition)
  pipeline in :mod:`repro.core`, which classifies MPLS transit tunnels
  observed in traceroute data into Mono-LSP / Multi-FEC / ECMP Mono-FEC /
  Unclassified;
* the substrates it runs on: an MPLS + IGP + BGP network simulator with a
  Paris-traceroute engine (:mod:`repro.sim`), addressing utilities
  (:mod:`repro.net`), and a warts-like trace archive codec
  (:mod:`repro.warts`).
"""

from .traces import StopReason, Trace, TraceHop

__version__ = "1.0.0"

__all__ = ["StopReason", "Trace", "TraceHop", "__version__"]
