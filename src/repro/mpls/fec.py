"""Forwarding Equivalence Classes.

A FEC is "a set of packets a given hop forwards to the same next hop, via
the same interface, with the same treatment" (paper §1).  Two concrete FEC
kinds matter here:

* :class:`PrefixFec` — LDP binds labels per destination prefix (for transit,
  the loopback /32 of the exit border router, i.e. the BGP next-hop).  All
  traffic leaving the AS through that border shares one FEC, which is why
  LDP shows a *single* label per (router, egress) and LPR reads equal labels
  at common IPs as Mono-FEC.
* :class:`TunnelFec` — RSVP-TE allocates labels per LSP *session*.  Distinct
  tunnels between the same LER pair get distinct labels at every hop, the
  Multi-FEC signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.ip import Prefix


@dataclass(frozen=True)
class PrefixFec:
    """An LDP FEC: a destination prefix (usually an egress loopback /32)."""

    prefix: Prefix

    def __str__(self) -> str:
        return f"ldp:{self.prefix}"


@dataclass(frozen=True)
class TunnelFec:
    """An RSVP-TE FEC: one traffic-engineering tunnel session.

    ``instance`` distinguishes successive signalling generations of the
    same tunnel: a head-end re-optimization bumps it, and every hop then
    allocates a *fresh* label (the mechanism behind Fig 17's sawtooth).
    """

    ingress: int
    egress: int
    tunnel_id: int
    instance: int = 0

    def reoptimized(self) -> "TunnelFec":
        """The FEC of the next signalling generation of this tunnel."""
        return TunnelFec(self.ingress, self.egress, self.tunnel_id,
                         self.instance + 1)

    def session_key(self) -> tuple:
        """Identity of the tunnel irrespective of signalling generation."""
        return (self.ingress, self.egress, self.tunnel_id)

    def __str__(self) -> str:
        return (
            f"te:{self.ingress}->{self.egress}#{self.tunnel_id}"
            f".{self.instance}"
        )
