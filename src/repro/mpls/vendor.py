"""Router vendor profiles.

The paper (§2.2) notes that parts of label-distribution behaviour are
vendor-specific rather than standardized: the dynamic label range, whether
LDP binds labels for every IGP prefix or only for loopbacks, default PHP
signalling, ttl-propagate defaults, and whether RSVP-TE head-ends
periodically re-optimize their LSPs (a Juniper trait the paper exploits in
§4.5 / Fig 17).  These profiles drive the simulator so that the observable
label patterns have the same vendor texture as the CAIDA data.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LdpAllocationPolicy(Enum):
    """Which prefixes an LSR allocates LDP labels for."""

    ALL_PREFIXES = "all-prefixes"   # Cisco default
    LOOPBACKS_ONLY = "loopbacks"    # Juniper default


@dataclass(frozen=True)
class VendorProfile:
    """Static configuration profile for one router vendor.

    Attributes:
        name: human-readable vendor name.
        label_min: lowest dynamically assignable label value.
        label_max: highest dynamically assignable label value.
        ldp_policy: which prefixes LDP binds labels for.
        php_default: whether penultimate hop popping is signalled by
            default (advertising implicit-null for directly attached FECs).
        ttl_propagate_default: whether the ingress copies IP-TTL into the
            LSE-TTL by default (required for tunnels to be *explicit*).
        rfc4950: whether ICMP time-exceeded quotes the received label stack.
        reoptimize_interval: seconds between RSVP-TE head-end
            re-optimizations, or 0 when re-optimization is disabled.  The
            periodic re-signalling allocates fresh labels at every hop and
            produces the label sawtooth of Fig 17.
    """

    name: str
    label_min: int
    label_max: int
    ldp_policy: LdpAllocationPolicy
    php_default: bool
    ttl_propagate_default: bool
    rfc4950: bool
    reoptimize_interval: int

    def label_space(self) -> int:
        """Number of dynamically assignable labels."""
        return self.label_max - self.label_min + 1


# Label ranges follow shipping defaults: IOS reserves 16–15999 for static
# use and allocates dynamic labels from 16000 up; Junos allocates LDP/RSVP
# labels from 299776 up (which is why Fig 17 sweeps the 300k–800k range).
CISCO = VendorProfile(
    name="cisco",
    label_min=16_000,
    label_max=100_000,
    ldp_policy=LdpAllocationPolicy.ALL_PREFIXES,
    php_default=True,
    ttl_propagate_default=True,
    rfc4950=True,
    reoptimize_interval=0,
)

JUNIPER = VendorProfile(
    name="juniper",
    label_min=300_000,
    label_max=800_000,
    ldp_policy=LdpAllocationPolicy.LOOPBACKS_ONLY,
    php_default=True,
    ttl_propagate_default=True,
    rfc4950=True,
    reoptimize_interval=3600,
)

# A legacy profile for routers that neither propagate TTL nor implement
# RFC 4950 — their tunnels are invisible/implicit and exercise the
# extraction layer's negative paths.
LEGACY = VendorProfile(
    name="legacy",
    label_min=16,
    label_max=1_048_575,
    ldp_policy=LdpAllocationPolicy.ALL_PREFIXES,
    php_default=False,
    ttl_propagate_default=False,
    rfc4950=False,
    reoptimize_interval=0,
)

PROFILES = {profile.name: profile for profile in (CISCO, JUNIPER, LEGACY)}


def get_profile(name: str) -> VendorProfile:
    """Look up a vendor profile by name.

    >>> get_profile("cisco").ldp_policy
    <LdpAllocationPolicy.ALL_PREFIXES: 'all-prefixes'>
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown vendor {name!r}; known: {sorted(PROFILES)}"
        ) from None
