"""Label Distribution Protocol engine.

LDP (RFC 5036) allocates labels *downstream*: each router picks one local
label per FEC and advertises that same label to all of its neighbors
(router-scoped labels, paper §3.2).  LSPs therefore follow the IGP
shortest-path DAG towards the FEC — including all its ECMP branches — and
any two LSPs crossing the same router carry the *same* label there.  That
invariant is precisely what LPR's Mono-FEC class detects.

When the egress advertises implicit-null (PHP), the penultimate router pops
the stack instead of swapping, so the egress LER never shows a label in
traceroute output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..igp.spf import SpfTable
from ..igp.topology import Link, Topology
from ..net.ip import Prefix
from .fec import PrefixFec
from .lfib import LabelManager, LfibAction, LfibEntry
from .vendor import LdpAllocationPolicy, get_profile


class LdpEngine:
    """Builds LDP state (labels + LFIB entries) for one AS.

    The engine is driven FEC by FEC: :meth:`establish_transit_fecs` sets up
    an LSP-tree towards the loopback of every border router, the standard
    BGP-transit configuration (§2.2.1).
    """

    def __init__(self, topology: Topology, spf: SpfTable,
                 labels: LabelManager):
        self.topology = topology
        self.spf = spf
        self.labels = labels
        self._established: Dict[PrefixFec, int] = {}  # FEC -> egress router

    @property
    def established_fecs(self) -> List[PrefixFec]:
        """FECs established so far, in establishment order."""
        return list(self._established)

    def egress_of(self, fec: PrefixFec) -> Optional[int]:
        """The egress router of an established FEC."""
        return self._established.get(fec)

    def capture_established(self) -> Tuple[Tuple[PrefixFec, int], ...]:
        """Picklable snapshot of the established-FEC map, in
        establishment order (FECs are frozen dataclasses)."""
        return tuple(self._established.items())

    def restore_established(
            self, state: Tuple[Tuple[PrefixFec, int], ...]) -> None:
        """Install a :meth:`capture_established` snapshot.

        The labels and LFIB entries the FECs refer to are restored
        separately through the :class:`LabelManager`; re-establishing a
        restored FEC is then the same no-op it would be on the
        original engine."""
        self._established = dict(state)

    def uses_php(self, egress_router: int) -> bool:
        """Whether the egress signals PHP (vendor default)."""
        vendor = self.topology.routers[egress_router].vendor
        return get_profile(vendor).php_default

    def advertised_prefixes(self, router_id: int,
                            igp_prefixes: Iterable[Prefix]) -> List[Prefix]:
        """Prefixes a router would bind LDP labels for, per vendor policy.

        Cisco's default binds every IGP prefix; Juniper's binds loopbacks
        (/32s) only.  Transit LSPs target loopbacks either way.
        """
        policy = get_profile(self.topology.routers[router_id].vendor
                             ).ldp_policy
        if policy is LdpAllocationPolicy.ALL_PREFIXES:
            return list(igp_prefixes)
        return [p for p in igp_prefixes if p.length == 32]

    def establish_fec(self, egress_router: int) -> PrefixFec:
        """Build the LSP-tree towards one egress router's loopback.

        Every router with IGP reachability allocates a label for the FEC
        and installs one LFIB choice per ECMP successor.  Idempotent.
        """
        egress = self.topology.routers[egress_router]
        fec = PrefixFec(Prefix(egress.loopback, 32))
        if fec in self._established:
            return fec

        dag = self.spf.to_destination(egress_router)
        php = self.uses_php(egress_router)

        # Pass 1: every reachable router allocates its local label.  Sorted
        # iteration keeps allocation deterministic across runs.
        members = sorted(
            router_id for router_id in self.topology.routers
            if dag.reachable(router_id)
        )
        for router_id in members:
            if router_id == egress_router and php:
                # Implicit-null: the egress asks its neighbors to pop.
                continue
            self.labels.allocate_for(router_id, fec)

        # Pass 2: install forwarding entries along the DAG.
        for router_id in members:
            if router_id == egress_router:
                self._install_egress(router_id, fec, php)
                continue
            in_label = self.labels.lfib(router_id).label_for(fec)
            for next_hop, link in dag.next_hops(router_id):
                entry = self._entry_towards(next_hop, link, fec,
                                            egress_router, php)
                self.labels.lfib(router_id).add_entry(in_label, entry)

        self._established[fec] = egress_router
        return fec

    def _install_egress(self, router_id: int, fec: PrefixFec,
                        php: bool) -> None:
        if php:
            return  # penultimate routers already popped; nothing arrives
        in_label = self.labels.lfib(router_id).label_for(fec)
        self.labels.lfib(router_id).add_entry(
            in_label, LfibEntry(LfibAction.DELIVER)
        )

    def _entry_towards(self, next_hop: int, link: Link, fec: PrefixFec,
                       egress_router: int, php: bool) -> LfibEntry:
        if next_hop == egress_router and php:
            return LfibEntry(LfibAction.POP, next_hop=next_hop,
                             link_id=link.link_id)
        out_label = self.labels.lfib(next_hop).label_for(fec)
        return LfibEntry(LfibAction.SWAP, out_label=out_label,
                         next_hop=next_hop, link_id=link.link_id)

    def establish_transit_fecs(self) -> List[PrefixFec]:
        """Establish the full mesh of LSP-trees to every border loopback."""
        return [
            self.establish_fec(router.router_id)
            for router in sorted(self.topology.border_routers(),
                                 key=lambda r: r.router_id)
        ]

    def ingress_push_choices(
        self, ingress_router: int, fec: PrefixFec
    ) -> List[Tuple[Optional[int], int, Link]]:
        """Label-push options at an ingress LER for a FEC.

        Returns one ``(label_to_push, next_hop, link)`` tuple per ECMP
        successor.  ``label_to_push`` is None when the next hop is the
        PHP egress itself (single-hop LSP: nothing to push).
        """
        egress_router = self._established.get(fec)
        if egress_router is None:
            raise KeyError(f"FEC not established: {fec}")
        if ingress_router == egress_router:
            return []
        dag = self.spf.to_destination(egress_router)
        php = self.uses_php(egress_router)
        choices: List[Tuple[Optional[int], int, Link]] = []
        for next_hop, link in dag.next_hops(ingress_router):
            if next_hop == egress_router and php:
                choices.append((None, next_hop, link))
            else:
                label = self.labels.lfib(next_hop).label_for(fec)
                choices.append((label, next_hop, link))
        return choices
