"""MPLS substrate: wire format, FECs, label allocation, LDP, RSVP-TE."""

from .lse import (
    IMPLICIT_NULL,
    IPV4_EXPLICIT_NULL,
    LabelError,
    LabelStack,
    LabelStackEntry,
    MAX_LABEL,
)
from .fec import PrefixFec, TunnelFec
from .lfib import (
    LabelAllocator,
    LabelAllocatorError,
    LabelManager,
    Lfib,
    LfibAction,
    LfibEntry,
)
from .ldp import LdpEngine
from .rsvpte import RsvpError, RsvpTeEngine, TeSession
from .srte import (
    DEFAULT_SRGB_BASE,
    SegmentRoutingEngine,
    SrError,
    SrPolicy,
)
from .vendor import (
    CISCO,
    JUNIPER,
    LEGACY,
    LdpAllocationPolicy,
    VendorProfile,
    get_profile,
)

__all__ = [
    "IMPLICIT_NULL",
    "IPV4_EXPLICIT_NULL",
    "LabelError",
    "LabelStack",
    "LabelStackEntry",
    "MAX_LABEL",
    "PrefixFec",
    "TunnelFec",
    "LabelAllocator",
    "LabelAllocatorError",
    "LabelManager",
    "Lfib",
    "LfibAction",
    "LfibEntry",
    "LdpEngine",
    "RsvpError",
    "RsvpTeEngine",
    "TeSession",
    "DEFAULT_SRGB_BASE",
    "SegmentRoutingEngine",
    "SrError",
    "SrPolicy",
    "CISCO",
    "JUNIPER",
    "LEGACY",
    "LdpAllocationPolicy",
    "VendorProfile",
    "get_profile",
]
