"""Segment Routing over MPLS (SR-MPLS) — the paper's §2.1 outlook.

Segment routing steers packets by stacking *node segment* labels: the
ingress pushes one label per waypoint (plus the egress), each label
being a globally-indexed SID from the AS's SRGB (Segment Routing Global
Block).  Packets follow IGP shortest paths towards the top label's node;
with penultimate-hop popping the label is removed one hop before each
waypoint, exposing the next segment.

Observable consequences (what LPR sees) differ from both LDP and
RSVP-TE:

* traceroute quotes *multi-entry* label stacks that shrink along the
  path;
* SIDs are global to the AS — the same label value appears on every
  LSR of a segment — yet two policies with different waypoint lists
  show different top labels at shared routers, the Multi-FEC signature.

The SRGB is configurable per deployment; the default here is placed
above the Juniper dynamic range so SID labels never collide with
LDP/RSVP-TE allocations in mixed networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..igp.ecmp import flow_hash
from ..igp.spf import SpfTable
from ..igp.topology import Link, Topology

DEFAULT_SRGB_BASE = 900_000


class SrError(RuntimeError):
    """Raised on invalid segment-routing configuration."""


@dataclass(frozen=True)
class SrPolicy:
    """One SR-TE policy: steer (ingress -> egress) via waypoints."""

    ingress: int
    egress: int
    waypoints: Tuple[int, ...]
    policy_id: int = 0

    @property
    def segment_targets(self) -> Tuple[int, ...]:
        """The node-segment endpoints, in travel order."""
        return self.waypoints + (self.egress,)


# One observed step of an SR walk:
# (router entered, link used, label stack on arrival — top first).
SrStep = Tuple[int, Link, Tuple[int, ...]]


class SegmentRoutingEngine:
    """Installs SR policies and walks their data-plane behaviour."""

    def __init__(self, topology: Topology, spf: SpfTable,
                 srgb_base: int = DEFAULT_SRGB_BASE):
        self.topology = topology
        self.spf = spf
        self.srgb_base = srgb_base
        self._policies: Dict[Tuple[int, int], List[SrPolicy]] = {}

    def node_sid(self, router_id: int) -> int:
        """The global node-segment label of a router (SRGB + index)."""
        if router_id not in self.topology.routers:
            raise SrError(f"unknown router {router_id}")
        return self.srgb_base + router_id

    def router_of_sid(self, label: int) -> Optional[int]:
        """Reverse SID lookup, None when outside the SRGB."""
        router_id = label - self.srgb_base
        if router_id in self.topology.routers:
            return router_id
        return None

    def install_policy(self, ingress: int, egress: int,
                       waypoints: Sequence[int]) -> SrPolicy:
        """Register a policy; waypoints must be known routers."""
        for waypoint in waypoints:
            if waypoint not in self.topology.routers:
                raise SrError(f"unknown waypoint {waypoint}")
        if ingress == egress:
            raise SrError("ingress and egress coincide")
        existing = self._policies.setdefault((ingress, egress), [])
        policy = SrPolicy(ingress=ingress, egress=egress,
                          waypoints=tuple(waypoints),
                          policy_id=len(existing))
        existing.append(policy)
        return policy

    def remove_policies(self, ingress: int, egress: int) -> int:
        """Drop every policy of one pair; returns how many existed."""
        return len(self._policies.pop((ingress, egress), []))

    def clear(self) -> None:
        """Drop every policy."""
        self._policies.clear()

    def capture_policies(self) -> tuple:
        """Picklable snapshot of the policy table, in install order
        (policies are frozen dataclasses of plain ints)."""
        return tuple((pair, tuple(policies))
                     for pair, policies in self._policies.items())

    def restore_policies(self, state: tuple) -> None:
        """Install a :meth:`capture_policies` snapshot."""
        self._policies = {pair: list(policies)
                          for pair, policies in state}

    @property
    def policy_count(self) -> int:
        """Total installed policies."""
        return sum(len(p) for p in self._policies.values())

    def policies_between(self, ingress: int, egress: int
                         ) -> List[SrPolicy]:
        """The policies of one ordered pair."""
        return list(self._policies.get((ingress, egress), []))

    def policy_for(self, ingress: int, egress: int,
                   selector: int) -> Optional[SrPolicy]:
        """Deterministically map a destination selector to a policy."""
        policies = self._policies.get((ingress, egress))
        if not policies:
            return None
        return policies[flow_hash(selector, ingress, egress)
                        % len(policies)]

    # -- data plane -----------------------------------------------------------

    def initial_stack(self, policy: SrPolicy) -> Tuple[int, ...]:
        """The label stack the ingress pushes (top first)."""
        return tuple(self.node_sid(target)
                     for target in policy.segment_targets)

    def walk(self, policy: SrPolicy, flow_digest: int) -> List[SrStep]:
        """The hop-by-hop journey of one flow riding a policy.

        Each step records the label stack *as received* by that router.
        Node-SID PHP applies per segment: the penultimate hop of each
        segment pops, so a waypoint receives the next segment's SID on
        top and the egress receives a bare IP packet.
        """
        steps: List[SrStep] = []
        stack = list(self.initial_stack(policy))
        current = policy.ingress
        for target in policy.segment_targets:
            if current == target:
                # Degenerate segment (waypoint already reached): the
                # ingress would not have pushed it; skip.
                stack.pop(0)
                continue
            dag = self.spf.to_destination(target)
            if not dag.reachable(current):
                raise SrError(
                    f"segment target {target} unreachable from {current}"
                )
            paths = dag.all_paths(current, limit=64)
            path = paths[flow_hash(flow_digest, current, target)
                         % len(paths)]
            for router, link in path:
                if router == target:
                    stack.pop(0)  # PHP: popped by the previous hop
                steps.append((router, link, tuple(stack)))
            current = target
        return steps
