"""Label allocation and the Label Forwarding Information Base.

One :class:`LabelAllocator` exists per router.  It hands out labels
sequentially from the router's vendor-specific dynamic range and wraps
around when the range is exhausted — the behaviour the paper observes in
Fig 17 ("when a label reaches its maximum, it starts again from the
minimum").  Sequential allocation also means that a busier LSR (more LSPs
signalled through it) advances its counter faster, reproducing the paper's
observation that LSR2's sawtooth evolves faster than LSR1's.

The :class:`Lfib` stores, per router, the mapping from an incoming label to
its forwarding actions, plus the ingress FTN (FEC-to-NHLFE) map from FEC to
label bindings.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Hashable, List, Optional, Tuple

from .vendor import VendorProfile, get_profile

# Special binding value meaning "pop the stack before forwarding to me"
# (implicit null, RFC 3032 label 3): the PHP signal.
IMPLICIT_NULL_BINDING = -3


class LabelAllocatorError(RuntimeError):
    """Raised when a router's label space is exhausted mid-rotation."""


class LabelAllocator:
    """Sequential per-router label allocator with wrap-around.

    Labels currently in use are never handed out twice; freed labels
    become available again after the counter wraps past them.
    """

    def __init__(self, profile: VendorProfile, start_offset: int = 0):
        """``start_offset`` shifts the first handed-out label.

        Real routers have years of allocation history behind them, so the
        counters of two distinct LSRs are effectively desynchronized.  The
        offset models that: it makes cross-router label collisions as
        unlikely as in the wild, which the paper's Parallel-Links
        inference (same label on distinct IPs => alias) depends on.
        """
        self.profile = profile
        self._next = profile.label_min + start_offset % profile.label_space()
        self._in_use: set = set()
        self.allocated_total = 0

    def allocate(self) -> int:
        """Return a fresh label from the dynamic range."""
        space = self.profile.label_space()
        if len(self._in_use) >= space:
            raise LabelAllocatorError(
                f"label space exhausted ({space} labels in use)"
            )
        label = self._next
        for _ in range(space):
            if label > self.profile.label_max:
                label = self.profile.label_min
            if label not in self._in_use:
                break
            label += 1
        self._in_use.add(label)
        self._next = label + 1
        if self._next > self.profile.label_max:
            self._next = self.profile.label_min
        self.allocated_total += 1
        return label

    def release(self, label: int) -> None:
        """Return a label to the pool (tunnel teardown)."""
        self._in_use.discard(label)

    def advance(self, count: int) -> None:
        """Apply ``count`` allocate()/release() pairs in closed form.

        Each pair hands out the next free label and immediately frees
        it again, so the in-use set is invariant and the only state
        that moves is ``_next`` (plus the ``allocated_total`` tally).
        The free labels are visited in cyclic ascending order starting
        at ``_next``, which makes the walk periodic with period
        ``m = label_space - len(_in_use)``: after ``count`` pairs the
        last handed-out label is the k-th free label cyclically above
        ``_next`` where ``k = (count - 1) % m + 1``, and ``_next``
        lands one past it (wrapping past ``label_max``).  That label is
        found by bisection over the sorted in-use set instead of
        walking, so a million-pair churn tick costs O(u log space)
        for u labels in use — the equivalence to the literal loop is
        asserted per vendor profile (including wrap-around) in
        ``tests/test_statestore.py``.
        """
        if count <= 0:
            return
        profile = self.profile
        space = profile.label_space()
        free = space - len(self._in_use)
        if free <= 0:
            raise LabelAllocatorError(
                f"label space exhausted ({space} labels in use)"
            )
        k = (count - 1) % free + 1
        in_use = sorted(self._in_use)
        # Free labels split into the high arc [_next, label_max] and
        # the wrapped low arc [label_min, _next - 1], visited in that
        # order.
        label = _kth_free(in_use, self._next, profile.label_max, k)
        if label is None:
            high_free = ((profile.label_max - self._next + 1)
                         - (len(in_use)
                            - bisect_left(in_use, self._next)))
            label = _kth_free(in_use, profile.label_min,
                              self._next - 1, k - high_free)
        self._next = (profile.label_min if label >= profile.label_max
                      else label + 1)
        self.allocated_total += count

    @property
    def in_use(self) -> int:
        """Number of labels currently allocated."""
        return len(self._in_use)

    def capture(self) -> Tuple[int, int, Tuple[int, ...]]:
        """Picklable snapshot: (next, allocated_total, sorted in-use).

        The in-use set is canonicalised to a sorted tuple so equal
        allocator states always capture to equal bytes (a set's pickle
        leaks its insertion history).
        """
        return (self._next, self.allocated_total,
                tuple(sorted(self._in_use)))

    def restore(self, state: Tuple[int, int, Tuple[int, ...]]) -> None:
        """Install a :meth:`capture` snapshot (profile must match)."""
        self._next, self.allocated_total, in_use = state
        self._in_use = set(in_use)


def _kth_free(in_use: List[int], lo: int, hi: int,
              k: int) -> Optional[int]:
    """The k-th label of ``[lo, hi]`` absent from sorted ``in_use``.

    Returns None when the range holds fewer than ``k`` free labels.
    Binary search on the monotone free-count prefix function, with each
    probe answered by one bisect into the in-use list.
    """
    if lo > hi or k <= 0:
        return None
    left = bisect_left(in_use, lo)

    def free_upto(label: int) -> int:
        return (label - lo + 1) - (bisect_right(in_use, label) - left)

    if free_upto(hi) < k:
        return None
    low, high = lo, hi
    while low < high:
        mid = (low + high) // 2
        if free_upto(mid) >= k:
            high = mid
        else:
            low = mid + 1
    return low


def _router_offset(router_id: int) -> int:
    """Deterministic allocator start offset for a router.

    A splitmix-style mix of the router id; spreads starting labels across
    the vendor range so that distinct routers rarely propose equal labels.
    """
    value = (router_id + 0x9E3779B9) & 0xFFFFFFFF
    value = (value ^ (value >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    value = (value ^ (value >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    return value ^ (value >> 16)


class LfibAction(Enum):
    """What a router does to the top label of a matching packet."""

    SWAP = "swap"
    POP = "pop"          # PHP: remove the stack, forward as plain IP
    DELIVER = "deliver"  # egress: pop and process locally / IP-forward


@dataclass(frozen=True)
class LfibEntry:
    """One forwarding choice for an incoming label.

    Attributes:
        action: swap/pop/deliver.
        out_label: label to swap in (None for POP/DELIVER).
        next_hop: next-hop router id (None for DELIVER).
        link_id: link used to reach the next hop (None for DELIVER).
    """

    action: LfibAction
    out_label: Optional[int] = None
    next_hop: Optional[int] = None
    link_id: Optional[int] = None


class Lfib:
    """Per-router label forwarding table with ECMP-capable entries.

    ``entries[in_label]`` is the list of equal-cost forwarding choices for
    that label; the data plane picks one with the flow hash, mirroring how
    LDP LSPs inherit IGP ECMP.
    """

    def __init__(self, router_id: int):
        self.router_id = router_id
        self.entries: Dict[int, List[LfibEntry]] = {}
        self._label_of_fec: Dict[Hashable, int] = {}

    def bind(self, fec: Hashable, label: int) -> None:
        """Record the local label this router allocated for a FEC."""
        self._label_of_fec[fec] = label
        self.entries.setdefault(label, [])

    def label_for(self, fec: Hashable) -> Optional[int]:
        """The local label bound to a FEC, or None if unbound."""
        return self._label_of_fec.get(fec)

    def unbind(self, fec: Hashable) -> Optional[int]:
        """Forget a FEC binding; returns the label it used, if any."""
        label = self._label_of_fec.pop(fec, None)
        if label is not None:
            self.entries.pop(label, None)
        return label

    def add_entry(self, in_label: int, entry: LfibEntry) -> None:
        """Append one forwarding choice for an incoming label."""
        self.entries.setdefault(in_label, []).append(entry)

    def choices(self, in_label: int) -> List[LfibEntry]:
        """All equal-cost choices for an incoming label (may be empty)."""
        return self.entries.get(in_label, [])

    def capture(self) -> Tuple[Dict[int, Tuple[LfibEntry, ...]],
                               Dict[Hashable, int]]:
        """Picklable snapshot of the entries and the FTN map.

        Entries are frozen dataclasses, so tuples of them share safely;
        dict insertion order (allocation order) is preserved.
        """
        return ({label: tuple(choices)
                 for label, choices in self.entries.items()},
                dict(self._label_of_fec))

    def restore(self, state: Tuple[Dict[int, Tuple[LfibEntry, ...]],
                                   Dict[Hashable, int]]) -> None:
        """Install a :meth:`capture` snapshot."""
        entries, label_of_fec = state
        self.entries = {label: list(choices)
                        for label, choices in entries.items()}
        self._label_of_fec = dict(label_of_fec)

    def __len__(self) -> int:
        return len(self.entries)


class LabelManager:
    """Owns the allocator and LFIB of every router in one AS."""

    def __init__(self, vendor_of: Dict[int, str], desynchronize: bool = True):
        """``vendor_of`` maps router id -> vendor profile name.

        With ``desynchronize`` (the default) each router's allocator starts
        at a deterministic per-router offset, modelling independent
        allocation histories; disable it only in tests that assert exact
        label values.
        """
        self.allocators: Dict[int, LabelAllocator] = {
            router_id: LabelAllocator(
                get_profile(vendor),
                start_offset=(_router_offset(router_id)
                              if desynchronize else 0),
            )
            for router_id, vendor in vendor_of.items()
        }
        self.lfibs: Dict[int, Lfib] = {
            router_id: Lfib(router_id) for router_id in vendor_of
        }

    def allocator(self, router_id: int) -> LabelAllocator:
        """The label allocator of one router."""
        return self.allocators[router_id]

    def lfib(self, router_id: int) -> Lfib:
        """The LFIB of one router."""
        return self.lfibs[router_id]

    def allocate_for(self, router_id: int, fec: Hashable) -> int:
        """Allocate a label at a router and bind it to a FEC."""
        lfib = self.lfibs[router_id]
        existing = lfib.label_for(fec)
        if existing is not None:
            return existing
        label = self.allocators[router_id].allocate()
        lfib.bind(fec, label)
        return label

    def release_for(self, router_id: int, fec: Hashable) -> None:
        """Unbind a FEC at a router and return its label to the pool."""
        label = self.lfibs[router_id].unbind(fec)
        if label is not None:
            self.allocators[router_id].release(label)

    def capture(self) -> Dict[int, Tuple[tuple, tuple]]:
        """Per-router (allocator, LFIB) snapshots, sorted by router."""
        return {
            router_id: (self.allocators[router_id].capture(),
                        self.lfibs[router_id].capture())
            for router_id in sorted(self.allocators)
        }

    def restore(self, state: Dict[int, Tuple[tuple, tuple]]) -> None:
        """Install :meth:`capture` snapshots onto this manager's
        routers (the router set must match — same topology)."""
        if set(state) != set(self.allocators):
            raise ValueError("label state router set does not match "
                             "this topology")
        for router_id, (allocator_state, lfib_state) in state.items():
            self.allocators[router_id].restore(allocator_state)
            self.lfibs[router_id].restore(lfib_state)
