"""MPLS label stack entry (LSE) wire format — RFC 3032.

An LSE is the 32-bit word the paper's Figure 1 depicts::

     0                   19 20  22 23 24        31
    +----------------------+------+--+-----------+
    |        Label         |  TC  |S |  LSE-TTL  |
    +----------------------+------+--+-----------+

The simulator pushes/swaps/pops these on packets, and the traceroute engine
quotes them in ICMP time-exceeded messages per RFC 4950, exactly as real
routers do.  LPR then reads them back.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Sequence, Tuple

MAX_LABEL = (1 << 20) - 1
MAX_TC = (1 << 3) - 1
MAX_TTL = (1 << 8) - 1

# Reserved label values (RFC 3032 §2.1).
IPV4_EXPLICIT_NULL = 0
ROUTER_ALERT = 1
IPV6_EXPLICIT_NULL = 2
IMPLICIT_NULL = 3
RESERVED_LABEL_MAX = 15


class LabelError(ValueError):
    """Raised when an LSE field is out of range or a stack is malformed."""


class LabelStackEntry:
    """One 32-bit MPLS label stack entry."""

    __slots__ = ("label", "tc", "bottom", "ttl")

    def __init__(self, label: int, tc: int = 0, bottom: bool = False,
                 ttl: int = 255):
        if not 0 <= label <= MAX_LABEL:
            raise LabelError(f"label out of range: {label}")
        if not 0 <= tc <= MAX_TC:
            raise LabelError(f"traffic class out of range: {tc}")
        if not 0 <= ttl <= MAX_TTL:
            raise LabelError(f"LSE-TTL out of range: {ttl}")
        self.label = label
        self.tc = tc
        self.bottom = bottom
        self.ttl = ttl

    def encode(self) -> int:
        """Pack the entry into its 32-bit wire representation."""
        return (
            (self.label << 12)
            | (self.tc << 9)
            | (int(self.bottom) << 8)
            | self.ttl
        )

    @classmethod
    def decode(cls, word: int) -> "LabelStackEntry":
        """Unpack a 32-bit wire word into an entry."""
        if not 0 <= word <= 0xFFFFFFFF:
            raise LabelError(f"LSE word out of range: {word}")
        return cls(
            label=(word >> 12) & MAX_LABEL,
            tc=(word >> 9) & MAX_TC,
            bottom=bool((word >> 8) & 1),
            ttl=word & MAX_TTL,
        )

    def to_bytes(self) -> bytes:
        """Network-byte-order serialization (what RFC 4950 quotes)."""
        return struct.pack("!I", self.encode())

    @classmethod
    def from_bytes(cls, data: bytes) -> "LabelStackEntry":
        """Parse a network-byte-order 4-byte LSE."""
        if len(data) != 4:
            raise LabelError(f"LSE must be 4 bytes, got {len(data)}")
        return cls.decode(struct.unpack("!I", data)[0])

    @property
    def is_reserved(self) -> bool:
        """True for reserved label values 0–15 (RFC 3032)."""
        return self.label <= RESERVED_LABEL_MAX

    def replace(self, **changes) -> "LabelStackEntry":
        """Return a copy with the given fields replaced."""
        fields = {
            "label": self.label,
            "tc": self.tc,
            "bottom": self.bottom,
            "ttl": self.ttl,
        }
        fields.update(changes)
        return LabelStackEntry(**fields)

    def _key(self) -> Tuple[int, int, bool, int]:
        return (self.label, self.tc, self.bottom, self.ttl)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelStackEntry):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"LabelStackEntry(label={self.label}, tc={self.tc}, "
            f"bottom={self.bottom}, ttl={self.ttl})"
        )


class LabelStack:
    """A stack of LSEs, top first, with push/swap/pop semantics.

    The stack enforces the bottom-of-stack invariant: exactly the last
    entry has its S bit set.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Sequence[LabelStackEntry] = ()):
        self._entries: List[LabelStackEntry] = list(entries)
        self._fix_bottom_bits()

    def _fix_bottom_bits(self) -> None:
        for index, entry in enumerate(self._entries):
            is_last = index == len(self._entries) - 1
            if entry.bottom != is_last:
                self._entries[index] = entry.replace(bottom=is_last)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[LabelStackEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> LabelStackEntry:
        return self._entries[index]

    @property
    def top(self) -> LabelStackEntry:
        """The outermost entry (the one routers act on)."""
        if not self._entries:
            raise LabelError("label stack is empty")
        return self._entries[0]

    def push(self, entry: LabelStackEntry) -> None:
        """Push a new outermost entry."""
        self._entries.insert(0, entry)
        self._fix_bottom_bits()

    def pop(self) -> LabelStackEntry:
        """Remove and return the outermost entry."""
        if not self._entries:
            raise LabelError("pop from empty label stack")
        entry = self._entries.pop(0)
        self._fix_bottom_bits()
        return entry

    def swap(self, label: int) -> None:
        """Replace the outermost label value, keeping TC/TTL."""
        if not self._entries:
            raise LabelError("swap on empty label stack")
        self._entries[0] = self._entries[0].replace(label=label)

    def decrement_ttl(self) -> int:
        """Decrement the top LSE-TTL and return the new value."""
        top = self.top
        if top.ttl == 0:
            raise LabelError("TTL already zero")
        new = top.replace(ttl=top.ttl - 1)
        self._entries[0] = new
        return new.ttl

    def labels(self) -> Tuple[int, ...]:
        """The label values, top first."""
        return tuple(entry.label for entry in self._entries)

    def copy(self) -> "LabelStack":
        """An independent copy of the stack."""
        return LabelStack(list(self._entries))

    def to_bytes(self) -> bytes:
        """Concatenated wire form, top entry first."""
        return b"".join(entry.to_bytes() for entry in self._entries)

    @classmethod
    def from_bytes(cls, data: bytes) -> "LabelStack":
        """Parse concatenated 4-byte LSEs; validates the S bit."""
        if len(data) % 4:
            raise LabelError(f"stack length not a multiple of 4: {len(data)}")
        entries = [
            LabelStackEntry.from_bytes(data[offset:offset + 4])
            for offset in range(0, len(data), 4)
        ]
        for index, entry in enumerate(entries):
            expected = index == len(entries) - 1
            if entry.bottom != expected:
                raise LabelError(
                    f"bottom-of-stack bit wrong at entry {index}"
                )
        return cls(entries)

    @classmethod
    def from_labels(cls, labels: Iterable[int], ttl: int = 255
                    ) -> "LabelStack":
        """Build a stack from bare label values, top first."""
        return cls([LabelStackEntry(label, ttl=ttl) for label in labels])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelStack):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"LabelStack(labels={list(self.labels())})"
