"""RSVP-TE engine: traffic-engineering tunnels with per-session labels.

RSVP-TE (RFC 3209) signals one LSP per tunnel session along an explicit
route, and *every* hop allocates a session-specific label.  Two tunnels
between the same LER pair therefore show different labels even where their
IP paths coincide — the Multi-FEC signature LPR keys on.

Head-ends may periodically *re-optimize* a tunnel (a Juniper default the
paper observes in §4.5): the LSP is re-signalled make-before-break, every
hop hands out a fresh label, and the old ones are released.  Because
allocators are sequential with wrap-around, a probed LSR shows the label
sawtooth of Fig 17, climbing faster on routers that carry more sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..igp.spf import NextHop, SpfTable
from ..igp.topology import Link, Topology
from .fec import TunnelFec
from .lfib import LabelManager, LfibAction, LfibEntry


class RsvpError(RuntimeError):
    """Raised on invalid signalling requests."""


@dataclass
class TeSession:
    """One signalled traffic-engineering LSP.

    ``route`` is the hop sequence as (router id, link) steps taken from the
    ingress; ``labels`` maps each router on the path (except the ingress,
    and except a PHP egress) to the label it allocated for this session
    instance.
    """

    fec: TunnelFec
    route: List[NextHop]
    labels: Dict[int, int] = field(default_factory=dict)

    @property
    def ingress(self) -> int:
        return self.fec.ingress

    @property
    def egress(self) -> int:
        return self.fec.egress

    @property
    def routers(self) -> List[int]:
        """Routers traversed, ingress first."""
        return [self.fec.ingress] + [router for router, _ in self.route]

    def __repr__(self) -> str:
        return f"TeSession({self.fec}, hops={len(self.route)})"


class RsvpTeEngine:
    """Signals, re-optimizes and tears down TE tunnels in one AS."""

    def __init__(self, topology: Topology, spf: SpfTable,
                 labels: LabelManager, php: bool = True):
        self.topology = topology
        self.spf = spf
        self.labels = labels
        self.php = php
        self._sessions: Dict[Tuple[int, int, int], TeSession] = {}

    @property
    def sessions(self) -> List[TeSession]:
        """Active sessions in signalling order."""
        return list(self._sessions.values())

    def session(self, ingress: int, egress: int,
                tunnel_id: int) -> Optional[TeSession]:
        """Look up an active session by its tunnel identity."""
        return self._sessions.get((ingress, egress, tunnel_id))

    def compute_route(self, ingress: int, egress: int,
                      tunnel_id: int) -> List[NextHop]:
        """Constraint-based route selection (CSPF stand-in).

        Real CSPF prunes links violating bandwidth/affinity constraints and
        then runs SPF.  With uncongested links every tunnel falls back to
        an IGP shortest path — which is exactly the paper's empirical
        finding (TE tunnels usually share one IP route).  To still allow
        deliberate spreading, tunnels round-robin over the equal-cost path
        set by tunnel id.
        """
        dag = self.spf.to_destination(egress)
        if not dag.reachable(ingress):
            raise RsvpError(f"no route from {ingress} to {egress}")
        paths = dag.all_paths(ingress, limit=64)
        if not paths:
            raise RsvpError(f"no path enumerated from {ingress} to {egress}")
        return paths[tunnel_id % len(paths)]

    def signal(self, ingress: int, egress: int, tunnel_id: int,
               explicit_route: Optional[Sequence[NextHop]] = None
               ) -> TeSession:
        """Signal (or re-signal) a tunnel; returns the active session.

        If the tunnel already exists it is re-optimized make-before-break:
        the new instance allocates fresh labels before the old instance's
        labels are released.
        """
        key = (ingress, egress, tunnel_id)
        previous = self._sessions.get(key)
        fec = (previous.fec.reoptimized() if previous is not None
               else TunnelFec(ingress, egress, tunnel_id))
        route = (list(explicit_route) if explicit_route is not None
                 else self.compute_route(ingress, egress, tunnel_id))

        session = TeSession(fec=fec, route=route)
        self._allocate_and_install(session)
        if previous is not None:
            self._release(previous)
        self._sessions[key] = session
        return session

    def reoptimize(self, ingress: int, egress: int,
                   tunnel_id: int) -> TeSession:
        """Re-signal an existing tunnel along a freshly computed route."""
        if (ingress, egress, tunnel_id) not in self._sessions:
            raise RsvpError(f"tunnel {ingress}->{egress}#{tunnel_id} "
                            f"not signalled")
        return self.signal(ingress, egress, tunnel_id)

    def reoptimize_all(self) -> List[TeSession]:
        """Re-signal every active tunnel (a head-end timer tick)."""
        return [
            self.signal(*key) for key in sorted(self._sessions)
        ]

    def teardown(self, ingress: int, egress: int, tunnel_id: int) -> None:
        """Remove a tunnel and release its labels."""
        session = self._sessions.pop((ingress, egress, tunnel_id), None)
        if session is None:
            raise RsvpError(f"tunnel {ingress}->{egress}#{tunnel_id} "
                            f"not signalled")
        self._release(session)

    def teardown_all(self) -> None:
        """Remove every tunnel (e.g. MPLS disabled on the AS)."""
        for key in sorted(self._sessions):
            self._release(self._sessions[key])
        self._sessions.clear()

    def capture_sessions(self) -> tuple:
        """Picklable snapshot of every session, in signalling order.

        Routes are flattened to ``(router id, link id)`` steps — Link
        objects belong to one Topology instance and must be re-interned
        on restore so a restored session's route is identical (not just
        equal) to the restoring process's own topology links.
        """
        return tuple(
            (key, session.fec,
             tuple((router, link.link_id)
                   for router, link in session.route),
             tuple(session.labels.items()))
            for key, session in self._sessions.items()
        )

    def restore_sessions(self, state: tuple) -> None:
        """Install a :meth:`capture_sessions` snapshot.

        Label allocations and LFIB entries are restored separately via
        the :class:`~repro.mpls.lfib.LabelManager`; this rebuilds the
        session objects against this engine's topology.
        """
        links = self.topology.links
        self._sessions = {
            key: TeSession(
                fec=fec,
                route=[(router, links[link_id])
                       for router, link_id in route],
                labels=dict(labels),
            )
            for key, fec, route, labels in state
        }

    # -- internals ---------------------------------------------------------

    def _allocate_and_install(self, session: TeSession) -> None:
        """Downstream label allocation along the explicit route."""
        route = session.route
        if not route:
            raise RsvpError("empty route")
        # Allocate labels hop by hop.  With PHP the egress allocates none
        # (it advertises implicit null to the penultimate hop).
        for router, _ in route:
            if router == session.egress and self.php:
                continue
            label = self.labels.allocator(router).allocate()
            session.labels[router] = label
            self.labels.lfib(router).bind(session.fec, label)

        # Install LFIB entries: at each transit router, swap to the next
        # hop's session label (or pop, for PHP before the egress).
        steps = [(session.ingress, None)] + list(route)
        for index in range(1, len(steps) - 1):
            router = steps[index][0]
            next_router, link = steps[index + 1]
            in_label = session.labels[router]
            if next_router == session.egress and self.php:
                entry = LfibEntry(LfibAction.POP, next_hop=next_router,
                                  link_id=link.link_id)
            else:
                entry = LfibEntry(
                    LfibAction.SWAP,
                    out_label=session.labels[next_router],
                    next_hop=next_router, link_id=link.link_id,
                )
            self.labels.lfib(router).add_entry(in_label, entry)
        if not self.php:
            egress_label = session.labels[session.egress]
            self.labels.lfib(session.egress).add_entry(
                egress_label, LfibEntry(LfibAction.DELIVER)
            )

    def _release(self, session: TeSession) -> None:
        for router, label in session.labels.items():
            self.labels.lfib(router).entries.pop(label, None)
            self.labels.lfib(router).unbind(session.fec)
            self.labels.allocator(router).release(label)

    def ingress_push(self, session: TeSession
                     ) -> Tuple[Optional[int], int, Link]:
        """What the head-end pushes: (label or None, next hop, link)."""
        next_router, link = session.route[0]
        if next_router == session.egress and self.php:
            return (None, next_router, link)
        return (session.labels[next_router], next_router, link)
