"""Binary radix (Patricia-style) trie for longest-prefix-match lookups.

This is the data structure behind :class:`repro.net.ip2as.Ip2AsMapper` and
the simulator's per-router IP forwarding tables.  It stores a value per
prefix and answers longest-prefix-match queries in at most 32 node visits.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from .ip import Prefix, int_to_ip


class _Node:
    __slots__ = ("children", "value", "has_value")

    def __init__(self):
        self.children: List[Optional[_Node]] = [None, None]
        self.value: Any = None
        self.has_value = False


class RadixTrie:
    """Maps IPv4 prefixes to arbitrary values with longest-prefix-match.

    >>> trie = RadixTrie()
    >>> trie.insert(Prefix.parse("10.0.0.0/8"), "coarse")
    >>> trie.insert(Prefix.parse("10.1.0.0/16"), "fine")
    >>> trie.lookup_str("10.1.2.3")
    'fine'
    >>> trie.lookup_str("10.2.0.1")
    'coarse'
    """

    def __init__(self):
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: Any) -> None:
        """Insert or replace the value stored for ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> bool:
        """Remove the value stored for an exact prefix.

        Returns True if the prefix was present.  Empty branches are left in
        place (removal is rare; lookups skip value-less nodes anyway).
        """
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return False
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        return True

    def lookup(self, address: int) -> Optional[Any]:
        """Return the value of the longest matching prefix, or None."""
        match = self.lookup_with_prefix(address)
        return match[1] if match is not None else None

    def lookup_with_prefix(
        self, address: int
    ) -> Optional[Tuple[Prefix, Any]]:
        """Return ``(prefix, value)`` of the longest match, or None."""
        node = self._root
        best: Optional[Tuple[int, Any]] = None
        if node.has_value:
            best = (0, node.value)
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                best = (depth + 1, node.value)
        if best is None:
            return None
        length, value = best
        return Prefix.from_host(address, length), value

    def lookup_exact(self, prefix: Prefix) -> Optional[Any]:
        """Return the value stored for exactly ``prefix``, or None."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                return None
        return node.value if node.has_value else None

    def lookup_str(self, address: str) -> Optional[Any]:
        """Longest-prefix-match on a dotted-quad string (convenience)."""
        from .ip import ip_to_int

        return self.lookup(ip_to_int(address))

    def items(self) -> Iterator[Tuple[Prefix, Any]]:
        """Iterate over all stored (prefix, value) pairs, sorted by bits."""
        stack: List[Tuple[_Node, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                yield Prefix(network, depth), node.value
            # Push right child first so the left (0) branch pops first.
            one = node.children[1]
            if one is not None:
                stack.append((one, network | (1 << (31 - depth)), depth + 1))
            zero = node.children[0]
            if zero is not None:
                stack.append((zero, network, depth + 1))

    def __repr__(self) -> str:
        return f"RadixTrie(size={self._size})"


def trie_from_pairs(pairs) -> RadixTrie:
    """Build a trie from an iterable of ``(Prefix, value)`` pairs."""
    trie = RadixTrie()
    for prefix, value in pairs:
        trie.insert(prefix, value)
    return trie
