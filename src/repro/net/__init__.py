"""Addressing substrate: IPv4 arithmetic, radix trie, IP-to-AS mapping."""

from .ip import (
    AddressError,
    MAX_IPV4,
    Prefix,
    int_to_ip,
    ip_to_int,
    netmask,
    summarize_range,
)
from .radix import RadixTrie, trie_from_pairs
from .ip2as import Ip2AsMapper, UNKNOWN_AS

__all__ = [
    "AddressError",
    "MAX_IPV4",
    "Prefix",
    "int_to_ip",
    "ip_to_int",
    "netmask",
    "summarize_range",
    "RadixTrie",
    "trie_from_pairs",
    "Ip2AsMapper",
    "UNKNOWN_AS",
]
