"""IPv4 address and prefix arithmetic.

Addresses are represented as plain ``int`` values in the hot paths of the
simulator and of LPR (millions of hops per cycle).  This module provides the
conversions and the :class:`Prefix` value type used by the routing and
IP-to-AS layers.

The standard library ``ipaddress`` module is deliberately not used here: it
allocates an object per address, which is far too costly when a single
measurement cycle manipulates millions of interface addresses.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

MAX_IPV4 = 0xFFFFFFFF


class AddressError(ValueError):
    """Raised when an address or prefix literal cannot be parsed."""


def ip_to_int(text: str) -> int:
    """Parse dotted-quad notation into an integer.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format an integer as dotted-quad notation.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"address out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def netmask(length: int) -> int:
    """Return the integer netmask for a prefix length.

    >>> hex(netmask(24))
    '0xffffff00'
    """
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (MAX_IPV4 << (32 - length)) & MAX_IPV4


class Prefix:
    """An IPv4 prefix (network address + length).

    Instances are immutable, hashable, and ordered by (network, length) so
    that sorted lists of prefixes are grouped by address space.
    """

    __slots__ = ("network", "length")

    def __init__(self, network: int, length: int):
        mask = netmask(length)
        if network & ~mask & MAX_IPV4:
            raise AddressError(
                f"host bits set in prefix {int_to_ip(network)}/{length}"
            )
        self.network = network
        self.length = length

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation.

        >>> Prefix.parse("192.0.2.0/24")
        Prefix('192.0.2.0/24')
        """
        if "/" not in text:
            raise AddressError(f"missing length in prefix {text!r}")
        addr, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise AddressError(f"bad length in prefix {text!r}")
        return cls(ip_to_int(addr), int(length_text))

    @classmethod
    def from_host(cls, address: int, length: int) -> "Prefix":
        """Build the prefix of ``length`` bits that contains ``address``."""
        return cls(address & netmask(length), length)

    def __contains__(self, address: int) -> bool:
        return (address & netmask(self.length)) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return (
            other.length >= self.length
            and (other.network & netmask(self.length)) == self.network
        )

    @property
    def first(self) -> int:
        """Lowest address in the prefix (the network address)."""
        return self.network

    @property
    def last(self) -> int:
        """Highest address in the prefix (the broadcast address)."""
        return self.network | (~netmask(self.length) & MAX_IPV4)

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def hosts(self) -> Iterator[int]:
        """Iterate over usable host addresses.

        For /31 and /32 all addresses are usable (RFC 3021 semantics);
        otherwise network and broadcast addresses are skipped.
        """
        if self.length >= 31:
            yield from range(self.first, self.last + 1)
        else:
            yield from range(self.first + 1, self.last)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate over the subdivisions of this prefix at ``new_length``."""
        if new_length < self.length:
            raise AddressError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.first, self.last + 1, step):
            yield Prefix(network, new_length)

    def _key(self) -> Tuple[int, int]:
        return (self.network, self.length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "Prefix") -> bool:
        return self._key() < other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix('{self}')"


def summarize_range(start: int, end: int) -> List[Prefix]:
    """Cover the inclusive address range [start, end] with minimal prefixes.

    >>> [str(p) for p in summarize_range(ip_to_int("10.0.0.0"),
    ...                                   ip_to_int("10.0.0.7"))]
    ['10.0.0.0/29']
    """
    if start > end:
        raise AddressError("empty range")
    prefixes = []
    while start <= end:
        # The largest aligned block starting at `start` that fits the range.
        max_align = (start & -start).bit_length() - 1 if start else 32
        max_fit = (end - start + 1).bit_length() - 1
        bits = min(max_align, max_fit)
        prefixes.append(Prefix(start, 32 - bits))
        start += 1 << bits
    return prefixes
