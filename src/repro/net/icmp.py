"""ICMP time-exceeded messages with RFC 4884/4950 MPLS extensions.

This is the wire mechanism that makes the whole study possible: when an
MPLS router drops a probe whose TTL expired, it sends an ICMP
``time-exceeded`` quoting the beginning of the dropped packet, and — if
it implements RFC 4950 — appends an *extension structure* (RFC 4884)
carrying an MPLS Label Stack object with the LSEs the packet wore.
Modified traceroutes parse that object; so does this module.

Layout implemented (big-endian throughout):

* ICMP header: type 11, code 0/1, checksum, unused(1) | length(1) |
  unused(2) — ``length`` counts 32-bit words of original datagram
  (RFC 4884 §4.1; zero when no extension follows);
* the quoted original datagram (at least 128 bytes, zero-padded, when
  an extension is appended — RFC 4884 §4.2);
* extension structure: version(4bits)=2, reserved, checksum, then
  objects: length(2) | class-num(1) | c-type(1) | payload;
* MPLS Label Stack object: class 1, c-type 1, payload = the LSEs
  (RFC 4950 §5).

The one-complement checksum is the standard Internet checksum and is
validated on parse.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..mpls.lse import LabelStack, LabelStackEntry

ICMP_TIME_EXCEEDED = 11
CODE_TTL_EXCEEDED = 0

EXTENSION_VERSION = 2
CLASS_MPLS_LABEL_STACK = 1
CTYPE_INCOMING_STACK = 1

# RFC 4884: with an extension present the original datagram field must
# be zero-padded to at least 128 bytes.
MIN_QUOTED_LENGTH = 128


class IcmpError(ValueError):
    """Raised on malformed ICMP messages."""


def internet_checksum(data: bytes) -> int:
    """RFC 1071 one's-complement checksum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass
class MplsExtensionObject:
    """The RFC 4950 MPLS Label Stack extension object."""

    stack: LabelStack

    def encode(self) -> bytes:
        payload = self.stack.to_bytes()
        header = struct.pack("!HBB", 4 + len(payload),
                             CLASS_MPLS_LABEL_STACK,
                             CTYPE_INCOMING_STACK)
        return header + payload

    @classmethod
    def decode(cls, data: bytes) -> Tuple["MplsExtensionObject", int]:
        """Parse one object; returns (object, bytes consumed)."""
        if len(data) < 4:
            raise IcmpError("truncated extension object header")
        length, class_num, c_type = struct.unpack("!HBB", data[:4])
        if length < 4 or length > len(data):
            raise IcmpError(f"bad extension object length {length}")
        if class_num != CLASS_MPLS_LABEL_STACK:
            raise IcmpError(f"unsupported object class {class_num}")
        if c_type != CTYPE_INCOMING_STACK:
            raise IcmpError(f"unsupported object c-type {c_type}")
        stack = LabelStack.from_bytes(data[4:length])
        return cls(stack=stack), length


@dataclass
class TimeExceeded:
    """An ICMP time-exceeded message, possibly with an MPLS extension.

    Attributes:
        quoted: the leading bytes of the dropped probe packet.
        stack: the MPLS label stack the probe carried when it died, or
            None when the replying router does not implement RFC 4950
            (or the probe was unlabeled).
        code: 0 = TTL exceeded in transit.
    """

    quoted: bytes
    stack: Optional[LabelStack] = None
    code: int = CODE_TTL_EXCEEDED

    def encode(self) -> bytes:
        """Serialize, computing both checksums."""
        if self.stack is not None and len(self.stack):
            quoted = self.quoted.ljust(MIN_QUOTED_LENGTH, b"\x00")
            if len(quoted) % 4:
                quoted += b"\x00" * (4 - len(quoted) % 4)
            extension = self._encode_extension()
            length_words = len(quoted) // 4
        else:
            quoted = self.quoted
            extension = b""
            length_words = 0
        header = struct.pack("!BBHBBH", ICMP_TIME_EXCEEDED, self.code,
                             0, 0, length_words, 0)
        body = header + quoted + extension
        checksum = internet_checksum(body)
        return body[:2] + struct.pack("!H", checksum) + body[4:]

    def _encode_extension(self) -> bytes:
        objects = MplsExtensionObject(self.stack).encode()
        header = struct.pack("!BBH", EXTENSION_VERSION << 4, 0, 0)
        checksum = internet_checksum(header + objects)
        header = header[:2] + struct.pack("!H", checksum)
        return header + objects

    @classmethod
    def decode(cls, data: bytes) -> "TimeExceeded":
        """Parse and validate a time-exceeded message."""
        if len(data) < 8:
            raise IcmpError("ICMP message shorter than its header")
        icmp_type, code, checksum, _unused, length_words, _unused2 = \
            struct.unpack("!BBHBBH", data[:8])
        if icmp_type != ICMP_TIME_EXCEEDED:
            raise IcmpError(f"not a time-exceeded message: {icmp_type}")
        if internet_checksum(data[:2] + b"\x00\x00" + data[4:]) \
                != checksum:
            raise IcmpError("ICMP checksum mismatch")
        if length_words == 0:
            # Compatibility mode: everything after the header is the
            # quoted datagram, no extension.
            return cls(quoted=data[8:], stack=None, code=code)
        quoted_end = 8 + length_words * 4
        if quoted_end > len(data):
            raise IcmpError("length field exceeds message size")
        quoted = data[8:quoted_end]
        stack = cls._decode_extension(data[quoted_end:])
        return cls(quoted=quoted, stack=stack, code=code)

    @staticmethod
    def _decode_extension(data: bytes) -> Optional[LabelStack]:
        if len(data) < 4:
            raise IcmpError("truncated extension structure")
        version_word, _reserved, checksum = struct.unpack("!BBH",
                                                          data[:4])
        if version_word >> 4 != EXTENSION_VERSION:
            raise IcmpError(
                f"unsupported extension version {version_word >> 4}")
        if internet_checksum(data[:2] + b"\x00\x00" + data[4:]) \
                != checksum:
            raise IcmpError("extension checksum mismatch")
        offset = 4
        stack: Optional[LabelStack] = None
        while offset < len(data):
            obj, consumed = MplsExtensionObject.decode(data[offset:])
            stack = obj.stack
            offset += consumed
        return stack

    @property
    def labels(self) -> Tuple[int, ...]:
        """Bare label values from the extension (empty if none)."""
        if self.stack is None:
            return ()
        return self.stack.labels()


def build_probe_quote(src: int, dst: int, probe_ttl: int) -> bytes:
    """A minimal quoted original datagram (IPv4 header + 8 bytes).

    Real routers quote the probe's IP header and first payload bytes;
    traceroute matches replies to probes through it.  We encode the
    fields the matching needs: src, dst, and the probe's original TTL
    recoverable from the identification field.
    """
    header = struct.pack(
        "!BBHHHBBHII",
        0x45,            # version 4, IHL 5
        0,               # DSCP/ECN
        28,              # total length (header + 8 payload bytes)
        probe_ttl,       # identification: traceroute encodes its TTL
        0,               # flags/fragment
        1,               # remaining TTL when dropped
        1,               # protocol: ICMP
        0,               # header checksum (not validated here)
        src, dst,
    )
    return header + struct.pack("!BBHI", 8, 0, 0, probe_ttl)


def parse_probe_quote(quoted: bytes) -> Tuple[int, int, int]:
    """Recover (src, dst, probe_ttl) from a quoted datagram."""
    if len(quoted) < 20:
        raise IcmpError("quoted datagram shorter than an IPv4 header")
    fields = struct.unpack("!BBHHHBBHII", quoted[:20])
    if fields[0] >> 4 != 4:
        raise IcmpError("quoted datagram is not IPv4")
    probe_ttl = fields[3]
    src, dst = fields[8], fields[9]
    return src, dst, probe_ttl
