"""IP-to-AS mapping in the style of Routeviews prefix-to-origin tables.

The paper maps every traceroute hop to an AS using a Routeviews table
collected the same day as the measurement cycle.  This module provides the
same interface: a table of ``(prefix, origin AS)`` entries answering
longest-prefix-match queries, plus a tiny text codec compatible with the
classic ``pfx2as`` three-column format (dotted prefix, length, ASN).

Multi-origin prefixes (MOAS) are preserved: a lookup may return a tuple of
ASNs, and :meth:`Ip2AsMapper.lookup_single` applies the common convention of
keeping the first (lowest) origin.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, TextIO, Tuple, \
    Union

from ..obs import get_registry
from .ip import Prefix, ip_to_int
from .radix import RadixTrie

Origin = Union[int, Tuple[int, ...]]

UNKNOWN_AS = -1

_LOOKUP_HITS = get_registry().counter(
    "ip2as_lookup_cache_hits_total",
    "Batched IP2AS lookups answered by the per-call prefix memo")
_LOOKUP_MISSES = get_registry().counter(
    "ip2as_lookup_cache_misses_total",
    "Batched IP2AS lookups that walked the radix trie")

_MEMO_PREFIX_LENGTH = 24
"""Granularity of the :meth:`Ip2AsMapper.lookup_many` memo: one trie
walk answers a whole /24, the granularity of pfx2as destination
blocks.  Exact only while no table prefix is longer than /24, so the
memo degrades to per-address keys on finer tables."""


class Ip2AsMapper:
    """Longest-prefix-match mapping from IPv4 address to origin AS."""

    def __init__(self):
        self._trie = RadixTrie()
        self._max_length = 0

    def __len__(self) -> int:
        return len(self._trie)

    def add(self, prefix: Prefix, origin: Origin) -> None:
        """Register an origin (ASN or tuple of ASNs) for a prefix.

        Adding a second distinct origin for the same prefix turns the entry
        into a MOAS tuple.
        """
        if prefix.length > self._max_length:
            self._max_length = prefix.length
        existing = self._trie.lookup_exact(prefix)
        if existing is None:
            self._trie.insert(prefix, origin)
            return
        merged = _merge_origins(existing, origin)
        self._trie.insert(prefix, merged)

    def lookup(self, address: int) -> Optional[Origin]:
        """Return the origin for an address, or None if unrouted."""
        return self._trie.lookup(address)

    def lookup_single(self, address: int) -> int:
        """Return a single ASN for an address.

        MOAS entries resolve to their lowest ASN; unrouted addresses map to
        :data:`UNKNOWN_AS` so that callers can use the result as a dict key
        without None checks.
        """
        origin = self._trie.lookup(address)
        if origin is None:
            return UNKNOWN_AS
        if isinstance(origin, tuple):
            return min(origin)
        return origin

    def lookup_many(self, addresses: Iterable[int]) -> List[int]:
        """Batched :meth:`lookup_single`, memoised within the call.

        Traceroute hops and destinations repeat heavily inside one
        cycle and cluster in /24s, so one radix walk usually answers a
        whole block of queries.  The memo is keyed per /24 while the
        table holds no longer prefix (:data:`_MEMO_PREFIX_LENGTH` —
        always true for pfx2as-style tables); a finer table drops the
        memo to exact-address keys instead of risking wrong answers.
        Hit/miss totals surface as
        ``ip2as_lookup_cache_{hits,misses}_total``.
        """
        shift = (32 - _MEMO_PREFIX_LENGTH
                 if self._max_length <= _MEMO_PREFIX_LENGTH else 0)
        memo: dict = {}
        memo_get = memo.get
        lookup = self.lookup_single
        out: List[int] = []
        append = out.append
        hits = misses = 0
        for address in addresses:
            key = address >> shift
            asn = memo_get(key)
            if asn is None:
                asn = lookup(address)
                memo[key] = asn
                misses += 1
            else:
                hits += 1
            append(asn)
        if hits:
            _LOOKUP_HITS.inc(hits)
        if misses:
            _LOOKUP_MISSES.inc(misses)
        return out

    def lookup_str(self, address: str) -> Optional[Origin]:
        """Lookup on a dotted-quad string (convenience)."""
        return self.lookup(ip_to_int(address))

    def items(self) -> Iterator[Tuple[Prefix, Origin]]:
        """Iterate over all (prefix, origin) entries."""
        return self._trie.items()

    # -- pfx2as text codec ------------------------------------------------

    def dump(self, stream: TextIO) -> None:
        """Write the table in pfx2as format (prefix, length, origin)."""
        for prefix, origin in sorted(self.items()):
            origins = (
                "_".join(str(a) for a in origin)
                if isinstance(origin, tuple)
                else str(origin)
            )
            from .ip import int_to_ip

            stream.write(
                f"{int_to_ip(prefix.network)}\t{prefix.length}\t{origins}\n"
            )

    @classmethod
    def load(cls, stream: TextIO) -> "Ip2AsMapper":
        """Parse a pfx2as-format table.

        MOAS origins are encoded with underscores (``65001_65002``), the
        convention used by CAIDA's prefix-to-AS files.
        """
        mapper = cls()
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 3:
                raise ValueError(
                    f"line {line_number}: expected 3 fields, got {len(fields)}"
                )
            network, length, origins = fields
            prefix = Prefix(ip_to_int(network), int(length))
            parsed = tuple(int(asn) for asn in origins.split("_"))
            mapper.add(prefix, parsed[0] if len(parsed) == 1 else parsed)
        return mapper

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[Prefix, Origin]]
    ) -> "Ip2AsMapper":
        """Build a mapper from an iterable of (prefix, origin) pairs."""
        mapper = cls()
        for prefix, origin in pairs:
            mapper.add(prefix, origin)
        return mapper

    def __repr__(self) -> str:
        return f"Ip2AsMapper(entries={len(self)})"


def _merge_origins(existing: Origin, new: Origin) -> Origin:
    existing_set = set(
        existing if isinstance(existing, tuple) else (existing,)
    )
    new_set = set(new if isinstance(new, tuple) else (new,))
    merged = tuple(sorted(existing_set | new_set))
    return merged[0] if len(merged) == 1 else merged
