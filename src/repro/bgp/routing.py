"""Valley-free inter-domain route computation.

Implements the standard Gao-Rexford decision process on the AS graph:

1. prefer routes learned from customers over peers over providers;
2. among those, prefer the shortest AS path;
3. tie-break on a deterministic hash of (destination, local AS, next
   hop) — a stand-in for the real per-prefix tie-breakers (MED, router
   ids, IGP distance) that, like them, spreads different destinations
   over different equally-good next hops instead of funnelling
   everything through one.

Export rules: routes learned from a customer are exported to everyone;
routes learned from a peer or a provider are exported to customers only.
The resulting paths are exactly the valley-free ones: zero or more c2p
steps up, at most one peering step across, zero or more p2c steps down.

Routes are computed per destination AS with a three-stage relaxation
(customer routes bottom-up, then peer routes, then provider routes
top-down) and cached.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..igp.ecmp import flow_hash
from .asgraph import AsGraph, Relationship

# Route preference: lower sorts first.
_PREFERENCE = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


class Route:
    """One AS's best route towards a destination AS."""

    __slots__ = ("kind", "length", "next_hop")

    def __init__(self, kind: Relationship, length: int,
                 next_hop: Optional[int]):
        self.kind = kind          # relationship the route was learned over
        self.length = length      # AS-path length (hops to destination)
        self.next_hop = next_hop  # next AS on the path (None at the origin)

    def __repr__(self) -> str:
        return (f"Route(kind={self.kind.value}, length={self.length}, "
                f"next_hop={self.next_hop})")


class BgpRouting:
    """Per-destination valley-free routing tables over an AS graph."""

    def __init__(self, graph: AsGraph):
        self.graph = graph
        self._tables: Dict[int, Dict[int, Route]] = {}

    def table_for(self, destination: int) -> Dict[int, Route]:
        """Best route of every AS towards ``destination`` (cached)."""
        table = self._tables.get(destination)
        if table is None:
            table = self._compute(destination)
            self._tables[destination] = table
        return table

    def invalidate(self) -> None:
        """Drop cached tables (call after graph changes)."""
        self._tables.clear()

    def _tie(self, destination: int, asn: int, via: int) -> int:
        """Deterministic per-destination tie-break key (lower wins)."""
        return flow_hash(destination, asn, via)

    def _compute(self, destination: int) -> Dict[int, Route]:
        if destination not in self.graph:
            raise KeyError(f"unknown destination AS {destination}")
        table: Dict[int, Route] = {
            destination: Route(Relationship.CUSTOMER, 0, None)
        }

        def rank(asn: int, length: int, via: Optional[int]
                 ) -> Tuple[int, int]:
            if via is None:
                return (length, -1)
            return (length, self._tie(destination, asn, via))

        # Stage 1 — customer routes: propagate up c2p edges.  An AS whose
        # customer has any route to the destination learns a customer
        # route.  Dijkstra on (length, tie-break).
        heap: List[Tuple[int, int, int]] = []  # (length, via, asn)

        def push_up(asn: int, length: int) -> None:
            for provider in self.graph.providers(asn):
                heapq.heappush(heap, (length + 1, asn, provider))

        push_up(destination, 0)
        while heap:
            length, via, asn = heapq.heappop(heap)
            existing = table.get(asn)
            if existing is not None:
                if rank(asn, existing.length, existing.next_hop) \
                        <= rank(asn, length, via):
                    continue
            table[asn] = Route(Relationship.CUSTOMER, length, via)
            push_up(asn, length)

        customer_reachers = dict(table)

        # Stage 2 — peer routes: one peering step into the customer zone.
        peer_routes: Dict[int, Route] = {}
        for asn, route in customer_reachers.items():
            for peer in self.graph.peers(asn):
                if peer in customer_reachers:
                    continue  # customer routes always win
                candidate = Route(Relationship.PEER, route.length + 1, asn)
                existing = peer_routes.get(peer)
                if existing is None or (
                    rank(peer, candidate.length, candidate.next_hop)
                    < rank(peer, existing.length, existing.next_hop)
                ):
                    peer_routes[peer] = candidate
        table.update(peer_routes)

        # Stage 3 — provider routes: propagate down p2c edges from every
        # AS that already has a route.  Preference order within provider
        # routes is again (length, tie-break).
        heap = []
        for asn, route in table.items():
            for customer in self.graph.customers(asn):
                if customer not in table:
                    heapq.heappush(
                        heap, (route.length + 1, asn, customer)
                    )
        while heap:
            length, via, asn = heapq.heappop(heap)
            existing = table.get(asn)
            if existing is not None:
                if existing.kind is not Relationship.PROVIDER:
                    continue
                if rank(asn, existing.length, existing.next_hop) \
                        <= rank(asn, length, via):
                    continue
            table[asn] = Route(Relationship.PROVIDER, length, via)
            for customer in self.graph.customers(asn):
                if customer not in table or (
                    table[customer].kind is Relationship.PROVIDER
                ):
                    heapq.heappush(heap, (length + 1, asn, customer))
        return table

    def next_as(self, source: int, destination: int) -> Optional[int]:
        """Next AS hop from ``source`` towards ``destination``.

        Returns None when the source has no valley-free route, or when the
        source *is* the destination.
        """
        route = self.table_for(destination).get(source)
        return route.next_hop if route is not None else None

    def as_path(self, source: int, destination: int) -> Optional[List[int]]:
        """Full AS path (source first, destination last), or None."""
        if source == destination:
            return [source]
        table = self.table_for(destination)
        path = [source]
        current = source
        while current != destination:
            route = table.get(current)
            if route is None or route.next_hop is None:
                return None
            current = route.next_hop
            if current in path:
                raise RuntimeError(
                    f"routing loop towards {destination}: {path + [current]}"
                )
            path.append(current)
        return path

    def reachable(self, source: int, destination: int) -> bool:
        """True if a valley-free path exists."""
        return source == destination or (
            self.table_for(destination).get(source) is not None
        )
