"""Inter-domain substrate: AS graph and valley-free routing."""

from .asgraph import AsGraph, AsGraphError, AsNode, Relationship, Tier
from .routing import BgpRouting, Route

__all__ = [
    "AsGraph",
    "AsGraphError",
    "AsNode",
    "Relationship",
    "Tier",
    "BgpRouting",
    "Route",
]
