"""AS-level graph with business relationships.

The inter-domain half of the simulator: autonomous systems connected by
customer-to-provider (c2p) and peer-to-peer (p2p) edges, following the
Gao-Rexford model.  :mod:`repro.bgp.routing` computes valley-free paths on
top of this graph; the traceroute engine then walks those AS paths and
descends into each AS's router-level topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Set, Tuple


class Relationship(Enum):
    """Business relationship of a neighbor, seen from the local AS."""

    CUSTOMER = "customer"   # the neighbor pays us
    PEER = "peer"           # settlement-free
    PROVIDER = "provider"   # we pay the neighbor


class Tier(Enum):
    """Coarse role of an AS in the hierarchy."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    STUB = "stub"


@dataclass
class AsNode:
    """One autonomous system."""

    asn: int
    name: str = ""
    tier: Tier = Tier.STUB

    def __post_init__(self):
        if not self.name:
            self.name = f"AS{self.asn}"


class AsGraphError(ValueError):
    """Raised on inconsistent graph construction."""


class AsGraph:
    """The AS-level Internet: nodes plus typed adjacency."""

    def __init__(self):
        self.nodes: Dict[int, AsNode] = {}
        # adjacency[asn] -> {neighbor_asn: Relationship-from-asn's-view}
        self._adjacency: Dict[int, Dict[int, Relationship]] = {}

    def add_as(self, node: AsNode) -> AsNode:
        """Register an AS; ASNs must be unique."""
        if node.asn in self.nodes:
            raise AsGraphError(f"duplicate ASN {node.asn}")
        self.nodes[node.asn] = node
        self._adjacency[node.asn] = {}
        return node

    def _check_known(self, *asns: int) -> None:
        for asn in asns:
            if asn not in self.nodes:
                raise AsGraphError(f"unknown ASN {asn}")

    def add_c2p(self, customer: int, provider: int) -> None:
        """Add a customer-to-provider edge."""
        self._check_known(customer, provider)
        if customer == provider:
            raise AsGraphError(f"self-edge on AS {customer}")
        self._adjacency[customer][provider] = Relationship.PROVIDER
        self._adjacency[provider][customer] = Relationship.CUSTOMER

    def add_p2p(self, left: int, right: int) -> None:
        """Add a settlement-free peering edge."""
        self._check_known(left, right)
        if left == right:
            raise AsGraphError(f"self-edge on AS {left}")
        self._adjacency[left][right] = Relationship.PEER
        self._adjacency[right][left] = Relationship.PEER

    def relationship(self, local: int, neighbor: int
                     ) -> Optional[Relationship]:
        """How ``local`` sees ``neighbor`` (None if not adjacent)."""
        return self._adjacency.get(local, {}).get(neighbor)

    def neighbors(self, asn: int) -> Iterator[Tuple[int, Relationship]]:
        """Yield (neighbor asn, relationship) sorted by neighbor asn."""
        for neighbor in sorted(self._adjacency.get(asn, {})):
            yield neighbor, self._adjacency[asn][neighbor]

    def customers(self, asn: int) -> List[int]:
        """ASNs that are customers of ``asn``."""
        return [n for n, rel in self.neighbors(asn)
                if rel is Relationship.CUSTOMER]

    def providers(self, asn: int) -> List[int]:
        """ASNs that are providers of ``asn``."""
        return [n for n, rel in self.neighbors(asn)
                if rel is Relationship.PROVIDER]

    def peers(self, asn: int) -> List[int]:
        """ASNs peering with ``asn``."""
        return [n for n, rel in self.neighbors(asn)
                if rel is Relationship.PEER]

    def customer_cone(self, asn: int) -> Set[int]:
        """All ASes reachable from ``asn`` walking only provider→customer."""
        cone: Set[int] = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for customer in self.customers(current):
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return cone

    def validate(self) -> None:
        """Sanity-check the hierarchy.

        Tier-1 ASes must have no providers; every non-tier-1 AS must have a
        path up to some tier-1 (otherwise it is globally unreachable under
        valley-free routing from outside its cone).
        """
        tier1 = {asn for asn, node in self.nodes.items()
                 if node.tier is Tier.TIER1}
        if not tier1:
            raise AsGraphError("graph has no tier-1 AS")
        for asn in tier1:
            if self.providers(asn):
                raise AsGraphError(f"tier-1 AS {asn} has a provider")
        # Upward reachability: BFS down the c2p edges from the tier-1 clique.
        reached = set(tier1)
        frontier = list(tier1)
        while frontier:
            current = frontier.pop()
            for customer in self.customers(current):
                if customer not in reached:
                    reached.add(customer)
                    frontier.append(customer)
        unreachable = set(self.nodes) - reached
        if unreachable:
            raise AsGraphError(
                f"ASes without a provider path to tier-1: "
                f"{sorted(unreachable)}"
            )

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, asn: int) -> bool:
        return asn in self.nodes

    def __repr__(self) -> str:
        edges = sum(len(adj) for adj in self._adjacency.values()) // 2
        return f"AsGraph(ases={len(self.nodes)}, edges={edges})"
