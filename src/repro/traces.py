"""Canonical traceroute data model.

Every layer of the repository speaks this vocabulary: the simulator's
traceroute engine *produces* :class:`Trace` objects, the warts-like codec
*serializes* them, and LPR *consumes* them.  A trace is a TTL-ordered list
of :class:`TraceHop` replies; a hop may be anonymous (no reply) and may
quote an MPLS label stack per RFC 4950.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from .mpls.lse import LabelStackEntry
from .net.ip import int_to_ip


class StopReason(Enum):
    """Why the traceroute stopped probing."""

    COMPLETED = "completed"      # destination (or its /24) replied
    GAP_LIMIT = "gap-limit"      # too many consecutive anonymous hops
    LOOP = "loop"                # forwarding loop detected
    UNREACHABLE = "unreachable"  # ICMP destination unreachable
    TTL_EXHAUSTED = "ttl-exhausted"


@dataclass(frozen=True)
class TraceHop:
    """One reply (or silence) at a given probe TTL.

    Attributes:
        probe_ttl: the IP TTL of the probe that triggered this reply.
        address: replying interface address, or None for an anonymous hop.
        rtt_ms: round-trip time in milliseconds (0.0 when anonymous).
        quoted_stack: the MPLS LSEs quoted via RFC 4950, top first
            (empty when the hop is not label-switched, does not implement
            RFC 4950, or is anonymous).
        quoted_ttl: the IP-TTL of the probe as quoted in the ICMP reply
            (the *qTTL*).  1 on ordinary hops; inside a ttl-propagating
            tunnel the IP-TTL is no longer decremented (only the LSE-TTL
            is), so the j-th LSR quotes j+1 — the signature used to
            reveal *implicit* tunnels when RFC 4950 is absent.
    """

    probe_ttl: int
    address: Optional[int]
    rtt_ms: float = 0.0
    quoted_stack: Tuple[LabelStackEntry, ...] = ()
    quoted_ttl: int = 1

    @property
    def is_anonymous(self) -> bool:
        """True when the router did not reply (a '*' hop)."""
        return self.address is None

    @property
    def has_labels(self) -> bool:
        """True when an RFC 4950 label stack was quoted."""
        return bool(self.quoted_stack)

    @property
    def labels(self) -> Tuple[int, ...]:
        """Bare label values, top first."""
        return tuple(entry.label for entry in self.quoted_stack)

    def __str__(self) -> str:
        if self.is_anonymous:
            return f"{self.probe_ttl:>2}  *"
        text = f"{self.probe_ttl:>2}  {int_to_ip(self.address)}" \
               f"  {self.rtt_ms:.3f} ms"
        if self.quoted_stack:
            stack = ", ".join(
                f"Label={e.label} TC={e.tc} S={int(e.bottom)} TTL={e.ttl}"
                for e in self.quoted_stack
            )
            text += f"  [MPLS: {stack}]"
        return text


@dataclass
class Trace:
    """One traceroute measurement."""

    monitor: str                 # vantage-point name
    src: int                     # probe source address
    dst: int                     # probed destination address
    timestamp: float             # seconds since the simulation epoch
    stop_reason: StopReason
    hops: List[TraceHop] = field(default_factory=list)

    @property
    def hop_count(self) -> int:
        """Number of probed TTLs recorded."""
        return len(self.hops)

    @property
    def responsive_hops(self) -> List[TraceHop]:
        """Hops that replied."""
        return [hop for hop in self.hops if not hop.is_anonymous]

    @property
    def has_mpls(self) -> bool:
        """True when at least one hop quoted a label stack."""
        return any(hop.has_labels for hop in self.hops)

    @property
    def reached_destination(self) -> bool:
        """True when the trace completed."""
        return self.stop_reason is StopReason.COMPLETED

    def addresses(self) -> List[int]:
        """Responding addresses in TTL order."""
        return [hop.address for hop in self.hops
                if hop.address is not None]

    def __str__(self) -> str:
        header = (
            f"traceroute from {self.monitor} ({int_to_ip(self.src)}) "
            f"to {int_to_ip(self.dst)} [{self.stop_reason.value}]"
        )
        return "\n".join([header] + [str(hop) for hop in self.hops])
