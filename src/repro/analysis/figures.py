"""Regeneration of every figure in the paper's evaluation section.

Each ``fig*`` function returns a :class:`FigureResult`: the underlying
data (for assertions in tests/benchmarks) plus a rendered plain-text
view (for eyeballing against the paper).  The mapping to paper figures:

========  ==========================================================
fig5a     share of traces crossing >= 1 explicit tunnel, per cycle
fig5b     MPLS vs non-MPLS address counts, per cycle
fig6      persistence-window sweep: tunnels kept + classification
fig7      IOTP length distribution
fig8      IOTP width distribution (all classes + per class)
fig9      IOTP symmetry distribution per class
fig10-15  per-AS classification + IOTP counts over the cycles
fig13     Mono-FEC subclass split (routers disjoint vs parallel links)
fig16     daily deployment ramp (IOTPs/LSPs before and after filters)
fig17     label sawtooth under RSVP-TE re-optimization
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.classification import MonoFecSubclass, TunnelClass
from ..core.dynamics import (
    SeriesSummary,
    label_series,
    rank_by_churn,
    step_durations,
    summarize_all,
)
from ..core.extraction import extract_all
from ..core.filters import run_filters
from ..core.metrics import (
    length_distribution,
    symmetry_distribution_by_class,
    width_distribution,
    width_distribution_by_class,
)
from ..core.pipeline import CycleResult, PersistencePoint
from ..net.ip import int_to_ip
from ..net.ip2as import Ip2AsMapper
from ..traces import Trace
from .aggregate import LongitudinalStudy
from .render import bar_chart, format_table, series_chart, sparkline, \
    stacked_shares


@dataclass
class FigureResult:
    """One regenerated figure: machine-readable data + text rendering."""

    figure_id: str
    data: dict
    text: str

    def __str__(self) -> str:
        return f"== {self.figure_id} ==\n{self.text}"


def fig5a(study: LongitudinalStudy) -> FigureResult:
    """Fig 5a: proportion of traces traversing >= 1 explicit tunnel."""
    shares = study.tunnel_trace_shares()
    values = [share for _, share in shares]
    text = series_chart({"tunnel share": values}, study.cycles,
                        title="Traces with at least one explicit tunnel")
    return FigureResult("fig5a", {"shares": shares}, text)


def fig5b(study: LongitudinalStudy) -> FigureResult:
    """Fig 5b: MPLS and non-MPLS address counts per cycle."""
    counts = study.address_counts()
    mpls = [m for _, m, _ in counts]
    other = [o for _, _, o in counts]
    text = series_chart(
        {"MPLS IPs": mpls, "non-MPLS IPs": other}, study.cycles,
        title="Unique addresses per cycle",
    )
    growth = study.growth()
    text += (f"\ngrowth over the study: MPLS {growth['mpls']:+.0%}, "
             f"non-MPLS {growth['non_mpls']:+.0%}")
    return FigureResult("fig5b", {"counts": counts, "growth": growth},
                        text)


def fig6(points: Sequence[PersistencePoint]) -> FigureResult:
    """Fig 6: persistence-window sweep (tunnels kept + class shares)."""
    kept = {point.window: point.kept_lsps for point in points}
    shares = {
        point.window: {
            tunnel_class.value: share
            for tunnel_class, share in
            point.classification.shares().items()
        }
        for point in points
    }
    rows = [
        [window, kept[window]] + [
            f"{shares[window][tc.value]:.3f}" for tc in TunnelClass
        ]
        for window in sorted(kept)
    ]
    text = format_table(
        ["j", "LSPs kept"] + [tc.value for tc in TunnelClass], rows)
    return FigureResult("fig6", {"kept": kept, "shares": shares}, text)


def fig7(result: CycleResult) -> FigureResult:
    """Fig 7: IOTP length distribution for one cycle."""
    pdf = length_distribution(result.classification)
    return FigureResult(
        "fig7", {"pdf": pdf},
        bar_chart(pdf, title=f"IOTP length PDF (cycle {result.cycle})"),
    )


def fig8(result: CycleResult) -> FigureResult:
    """Fig 8: IOTP width distribution, global and per class."""
    overall = width_distribution(result.classification)
    per_class = {
        tunnel_class.value: pdf
        for tunnel_class, pdf in
        width_distribution_by_class(result.classification).items()
        if tunnel_class in (TunnelClass.MONO_FEC, TunnelClass.MULTI_FEC)
    }
    text = bar_chart(overall,
                     title=f"IOTP width PDF (cycle {result.cycle})")
    for name, pdf in per_class.items():
        text += "\n" + bar_chart(pdf, title=f"width PDF — {name}")
    return FigureResult("fig8", {"overall": overall,
                                 "per_class": per_class}, text)


def fig9(result: CycleResult) -> FigureResult:
    """Fig 9: IOTP symmetry distribution for the multi-LSP classes."""
    per_class = {
        tunnel_class.value: pdf
        for tunnel_class, pdf in
        symmetry_distribution_by_class(result.classification).items()
    }
    text = "\n".join(
        bar_chart(pdf, title=f"symmetry PDF — {name}")
        for name, pdf in per_class.items()
    )
    return FigureResult("fig9", {"per_class": per_class}, text)


def per_as_figure(study: LongitudinalStudy, asn: int, name: str,
                  figure_id: str) -> FigureResult:
    """Figs 10–12, 14, 15: one AS's classification over the cycles."""
    shares = {
        tunnel_class.value: values
        for tunnel_class, values in
        study.class_share_series(asn).items()
    }
    counts = study.iotp_count_series(asn)
    text = stacked_shares(
        shares, study.cycles,
        title=f"{figure_id}: AS{asn} ({name}) class shares",
    )
    text += "\nIOTP count  |" + sparkline(
        [float(c) for c in counts]) + f"|  max={max(counts)}"
    dynamic_cycles = study.dynamic_ases().get(asn, 0)
    if dynamic_cycles:
        text += f"\ntagged dynamic in {dynamic_cycles} cycles"
    return FigureResult(figure_id,
                        {"shares": shares, "counts": counts,
                         "dynamic_cycles": dynamic_cycles}, text)


def fig13(study: LongitudinalStudy, asn: int) -> FigureResult:
    """Fig 13: Mono-FEC split between parallel links and disjoint
    routers for one AS (the paper uses Tata)."""
    series = {
        subclass.value: values
        for subclass, values in study.subclass_share_series(asn).items()
    }
    text = series_chart(series, study.cycles,
                        title=f"fig13: AS{asn} Mono-FEC subclass split")
    averages = {
        name: (sum(values) / len(values) if values else 0.0)
        for name, values in series.items()
    }
    text += "\naverages: " + ", ".join(
        f"{name}={value:.2f}" for name, value in averages.items())
    return FigureResult("fig13", {"series": series,
                                  "averages": averages}, text)


def fig16(days: Sequence[Sequence[Trace]],
          ip2as: Ip2AsMapper, asn: int) -> FigureResult:
    """Fig 16: daily IOTP/LSP counts before and after filtering.

    As in the paper, the Persistence filter is not applied to the daily
    data (there are no matched follow-up snapshots), and the counts are
    restricted to the AS under study.
    """
    iotps_before: List[int] = []
    iotps_after: List[int] = []
    lsps_before: List[int] = []
    lsps_after: List[int] = []
    for traces in days:
        lsps = extract_all(traces)
        in_as = [
            lsp for lsp in lsps
            if lsp.hops and all(ip2as.lookup_single(address) == asn
                                for address in lsp.addresses)
        ]
        lsps_before.append(len({lsp.signature for lsp in in_as}))
        iotps_before.append(len({
            (lsp.entry, lsp.exit) for lsp in in_as
            if lsp.entry is not None and lsp.exit is not None
        }))
        iotps, _stats = run_filters(lsps, ip2as)
        mine = [iotp for key, iotp in iotps.items() if key[0] == asn]
        iotps_after.append(len(mine))
        lsps_after.append(sum(iotp.width for iotp in mine))
    text = series_chart(
        {
            "IOTPs before": [float(v) for v in iotps_before],
            "IOTPs after": [float(v) for v in iotps_after],
            "LSPs before": [float(v) for v in lsps_before],
            "LSPs after": [float(v) for v in lsps_after],
        },
        list(range(1, len(days) + 1)),
        title=f"fig16: AS{asn} daily deployment ramp",
    )
    return FigureResult("fig16", {
        "iotps_before": iotps_before, "iotps_after": iotps_after,
        "lsps_before": lsps_before, "lsps_after": lsps_after,
    }, text)


def fig17(traces: Sequence[Trace], ip2as: Ip2AsMapper,
          asn: int) -> FigureResult:
    """Fig 17: per-LSR label evolution under re-optimization."""
    series = label_series(traces, ip2as, asn)
    summaries = summarize_all(series)
    ranked = rank_by_churn(summaries)
    rows = []
    for address, summary in ranked:
        durations = step_durations(series[address])
        mean_step_s = (sum(durations) / len(durations)
                       if durations else 0.0)
        rows.append([
            int_to_ip(address), summary.samples, summary.change_points,
            summary.wraps, summary.min_label, summary.max_label,
            f"{mean_step_s / 60:.0f} min",
        ])
    text = format_table(
        ["LSR", "samples", "changes", "wraps", "min label",
         "max label", "mean step"],
        rows,
    )
    for address, _ in ranked[:4]:
        labels = [float(label) for _, label in series[address]]
        text += (f"\n{int_to_ip(address)}  |"
                 + sparkline(labels) + "|")
    return FigureResult("fig17", {
        "series": series,
        "summaries": summaries,
        "ranked": [address for address, _ in ranked],
    }, text)
