"""Longitudinal aggregation of per-cycle LPR results.

Collects the 60 :class:`~repro.core.pipeline.CycleResult` objects of a
study and exposes the exact series the paper's figures and tables plot:
per-cycle tunnel-trace shares (Fig 5a), MPLS/non-MPLS address counts
(Fig 5b and Table 2), cumulative filter survivor averages with confidence
intervals (Table 1), and per-AS class share series (Figs 10–15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.classification import MonoFecSubclass, TunnelClass
from ..core.pipeline import CycleResult

_FILTER_STAGES = ("incomplete", "intra_as", "target_as",
                  "transit_diversity", "persistence")


@dataclass(frozen=True)
class MeanWithCi:
    """A mean with its normal-approximation 95% confidence half-width."""

    mean: float
    half_width: float
    samples: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ±{self.half_width:.3f}"


def mean_with_ci(values: Sequence[float]) -> MeanWithCi:
    """Mean and 95% CI half-width of a sample (paper Table 1 format)."""
    if not values:
        raise ValueError("empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MeanWithCi(mean=mean, half_width=0.0, samples=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = 1.96 * math.sqrt(variance / n)
    return MeanWithCi(mean=mean, half_width=half_width, samples=n)


class LongitudinalStudy:
    """All cycles of one study, with series extraction helpers."""

    def __init__(self, results: Iterable[CycleResult]):
        self.results: List[CycleResult] = sorted(
            results, key=lambda r: r.cycle)
        if not self.results:
            raise ValueError("a study needs at least one cycle")

    @property
    def cycles(self) -> List[int]:
        """Cycle numbers, ascending."""
        return [result.cycle for result in self.results]

    def __len__(self) -> int:
        return len(self.results)

    # -- Fig 5 series --------------------------------------------------------

    def tunnel_trace_shares(self) -> List[Tuple[int, float]]:
        """Fig 5a: per cycle, share of traces with >= 1 explicit tunnel."""
        return [(r.cycle, r.stats.tunnel_trace_share)
                for r in self.results]

    def address_counts(self) -> List[Tuple[int, int, int]]:
        """Fig 5b: per cycle, (cycle, MPLS IPs, non-MPLS IPs)."""
        return [(r.cycle, r.stats.mpls_addresses,
                 r.stats.non_mpls_addresses) for r in self.results]

    # -- Table 1 -------------------------------------------------------------

    def filter_survival(self) -> Dict[str, MeanWithCi]:
        """Table 1: cumulative average survivor share after each filter."""
        return {
            stage: mean_with_ci([
                result.filter_stats.proportions()[stage]
                for result in self.results
            ])
            for stage in _FILTER_STAGES
        }

    # -- per-AS series (Figs 10–15) ------------------------------------------

    def class_share_series(self, asn: Optional[int] = None
                           ) -> Dict[TunnelClass, List[float]]:
        """Per-cycle class shares, optionally restricted to one AS."""
        series: Dict[TunnelClass, List[float]] = {
            tunnel_class: [] for tunnel_class in TunnelClass
        }
        for result in self.results:
            classification = (result.classification if asn is None
                              else result.for_as(asn))
            shares = classification.shares()
            for tunnel_class in TunnelClass:
                series[tunnel_class].append(shares[tunnel_class])
        return series

    def iotp_count_series(self, asn: Optional[int] = None) -> List[int]:
        """Per-cycle classified-IOTP counts (lower halves of Figs 10-15)."""
        counts = []
        for result in self.results:
            classification = (result.classification if asn is None
                              else result.for_as(asn))
            counts.append(len(classification))
        return counts

    def subclass_share_series(self, asn: Optional[int] = None
                              ) -> Dict[MonoFecSubclass, List[float]]:
        """Per-cycle Mono-FEC subclass split (Fig 13)."""
        series: Dict[MonoFecSubclass, List[float]] = {
            subclass: [] for subclass in MonoFecSubclass
        }
        for result in self.results:
            classification = (result.classification if asn is None
                              else result.for_as(asn))
            shares = classification.subclass_shares()
            for subclass in MonoFecSubclass:
                series[subclass].append(shares[subclass])
        return series

    def dynamic_ases(self) -> Dict[int, int]:
        """AS -> number of cycles it was tagged dynamic (re-injected)."""
        counts: Dict[int, int] = {}
        for result in self.results:
            for asn in result.filter_stats.reinjected_ases:
                counts[asn] = counts.get(asn, 0) + 1
        return counts

    # -- Table 2 -------------------------------------------------------------

    def yearly_address_stats(self, asn: int, cycles_per_year: int = 12
                             ) -> List[Dict[str, int]]:
        """Table 2 rows for one AS: per year, min/max/avg of MPLS and
        non-MPLS address counts."""
        rows = []
        for start in range(0, len(self.results), cycles_per_year):
            chunk = self.results[start:start + cycles_per_year]
            if not chunk:
                break
            mpls = [r.stats.mpls_by_as.get(asn, 0) for r in chunk]
            other = [r.stats.non_mpls_by_as.get(asn, 0) for r in chunk]
            rows.append({
                "year_index": start // cycles_per_year,
                "mpls_min": min(mpls),
                "mpls_max": max(mpls),
                "mpls_avg": round(sum(mpls) / len(mpls)),
                "non_mpls_min": min(other),
                "non_mpls_max": max(other),
                "non_mpls_avg": round(sum(other) / len(other)),
            })
        return rows

    def growth(self) -> Dict[str, float]:
        """Relative growth of MPLS and non-MPLS address counts.

        The paper compares first and last cycles (60% MPLS vs 21%
        non-MPLS growth over five years); averaging the first and last
        three cycles makes the figure robust to single-cycle dips.
        """
        def window_mean(results, pick) -> float:
            return sum(pick(r) for r in results) / len(results)

        head = self.results[:3]
        tail = self.results[-3:]
        mpls_start = window_mean(head, lambda r: r.stats.mpls_addresses)
        mpls_end = window_mean(tail, lambda r: r.stats.mpls_addresses)
        other_start = window_mean(
            head, lambda r: r.stats.non_mpls_addresses)
        other_end = window_mean(
            tail, lambda r: r.stats.non_mpls_addresses)
        return {
            "mpls": (mpls_end - mpls_start) / max(1.0, mpls_start),
            "non_mpls":
                (other_end - other_start) / max(1.0, other_start),
        }
