"""Longitudinal aggregation of per-cycle LPR results.

Collects the 60 :class:`~repro.core.pipeline.CycleResult` objects of a
study and exposes the exact series the paper's figures and tables plot:
per-cycle tunnel-trace shares (Fig 5a), MPLS/non-MPLS address counts
(Fig 5b and Table 2), cumulative filter survivor averages with confidence
intervals (Table 1), and per-AS class share series (Figs 10–15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.classification import MonoFecSubclass, TunnelClass
from ..core.pipeline import CycleResult

_FILTER_STAGES = ("incomplete", "intra_as", "target_as",
                  "transit_diversity", "persistence")

# Two-sided 95% Student-t critical values by degrees of freedom.  The
# normal z=1.96 understates small-sample uncertainty badly (df=2 needs
# 4.303); beyond df=29 the t distribution is within ~2% of normal, so
# the paper's n=60 campaign keeps its familiar 1.96 half-widths.
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045,
}


def t_critical_95(samples: int) -> float:
    """Two-sided 95% critical value for a sample of ``samples``.

    Student-t with ``samples - 1`` degrees of freedom below 30 samples,
    the normal approximation (1.96) from there on.
    """
    if samples < 2:
        raise ValueError(f"need >= 2 samples, got {samples}")
    return _T_CRITICAL_95.get(samples - 1, 1.96)


@dataclass(frozen=True)
class MeanWithCi:
    """A mean with its 95% confidence half-width (Student-t below 30
    samples, normal approximation from there on)."""

    mean: float
    half_width: float
    samples: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ±{self.half_width:.3f}"


def mean_with_ci(values: Sequence[float]) -> MeanWithCi:
    """Mean and 95% CI half-width of a sample (paper Table 1 format)."""
    if not values:
        raise ValueError("empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MeanWithCi(mean=mean, half_width=0.0, samples=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = t_critical_95(n) * math.sqrt(variance / n)
    return MeanWithCi(mean=mean, half_width=half_width, samples=n)


class LongitudinalStudy:
    """All cycles of one study, with series extraction helpers."""

    def __init__(self, results: Iterable[CycleResult]):
        self.results: List[CycleResult] = sorted(
            results, key=lambda r: r.cycle)
        if not self.results:
            raise ValueError("a study needs at least one cycle")

    @property
    def cycles(self) -> List[int]:
        """Cycle numbers, ascending."""
        return [result.cycle for result in self.results]

    def __len__(self) -> int:
        return len(self.results)

    # -- Fig 5 series --------------------------------------------------------

    def tunnel_trace_shares(self) -> List[Tuple[int, float]]:
        """Fig 5a: per cycle, share of traces with >= 1 explicit tunnel."""
        return [(r.cycle, r.stats.tunnel_trace_share)
                for r in self.results]

    def address_counts(self) -> List[Tuple[int, int, int]]:
        """Fig 5b: per cycle, (cycle, MPLS IPs, non-MPLS IPs)."""
        return [(r.cycle, r.stats.mpls_addresses,
                 r.stats.non_mpls_addresses) for r in self.results]

    # -- Table 1 -------------------------------------------------------------

    def filter_survival(self) -> Dict[str, MeanWithCi]:
        """Table 1: cumulative average survivor share after each filter.

        One ``proportions()`` call per cycle — the dict carries every
        stage, so building it once per result instead of once per
        (stage, result) pair keeps this a single pass.
        """
        series: Dict[str, List[float]] = {
            stage: [] for stage in _FILTER_STAGES}
        for result in self.results:
            proportions = result.filter_stats.proportions()
            for stage in _FILTER_STAGES:
                series[stage].append(proportions[stage])
        return {stage: mean_with_ci(values)
                for stage, values in series.items()}

    # -- per-AS series (Figs 10–15) ------------------------------------------

    def class_share_series(self, asn: Optional[int] = None
                           ) -> Dict[TunnelClass, List[float]]:
        """Per-cycle class shares, optionally restricted to one AS."""
        series: Dict[TunnelClass, List[float]] = {
            tunnel_class: [] for tunnel_class in TunnelClass
        }
        for result in self.results:
            classification = (result.classification if asn is None
                              else result.for_as(asn))
            shares = classification.shares()
            for tunnel_class in TunnelClass:
                series[tunnel_class].append(shares[tunnel_class])
        return series

    def iotp_count_series(self, asn: Optional[int] = None) -> List[int]:
        """Per-cycle classified-IOTP counts (lower halves of Figs 10-15)."""
        counts = []
        for result in self.results:
            classification = (result.classification if asn is None
                              else result.for_as(asn))
            counts.append(len(classification))
        return counts

    def subclass_share_series(self, asn: Optional[int] = None
                              ) -> Dict[MonoFecSubclass, List[float]]:
        """Per-cycle Mono-FEC subclass split (Fig 13)."""
        series: Dict[MonoFecSubclass, List[float]] = {
            subclass: [] for subclass in MonoFecSubclass
        }
        for result in self.results:
            classification = (result.classification if asn is None
                              else result.for_as(asn))
            shares = classification.subclass_shares()
            for subclass in MonoFecSubclass:
                series[subclass].append(shares[subclass])
        return series

    def dynamic_ases(self) -> Dict[int, int]:
        """AS -> number of cycles it was tagged dynamic (re-injected)."""
        counts: Dict[int, int] = {}
        for result in self.results:
            for asn in result.filter_stats.reinjected_ases:
                counts[asn] = counts.get(asn, 0) + 1
        return counts

    # -- Table 2 -------------------------------------------------------------

    def yearly_address_stats(self, asn: int, cycles_per_year: int = 12
                             ) -> List[Dict[str, int]]:
        """Table 2 rows for one AS: per year, min/max/avg of MPLS and
        non-MPLS address counts."""
        rows = []
        for start in range(0, len(self.results), cycles_per_year):
            chunk = self.results[start:start + cycles_per_year]
            if not chunk:
                break
            mpls = [r.stats.mpls_by_as.get(asn, 0) for r in chunk]
            other = [r.stats.non_mpls_by_as.get(asn, 0) for r in chunk]
            rows.append({
                "year_index": start // cycles_per_year,
                "mpls_min": min(mpls),
                "mpls_max": max(mpls),
                "mpls_avg": round(sum(mpls) / len(mpls)),
                "non_mpls_min": min(other),
                "non_mpls_max": max(other),
                "non_mpls_avg": round(sum(other) / len(other)),
            })
        return rows

    def growth(self) -> Dict[str, float]:
        """Relative growth of MPLS and non-MPLS address counts.

        The paper compares first and last cycles (60% MPLS vs 21%
        non-MPLS growth over five years); averaging the first and last
        three cycles makes the figure robust to single-cycle dips.
        """
        def window_mean(results, pick) -> float:
            return sum(pick(r) for r in results) / len(results)

        head = self.results[:3]
        tail = self.results[-3:]
        mpls_start = window_mean(head, lambda r: r.stats.mpls_addresses)
        mpls_end = window_mean(tail, lambda r: r.stats.mpls_addresses)
        other_start = window_mean(
            head, lambda r: r.stats.non_mpls_addresses)
        other_end = window_mean(
            tail, lambda r: r.stats.non_mpls_addresses)
        return {
            "mpls": (mpls_end - mpls_start) / max(1.0, mpls_start),
            "non_mpls":
                (other_end - other_start) / max(1.0, other_start),
        }
