"""Plain-text rendering of tables and figures.

Everything the paper plots is reproduced as terminal-friendly text:
aligned tables, horizontal bar charts for PDFs, and sparkline-style strip
charts for per-cycle series.  The benchmark harness prints these so that
a run's output can be eyeballed against the paper's figures directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

_BLOCKS = " ▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Align a list of rows under headers (monospace table)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))
    lines = [
        "  ".join(header.ljust(widths[i])
                  for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append("  ".join(text.ljust(widths[i])
                               for i, text in enumerate(row)))
    return "\n".join(lines)


def bar_chart(pdf: Mapping[object, float], width: int = 40,
              title: str = "") -> str:
    """Horizontal bars for a PDF (one line per bucket)."""
    lines = [title] if title else []
    peak = max(pdf.values(), default=0.0)
    for bucket in sorted(pdf, key=str):
        share = pdf[bucket]
        bar = "#" * (round(share / peak * width) if peak else 0)
        lines.append(f"{str(bucket):>12}  {share:6.3f}  {bar}")
    return "\n".join(lines)


def sparkline(values: Sequence[float],
              maximum: Optional[float] = None) -> str:
    """One-line strip chart of a series (unicode block characters)."""
    if not values:
        return ""
    peak = maximum if maximum is not None else max(values)
    if peak <= 0:
        return _BLOCKS[0] * len(values)
    scale = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[min(scale, round(max(0.0, value) / peak * scale))]
        for value in values
    )


def series_chart(series: Mapping[str, Sequence[float]],
                 cycles: Sequence[int], title: str = "",
                 shared_scale: bool = False) -> str:
    """Multi-series strip chart with a cycle axis.

    With ``shared_scale`` every series is normalized against the global
    maximum (needed when the lines are comparable counts); otherwise each
    series auto-scales (right for shares of different magnitudes).
    """
    lines = [title] if title else []
    label_width = max((len(name) for name in series), default=0)
    peak = None
    if shared_scale:
        peak = max((max(values, default=0.0)
                    for values in series.values()), default=0.0)
    for name, values in series.items():
        chart = sparkline(list(values), maximum=peak)
        peak_text = f"max={max(values, default=0):.3g}"
        lines.append(f"{name.ljust(label_width)}  |{chart}|  {peak_text}")
    if cycles:
        axis = f"cycles {cycles[0]}..{cycles[-1]}"
        lines.append(" " * label_width + f"  {axis}")
    return "\n".join(lines)


def stacked_shares(share_series: Mapping[str, Sequence[float]],
                   cycles: Sequence[int], title: str = "") -> str:
    """The paper's stacked-PDF view: per cycle, the dominant class.

    A full stacked area chart does not render in monospace; instead each
    cycle column shows the first letter of the class holding the largest
    share, which makes regime changes (e.g. AT&T's Mono-FEC to Multi-FEC
    transition) visible at a glance.
    """
    lines = [title] if title else []
    names = list(share_series)
    columns = []
    for index in range(len(cycles)):
        best_name = ""
        best_share = -1.0
        for name in names:
            share = share_series[name][index]
            if share > best_share:
                best_share = share
                best_name = name
        columns.append(best_name[0].upper() if best_share > 0 else ".")
    lines.append("".join(columns))
    lines.append(f"cycles {cycles[0]}..{cycles[-1]}  "
                 f"(letter = dominant class, '.' = no tunnels)")
    legend = ", ".join(f"{name[0].upper()}={name}" for name in names)
    lines.append(legend)
    return "\n".join(lines)
