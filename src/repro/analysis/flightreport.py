"""Post-hoc study reports from flight-recorder artifacts.

``repro report`` reconstructs what a (possibly long-gone) study run did
from the files the flight recorder left behind:

* the **events file** (``--events-out``, :mod:`repro.obs.events`
  JSONL) drives the run summary, the shard timeline (dispatches,
  restores, retries, subdivisions, failures), the cache hit rates and
  the per-cycle filter-drop trajectories;
* the optional **trace file** (``--trace-out``, Chrome trace-event
  JSON) adds wall-time: a per-stage table split into parent and worker
  tracks, and the top-N slowest cycles.

Everything here is a pure function of the artifact contents — the
report renders identically wherever and whenever it is run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..obs.events import Event, read_events
from .render import format_table, sparkline


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list of one Chrome trace JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: not a Chrome trace-event file")
    return payload["traceEvents"]


def _by_kind(events: Sequence[Event]) -> Dict[str, List[Event]]:
    grouped: Dict[str, List[Event]] = {}
    for event in events:
        grouped.setdefault(event.kind, []).append(event)
    return grouped


def _summary_section(grouped: Dict[str, List[Event]]) -> List[str]:
    lines = ["== study =="]
    start = grouped.get("study.start")
    done = grouped.get("study.done")
    plan = grouped.get("study.plan")
    if start:
        fields = start[0].fields
        lines.append(f"cycles: {fields.get('cycles', '?')}  "
                     f"workers: {fields.get('workers', '?')}")
    if plan:
        lines.append(f"planned shards: {plan[0].fields.get('shards')}")
    counts = {
        "restored from checkpoint": "shard.restored",
        "retries": "shard.retry",
        "subdivisions": "shard.subdivided",
        "checkpoint writes": "checkpoint.write",
        "checkpoint rejects": "checkpoint.rejected",
    }
    for label, kind in counts.items():
        if grouped.get(kind):
            lines.append(f"{label}: {len(grouped[kind])}")
    if done:
        lines.append(f"completed: {done[-1].fields.get('cycles')} "
                     f"cycle results")
    elif start:
        lines.append("completed: NO (no study.done event — the run "
                     "died or the file is truncated)")
    return lines


def _shard_timeline(grouped: Dict[str, List[Event]]) -> List[str]:
    """One row per shard the runner ever touched, in shard-id order."""
    shards: Dict[int, Dict[str, Any]] = {}

    def cell(shard_id: int) -> Dict[str, Any]:
        return shards.setdefault(shard_id, {
            "work": "", "status": "pending", "attempts": 0,
            "traces": "", "note": ""})

    for event in grouped.get("shard.dispatch", []):
        entry = cell(event.fields["shard"])
        entry["work"] = _work_label(event.fields)
        entry["attempts"] = max(entry["attempts"],
                                event.fields.get("attempt", 1))
        if entry["status"] == "pending":
            entry["status"] = "dispatched"
    for event in grouped.get("shard.restored", []):
        entry = cell(event.fields["shard"])
        entry["work"] = _work_label(event.fields)
        entry["status"] = "restored"
    for event in grouped.get("shard.retry", []):
        entry = cell(event.fields["shard"])
        entry["attempts"] = max(entry["attempts"],
                                event.fields.get("attempt", 0))
        if entry["status"] != "done":
            entry["status"] = "retrying"
        entry["note"] = event.fields.get("error", "")[:40]
    for event in grouped.get("shard.subdivided", []):
        entry = cell(event.fields["parent"])
        entry["status"] = "subdivided"
        children = event.fields.get("children", [])
        entry["note"] = "-> " + ",".join(str(c) for c in children)
    for event in grouped.get("shard.done", []):
        entry = cell(event.fields["shard"])
        entry["status"] = "done"
        entry["traces"] = event.fields.get("traces", "")
    for event in grouped.get("shard.failed", []):
        entry = cell(event.fields["shard"])
        entry["status"] = "FAILED"
        entry["note"] = event.fields.get("error", "")[:40]

    if not shards:
        return []
    rows = [
        [shard_id, entry["work"], entry["status"],
         entry["attempts"] or "", entry["traces"], entry["note"]]
        for shard_id, entry in sorted(shards.items())
    ]
    return ["== shard timeline ==",
            format_table(["shard", "work", "status", "attempts",
                          "traces", "note"], rows)]


def _work_label(fields: Dict[str, Any]) -> str:
    first, last = fields.get("first"), fields.get("last")
    block = fields.get("block")
    if block is not None:
        return f"cycle {first} block {block[0]}/{block[1]}"
    if first == last:
        return f"cycle {first}"
    return f"cycles {first}-{last}"


def _hit_rate_line(label: str, hits: float, misses: float) -> str:
    """One cache family's line; a partial events file may have seen
    only hits or only misses, so the rate is guarded, never assumed."""
    total = hits + misses
    rate = f"  hit rate: {hits / total:.1%}" if total else ""
    return f"{label}: hits {hits:.0f}  misses {misses:.0f}{rate}"


def _cache_section(grouped: Dict[str, List[Event]]) -> List[str]:
    """Per-family cache telemetry: the forwarding-path caches (summed
    over ``shard.done`` / ``cache.flush`` events), the IP2AS block
    memo and the columnar engine's encode/kernel counters (both from
    ``cycle.metrics`` registry deltas).  Families absent from the
    events file are simply omitted — a partial or serial-only file
    must never divide by zero."""
    hits = misses = 0
    for event in grouped.get("shard.done", []):
        hits += event.fields.get("cache_hits", 0)
        misses += event.fields.get("cache_misses", 0)
    for event in grouped.get("cache.flush", []):
        hits += event.fields.get("hits", 0)
        misses += event.fields.get("misses", 0)

    metric_rows = [event.fields.get("metrics", {})
                   for event in grouped.get("cycle.metrics", [])]

    def metric(name: str, **labels: Any) -> float:
        return sum(_cycle_metric(metrics, name, **labels)
                   for metrics in metric_rows)

    ip2as_hits = metric("ip2as_lookup_cache_hits_total")
    ip2as_misses = metric("ip2as_lookup_cache_misses_total")
    engine_traces = metric("engine_rows_encoded_total", kind="trace")
    engine_hops = metric("engine_rows_encoded_total", kind="hop")
    engine_seconds = metric("engine_kernel_seconds")

    lines = []
    if hits + misses:
        lines.append(_hit_rate_line("forwarding", hits, misses))
    if ip2as_hits + ip2as_misses:
        lines.append(_hit_rate_line("ip2as memo", ip2as_hits,
                                    ip2as_misses))
    if engine_traces + engine_hops:
        line = (f"columnar engine: {engine_traces:.0f} traces / "
                f"{engine_hops:.0f} hops encoded")
        if engine_seconds:
            line += f"  kernel time: {engine_seconds:.2f}s"
        lines.append(line)
    if not lines:
        return []
    return ["== forwarding-path caches =="] + lines


def _snapshot_section(grouped: Dict[str, List[Event]]) -> List[str]:
    """Warm-start state-store activity (:mod:`repro.par.statestore`).

    ``snapshot.hit`` events carry how many replay cycles each restore
    saved; misses mean a cold replay followed, rejects mean a file was
    unusable (corrupt, foreign spec or version) and the search fell
    back to an older snapshot.
    """
    hits = grouped.get("snapshot.hit", [])
    misses = grouped.get("snapshot.miss", [])
    writes = grouped.get("snapshot.write", [])
    rejected = grouped.get("snapshot.rejected", [])
    if not (hits or misses or writes or rejected):
        return []
    saved = sum(event.fields.get("saved", 0) for event in hits)
    lines = ["== warm-start state snapshots ==",
             f"restores: {len(hits)}  cold replays: {len(misses)}  "
             f"writes: {len(writes)}  rejected: {len(rejected)}"]
    if hits:
        lines.append(f"replay cycles saved: {saved:.0f}")
    if rejected:
        reasons: Dict[str, int] = {}
        for event in rejected:
            reason = event.fields.get("reason", "?")
            reasons[reason] = reasons.get(reason, 0) + 1
        lines.append("rejects by reason: " + "  ".join(
            f"{reason}: {count}"
            for reason, count in sorted(reasons.items())))
    return lines


_FILTERS = ("incomplete", "intra_as", "target_as",
            "transit_diversity", "persistence")


def _cycle_metric(metrics: Dict[str, Any], name: str,
                  **labels: Any) -> float:
    total = 0.0
    for entry in metrics.get(name, {}).get("values", []):
        if all(entry["labels"].get(k) == v for k, v in labels.items()):
            total += entry["value"]
    return total


def _filter_section(grouped: Dict[str, List[Event]]) -> List[str]:
    """Per-filter drop counts across cycles, as sparkline trajectories.

    ``cycle.metrics`` events carry each cycle's registry delta; the
    ``lsps_dropped_total{filter=...}`` series inside reconstruct the
    funnel the paper's Table 1 footnotes describe.
    """
    cycles = sorted(grouped.get("cycle.metrics", []),
                    key=lambda e: e.fields.get("cycle", 0))
    if not cycles:
        return []
    extracted = [_cycle_metric(e.fields.get("metrics", {}),
                               "lsps_extracted_total") for e in cycles]
    series = {
        name: [_cycle_metric(e.fields.get("metrics", {}),
                             "lsps_dropped_total", filter=name)
               for e in cycles]
        for name in _FILTERS
    }
    lines = ["== filter drops per cycle =="]
    width = max(len(name) for name in ("extracted",) + _FILTERS)
    lines.append(f"{'extracted'.ljust(width)} "
                 f"{sparkline(extracted)} "
                 f"(total {sum(extracted):.0f})")
    for name in _FILTERS:
        values = series[name]
        lines.append(f"{name.ljust(width)} {sparkline(values)} "
                     f"(total {sum(values):.0f})")
    return lines


def _verify_section(grouped: Dict[str, List[Event]]) -> List[str]:
    """Differential-oracle activity (:mod:`repro.verify`).

    A ``repro verify`` run leaves one ``verify.config`` event per
    configuration executed, a ``verify.divergence`` /
    ``verify.violation`` per finding, and — when the shrinker ran — a
    ``verify.minimal`` carrying the standalone repro command.
    """
    configs = grouped.get("verify.config", [])
    violations = grouped.get("verify.violation", [])
    divergences = grouped.get("verify.divergence", [])
    minimal = grouped.get("verify.minimal", [])
    shrink_steps = grouped.get("verify.shrink.step", [])
    if not (configs or violations or divergences):
        return []
    lines = ["== differential verification =="]
    if configs:
        rows = [[event.fields.get("config", "?"),
                 event.fields.get("cycles", ""),
                 event.fields.get("status", "?")]
                for event in configs]
        lines.append(format_table(["config", "cycles", "status"],
                                  rows))
    for event in violations:
        where = (f" (cycle {event.fields['cycle']})"
                 if "cycle" in event.fields else "")
        lines.append(f"invariant violation{where}: "
                     f"[{event.fields.get('checker', '?')}] "
                     f"{event.fields.get('message', '')}")
    for event in divergences:
        where = (f"cycle {event.fields['cycle']}, "
                 if "cycle" in event.fields else "")
        lines.append(f"divergence: {event.fields.get('config', '?')} "
                     f"at {where}stage "
                     f"{event.fields.get('stage', '?')}")
    for event in minimal:
        lines.append(f"minimal repro "
                     f"({event.fields.get('trials', '?')} shrink "
                     f"trials, {len(shrink_steps)} steps recorded): "
                     f"{event.fields.get('command', '?')}")
    return lines


def _stage_section(trace_events: Sequence[Dict[str, Any]]) -> List[str]:
    """Per-stage totals from the Chrome trace, parent vs workers.

    Track 0 is the parent process; grafted worker subtrees live on
    ``shard + 1`` (:func:`repro.obs.export.to_chrome_trace`), so the
    split shows where a sharded study really spent its time.
    """
    stages: Dict[Any, Dict[str, float]] = {}
    order: List[Any] = []
    for event in trace_events:
        if event.get("ph") != "X":
            continue
        side = "parent" if event.get("tid", 0) == 0 else "worker"
        key = (event["name"], side)
        if key not in stages:
            stages[key] = {"calls": 0, "total_us": 0.0}
            order.append(key)
        stages[key]["calls"] += 1
        stages[key]["total_us"] += event.get("dur", 0.0)
    if not stages:
        return []
    rows = [
        [name, side, int(cell["calls"]),
         f"{cell['total_us'] / 1e6:.3f}"]
        for (name, side), cell in
        ((key, stages[key]) for key in order)
    ]
    return ["== per-stage time (from trace) ==",
            format_table(["span", "side", "calls", "total s"], rows)]


def _slowest_cycles(trace_events: Sequence[Dict[str, Any]],
                    top: int = 5) -> List[str]:
    """Top-N ``pipeline.cycle`` spans by duration, wherever they ran."""
    cycles = [
        (event.get("args", {}).get("cycle"), event.get("dur", 0.0),
         "parent" if event.get("tid", 0) == 0 else "worker")
        for event in trace_events
        if event.get("ph") == "X" and event["name"] == "pipeline.cycle"
    ]
    cycles = [entry for entry in cycles if entry[0] is not None]
    if not cycles:
        return []
    cycles.sort(key=lambda entry: -entry[1])
    rows = [[cycle, f"{dur / 1e6:.3f}", side]
            for cycle, dur, side in cycles[:top]]
    return [f"== slowest cycles (top {min(top, len(cycles))}) ==",
            format_table(["cycle", "seconds", "side"], rows)]


def flight_report(events_path: Union[str, Path],
                  trace_path: Optional[Union[str, Path]] = None,
                  top: int = 5) -> str:
    """The full post-hoc report as one printable string."""
    grouped = _by_kind(read_events(events_path))
    sections = [
        _summary_section(grouped),
        _shard_timeline(grouped),
        _cache_section(grouped),
        _snapshot_section(grouped),
        _filter_section(grouped),
        _verify_section(grouped),
    ]
    if trace_path is not None:
        trace_events = load_trace(trace_path)
        sections.append(_stage_section(trace_events))
        sections.append(_slowest_cycles(trace_events, top=top))
    return "\n\n".join("\n".join(section)
                       for section in sections if section)
