"""Post-hoc study reports from flight-recorder artifacts.

``repro report`` reconstructs what a (possibly long-gone) study run did
from the files the flight recorder left behind:

* the **events file** (``--events-out``, :mod:`repro.obs.events`
  JSONL) drives the run summary, the shard timeline (dispatches,
  restores, retries, subdivisions, failures), the cache hit rates, the
  per-cycle filter-drop trajectories, and — when the run served live
  telemetry — the per-process resource usage and stall sections;
* the optional **trace file** (``--trace-out``, Chrome trace-event
  JSON) adds wall-time: a per-stage table split into parent and worker
  tracks, and the top-N slowest cycles.

Everything here is a pure function of the artifact contents — the
report renders identically wherever and whenever it is run.  Two
output forms share the same section builders: :func:`flight_report`
(the printable text) and :func:`flight_report_data` (one JSON object
with the same sections, ``repro report --format json``) — the latter
is what external dashboards compose with the live ``/metrics`` and
``/progress`` endpoints.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..obs.events import Event, read_events
from .render import format_table, sparkline


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list of one Chrome trace JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: not a Chrome trace-event file")
    return payload["traceEvents"]


def _by_kind(events: Sequence[Event]) -> Dict[str, List[Event]]:
    grouped: Dict[str, List[Event]] = {}
    for event in events:
        grouped.setdefault(event.kind, []).append(event)
    return grouped


# -- study summary -----------------------------------------------------------

_SUMMARY_COUNTS = {
    "restored from checkpoint": "shard.restored",
    "retries": "shard.retry",
    "subdivisions": "shard.subdivided",
    "checkpoint writes": "checkpoint.write",
    "checkpoint rejects": "checkpoint.rejected",
}


def _summary_section(grouped: Dict[str, List[Event]]) -> List[str]:
    lines = ["== study =="]
    start = grouped.get("study.start")
    done = grouped.get("study.done")
    plan = grouped.get("study.plan")
    if start:
        fields = start[0].fields
        lines.append(f"cycles: {fields.get('cycles', '?')}  "
                     f"workers: {fields.get('workers', '?')}")
    if plan:
        lines.append(f"planned shards: {plan[0].fields.get('shards')}")
    for label, kind in _SUMMARY_COUNTS.items():
        if grouped.get(kind):
            lines.append(f"{label}: {len(grouped[kind])}")
    if done:
        lines.append(f"completed: {done[-1].fields.get('cycles')} "
                     f"cycle results")
    elif start:
        lines.append("completed: NO (no study.done event — the run "
                     "died or the file is truncated)")
    return lines


def _summary_data(grouped: Dict[str, List[Event]]) -> Dict[str, Any]:
    data: Dict[str, Any] = {}
    start = grouped.get("study.start")
    done = grouped.get("study.done")
    plan = grouped.get("study.plan")
    if start:
        data["cycles"] = start[0].fields.get("cycles")
        data["workers"] = start[0].fields.get("workers")
    if plan:
        data["planned_shards"] = plan[0].fields.get("shards")
    for label, kind in _SUMMARY_COUNTS.items():
        if grouped.get(kind):
            data[label.replace(" ", "_")] = len(grouped[kind])
    data["completed"] = bool(done)
    if done:
        data["completed_cycles"] = done[-1].fields.get("cycles")
    return data


# -- shard timeline ----------------------------------------------------------

def _shard_cells(grouped: Dict[str, List[Event]]
                 ) -> Dict[int, Dict[str, Any]]:
    """Fold the shard lifecycle events into one cell per shard id."""
    shards: Dict[int, Dict[str, Any]] = {}

    def cell(shard_id: int) -> Dict[str, Any]:
        return shards.setdefault(shard_id, {
            "work": "", "status": "pending", "attempts": 0,
            "traces": "", "note": ""})

    for event in grouped.get("shard.dispatch", []):
        entry = cell(event.fields["shard"])
        entry["work"] = _work_label(event.fields)
        entry["attempts"] = max(entry["attempts"],
                                event.fields.get("attempt", 1))
        if entry["status"] == "pending":
            entry["status"] = "dispatched"
    for event in grouped.get("shard.restored", []):
        entry = cell(event.fields["shard"])
        entry["work"] = _work_label(event.fields)
        entry["status"] = "restored"
    for event in grouped.get("shard.retry", []):
        entry = cell(event.fields["shard"])
        entry["attempts"] = max(entry["attempts"],
                                event.fields.get("attempt", 0))
        if entry["status"] != "done":
            entry["status"] = "retrying"
        entry["note"] = event.fields.get("error", "")[:40]
    for event in grouped.get("shard.subdivided", []):
        entry = cell(event.fields["parent"])
        entry["status"] = "subdivided"
        children = event.fields.get("children", [])
        entry["note"] = "-> " + ",".join(str(c) for c in children)
    for event in grouped.get("shard.done", []):
        entry = cell(event.fields["shard"])
        entry["status"] = "done"
        entry["traces"] = event.fields.get("traces", "")
    for event in grouped.get("shard.failed", []):
        entry = cell(event.fields["shard"])
        entry["status"] = "FAILED"
        entry["note"] = event.fields.get("error", "")[:40]
    return shards


def _shard_timeline(grouped: Dict[str, List[Event]]) -> List[str]:
    """One row per shard the runner ever touched, in shard-id order."""
    shards = _shard_cells(grouped)
    if not shards:
        return []
    rows = [
        [shard_id, entry["work"], entry["status"],
         entry["attempts"] or "", entry["traces"], entry["note"]]
        for shard_id, entry in sorted(shards.items())
    ]
    return ["== shard timeline ==",
            format_table(["shard", "work", "status", "attempts",
                          "traces", "note"], rows)]


def _shard_rows(grouped: Dict[str, List[Event]]) -> List[Dict[str, Any]]:
    return [
        {"shard": shard_id, "work": entry["work"],
         "status": entry["status"], "attempts": entry["attempts"],
         "traces": entry["traces"] if entry["traces"] != "" else None,
         "note": entry["note"]}
        for shard_id, entry in sorted(_shard_cells(grouped).items())
    ]


def _work_label(fields: Dict[str, Any]) -> str:
    first, last = fields.get("first"), fields.get("last")
    block = fields.get("block")
    if block is not None:
        return f"cycle {first} block {block[0]}/{block[1]}"
    if first == last:
        return f"cycle {first}"
    return f"cycles {first}-{last}"


# -- caches ------------------------------------------------------------------

def _hit_rate_line(label: str, hits: float, misses: float) -> str:
    """One cache family's line; a partial events file may have seen
    only hits or only misses, so the rate is guarded, never assumed."""
    total = hits + misses
    rate = f"  hit rate: {hits / total:.1%}" if total else ""
    return f"{label}: hits {hits:.0f}  misses {misses:.0f}{rate}"


def _cache_totals(grouped: Dict[str, List[Event]]) -> Dict[str, float]:
    """Raw cache/engine totals the section renderers share."""
    hits = misses = 0
    for event in grouped.get("shard.done", []):
        hits += event.fields.get("cache_hits", 0)
        misses += event.fields.get("cache_misses", 0)
    for event in grouped.get("cache.flush", []):
        hits += event.fields.get("hits", 0)
        misses += event.fields.get("misses", 0)

    metric_rows = [event.fields.get("metrics", {})
                   for event in grouped.get("cycle.metrics", [])]

    def metric(name: str, **labels: Any) -> float:
        return sum(_cycle_metric(metrics, name, **labels)
                   for metrics in metric_rows)

    return {
        "hits": hits,
        "misses": misses,
        "ip2as_hits": metric("ip2as_lookup_cache_hits_total"),
        "ip2as_misses": metric("ip2as_lookup_cache_misses_total"),
        "engine_traces": metric("engine_rows_encoded_total",
                                kind="trace"),
        "engine_hops": metric("engine_rows_encoded_total", kind="hop"),
        "engine_seconds": metric("engine_kernel_seconds"),
    }


def _cache_section(grouped: Dict[str, List[Event]]) -> List[str]:
    """Per-family cache telemetry: the forwarding-path caches (summed
    over ``shard.done`` / ``cache.flush`` events), the IP2AS block
    memo and the columnar engine's encode/kernel counters (both from
    ``cycle.metrics`` registry deltas).  Families absent from the
    events file are simply omitted — a partial or serial-only file
    must never divide by zero."""
    totals = _cache_totals(grouped)
    lines = []
    if totals["hits"] + totals["misses"]:
        lines.append(_hit_rate_line("forwarding", totals["hits"],
                                    totals["misses"]))
    if totals["ip2as_hits"] + totals["ip2as_misses"]:
        lines.append(_hit_rate_line("ip2as memo", totals["ip2as_hits"],
                                    totals["ip2as_misses"]))
    if totals["engine_traces"] + totals["engine_hops"]:
        line = (f"columnar engine: {totals['engine_traces']:.0f} "
                f"traces / "
                f"{totals['engine_hops']:.0f} hops encoded")
        if totals["engine_seconds"]:
            line += f"  kernel time: {totals['engine_seconds']:.2f}s"
        lines.append(line)
    if not lines:
        return []
    return ["== forwarding-path caches =="] + lines


def _cache_data(grouped: Dict[str, List[Event]]) -> Dict[str, Any]:
    totals = _cache_totals(grouped)
    data: Dict[str, Any] = {}
    if totals["hits"] + totals["misses"]:
        data["forwarding"] = {"hits": totals["hits"],
                              "misses": totals["misses"]}
    if totals["ip2as_hits"] + totals["ip2as_misses"]:
        data["ip2as_memo"] = {"hits": totals["ip2as_hits"],
                              "misses": totals["ip2as_misses"]}
    if totals["engine_traces"] + totals["engine_hops"]:
        data["columnar_engine"] = {
            "traces_encoded": totals["engine_traces"],
            "hops_encoded": totals["engine_hops"],
            "kernel_seconds": totals["engine_seconds"],
        }
    return data


# -- warm-start state snapshots ----------------------------------------------

def _snapshot_totals(grouped: Dict[str, List[Event]]
                     ) -> Optional[Dict[str, Any]]:
    hits = grouped.get("snapshot.hit", [])
    misses = grouped.get("snapshot.miss", [])
    writes = grouped.get("snapshot.write", [])
    rejected = grouped.get("snapshot.rejected", [])
    if not (hits or misses or writes or rejected):
        return None
    reasons: Dict[str, int] = {}
    for event in rejected:
        reason = event.fields.get("reason", "?")
        reasons[reason] = reasons.get(reason, 0) + 1
    return {
        "restores": len(hits),
        "cold_replays": len(misses),
        "writes": len(writes),
        "rejected": len(rejected),
        "replay_cycles_saved": sum(event.fields.get("saved", 0)
                                   for event in hits),
        "rejects_by_reason": reasons,
    }


def _snapshot_section(grouped: Dict[str, List[Event]]) -> List[str]:
    """Warm-start state-store activity (:mod:`repro.par.statestore`).

    ``snapshot.hit`` events carry how many replay cycles each restore
    saved; misses mean a cold replay followed, rejects mean a file was
    unusable (corrupt, foreign spec or version) and the search fell
    back to an older snapshot.
    """
    totals = _snapshot_totals(grouped)
    if totals is None:
        return []
    lines = ["== warm-start state snapshots ==",
             f"restores: {totals['restores']}  "
             f"cold replays: {totals['cold_replays']}  "
             f"writes: {totals['writes']}  "
             f"rejected: {totals['rejected']}"]
    if totals["restores"]:
        lines.append(f"replay cycles saved: "
                     f"{totals['replay_cycles_saved']:.0f}")
    if totals["rejected"]:
        lines.append("rejects by reason: " + "  ".join(
            f"{reason}: {count}"
            for reason, count in
            sorted(totals["rejects_by_reason"].items())))
    return lines


# -- resource usage (live telemetry plane) -----------------------------------

def _shard_sort_key(shard: str) -> Any:
    """Numeric shards first in order, then named ones ("parent")."""
    return (0, int(shard)) if shard.isdigit() else (1, shard)


def _resource_rows(grouped: Dict[str, List[Event]]
                   ) -> List[Dict[str, Any]]:
    """Per-process aggregation of ``worker.resources`` samples.

    RSS aggregates to peak and median; CPU times are cumulative so the
    per-process value is the max seen.  CPU efficiency — CPU seconds
    burned per wall second between a process's first and last sample —
    needs event timestamps, so it is None for untimed runs.
    """
    cells: Dict[str, Dict[str, Any]] = {}
    for event in grouped.get("worker.resources", []):
        shard = str(event.fields.get("shard", "?"))
        cell = cells.setdefault(shard, {
            "samples": 0, "rss": [], "cpu_user": 0.0, "cpu_sys": 0.0,
            "cpu_first": None, "ts_first": None, "ts_last": None})
        cell["samples"] += 1
        rss = event.fields.get("rss_bytes")
        if rss is not None:
            cell["rss"].append(rss)
        user = event.fields.get("cpu_user_s", 0.0)
        system = event.fields.get("cpu_sys_s", 0.0)
        cell["cpu_user"] = max(cell["cpu_user"], user)
        cell["cpu_sys"] = max(cell["cpu_sys"], system)
        if cell["cpu_first"] is None:
            cell["cpu_first"] = user + system
        if event.ts is not None:
            if cell["ts_first"] is None:
                cell["ts_first"] = event.ts
            cell["ts_last"] = event.ts
    rows = []
    for shard in sorted(cells, key=_shard_sort_key):
        cell = cells[shard]
        efficiency = None
        if cell["ts_first"] is not None:
            span = cell["ts_last"] - cell["ts_first"]
            if span > 0:
                burned = max(0.0, cell["cpu_user"] + cell["cpu_sys"]
                             - cell["cpu_first"])
                efficiency = round(burned / span, 3)
        rows.append({
            "shard": shard,
            "samples": cell["samples"],
            "peak_rss_bytes": max(cell["rss"], default=0),
            "median_rss_bytes": (statistics.median(cell["rss"])
                                 if cell["rss"] else 0),
            "cpu_user_s": round(cell["cpu_user"], 3),
            "cpu_sys_s": round(cell["cpu_sys"], 3),
            "cpu_efficiency": efficiency,
        })
    return rows


def _format_bytes(count: float) -> str:
    count = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            if unit == "B":
                return f"{count:.0f} {unit}"
            return f"{count:.1f} {unit}"
        count /= 1024.0
    raise AssertionError("unreachable")


def _resource_section(grouped: Dict[str, List[Event]]) -> List[str]:
    rows = _resource_rows(grouped)
    if not rows:
        return []
    table_rows = [
        [row["shard"], row["samples"],
         _format_bytes(row["peak_rss_bytes"]),
         _format_bytes(row["median_rss_bytes"]),
         f"{row['cpu_user_s']:.2f}", f"{row['cpu_sys_s']:.2f}",
         (f"{row['cpu_efficiency']:.0%}"
          if row["cpu_efficiency"] is not None else "")]
        for row in rows
    ]
    return ["== resource usage ==",
            format_table(["shard", "samples", "peak rss", "median rss",
                          "cpu user s", "cpu sys s", "cpu eff"],
                         table_rows)]


# -- stalls ------------------------------------------------------------------

def _stall_rows(grouped: Dict[str, List[Event]]) -> List[Dict[str, Any]]:
    stalled = grouped.get("shard.stalled", [])
    if not stalled:
        return []
    recovered = {event.fields.get("shard")
                 for event in grouped.get("shard.recovered", [])}
    return [
        {"shard": event.fields.get("shard"),
         "timeout_s": event.fields.get("timeout"),
         "recovered": event.fields.get("shard") in recovered}
        for event in stalled
    ]


def _stall_section(grouped: Dict[str, List[Event]]) -> List[str]:
    rows = _stall_rows(grouped)
    if not rows:
        return []
    lines = ["== stalls =="]
    for row in rows:
        fate = "recovered" if row["recovered"] else "NOT recovered"
        lines.append(f"shard {row['shard']}: heartbeats silent past "
                     f"the {row['timeout_s']}s deadline ({fate})")
    return lines


# -- filters -----------------------------------------------------------------

_FILTERS = ("incomplete", "intra_as", "target_as",
            "transit_diversity", "persistence")


def _cycle_metric(metrics: Dict[str, Any], name: str,
                  **labels: Any) -> float:
    total = 0.0
    for entry in metrics.get(name, {}).get("values", []):
        if all(entry["labels"].get(k) == v for k, v in labels.items()):
            total += entry["value"]
    return total


def _filter_series(grouped: Dict[str, List[Event]]
                   ) -> Optional[Dict[str, Any]]:
    cycles = sorted(grouped.get("cycle.metrics", []),
                    key=lambda e: e.fields.get("cycle", 0))
    if not cycles:
        return None
    return {
        "cycles": [e.fields.get("cycle") for e in cycles],
        "extracted": [_cycle_metric(e.fields.get("metrics", {}),
                                    "lsps_extracted_total")
                      for e in cycles],
        "dropped": {
            name: [_cycle_metric(e.fields.get("metrics", {}),
                                 "lsps_dropped_total", filter=name)
                   for e in cycles]
            for name in _FILTERS
        },
    }


def _filter_section(grouped: Dict[str, List[Event]]) -> List[str]:
    """Per-filter drop counts across cycles, as sparkline trajectories.

    ``cycle.metrics`` events carry each cycle's registry delta; the
    ``lsps_dropped_total{filter=...}`` series inside reconstruct the
    funnel the paper's Table 1 footnotes describe.
    """
    series = _filter_series(grouped)
    if series is None:
        return []
    extracted = series["extracted"]
    lines = ["== filter drops per cycle =="]
    width = max(len(name) for name in ("extracted",) + _FILTERS)
    lines.append(f"{'extracted'.ljust(width)} "
                 f"{sparkline(extracted)} "
                 f"(total {sum(extracted):.0f})")
    for name in _FILTERS:
        values = series["dropped"][name]
        lines.append(f"{name.ljust(width)} {sparkline(values)} "
                     f"(total {sum(values):.0f})")
    return lines


# -- differential verification -----------------------------------------------

def _verify_section(grouped: Dict[str, List[Event]]) -> List[str]:
    """Differential-oracle activity (:mod:`repro.verify`).

    A ``repro verify`` run leaves one ``verify.config`` event per
    configuration executed, a ``verify.divergence`` /
    ``verify.violation`` per finding, and — when the shrinker ran — a
    ``verify.minimal`` carrying the standalone repro command.
    """
    configs = grouped.get("verify.config", [])
    violations = grouped.get("verify.violation", [])
    divergences = grouped.get("verify.divergence", [])
    minimal = grouped.get("verify.minimal", [])
    shrink_steps = grouped.get("verify.shrink.step", [])
    if not (configs or violations or divergences):
        return []
    lines = ["== differential verification =="]
    if configs:
        rows = [[event.fields.get("config", "?"),
                 event.fields.get("cycles", ""),
                 event.fields.get("status", "?")]
                for event in configs]
        lines.append(format_table(["config", "cycles", "status"],
                                  rows))
    for event in violations:
        where = (f" (cycle {event.fields['cycle']})"
                 if "cycle" in event.fields else "")
        lines.append(f"invariant violation{where}: "
                     f"[{event.fields.get('checker', '?')}] "
                     f"{event.fields.get('message', '')}")
    for event in divergences:
        where = (f"cycle {event.fields['cycle']}, "
                 if "cycle" in event.fields else "")
        lines.append(f"divergence: {event.fields.get('config', '?')} "
                     f"at {where}stage "
                     f"{event.fields.get('stage', '?')}")
    for event in minimal:
        lines.append(f"minimal repro "
                     f"({event.fields.get('trials', '?')} shrink "
                     f"trials, {len(shrink_steps)} steps recorded): "
                     f"{event.fields.get('command', '?')}")
    return lines


def _verify_data(grouped: Dict[str, List[Event]]) -> Dict[str, Any]:
    configs = grouped.get("verify.config", [])
    violations = grouped.get("verify.violation", [])
    divergences = grouped.get("verify.divergence", [])
    minimal = grouped.get("verify.minimal", [])
    if not (configs or violations or divergences):
        return {}
    return {
        "configs": [dict(event.fields) for event in configs],
        "violations": [dict(event.fields) for event in violations],
        "divergences": [dict(event.fields) for event in divergences],
        "minimal": [dict(event.fields) for event in minimal],
    }


# -- trace-derived sections --------------------------------------------------

def _stage_rows(trace_events: Sequence[Dict[str, Any]]
                ) -> List[Dict[str, Any]]:
    stages: Dict[Any, Dict[str, float]] = {}
    order: List[Any] = []
    for event in trace_events:
        if event.get("ph") != "X":
            continue
        side = "parent" if event.get("tid", 0) == 0 else "worker"
        key = (event["name"], side)
        if key not in stages:
            stages[key] = {"calls": 0, "total_us": 0.0}
            order.append(key)
        stages[key]["calls"] += 1
        stages[key]["total_us"] += event.get("dur", 0.0)
    return [
        {"span": name, "side": side,
         "calls": int(stages[(name, side)]["calls"]),
         "total_s": round(stages[(name, side)]["total_us"] / 1e6, 6)}
        for name, side in order
    ]


def _stage_section(trace_events: Sequence[Dict[str, Any]]) -> List[str]:
    """Per-stage totals from the Chrome trace, parent vs workers.

    Track 0 is the parent process; grafted worker subtrees live on
    ``shard + 1`` (:func:`repro.obs.export.to_chrome_trace`), so the
    split shows where a sharded study really spent its time.
    """
    rows = _stage_rows(trace_events)
    if not rows:
        return []
    table_rows = [
        [row["span"], row["side"], row["calls"],
         f"{row['total_s']:.3f}"]
        for row in rows
    ]
    return ["== per-stage time (from trace) ==",
            format_table(["span", "side", "calls", "total s"],
                         table_rows)]


def _slowest_rows(trace_events: Sequence[Dict[str, Any]],
                  top: int = 5) -> List[Dict[str, Any]]:
    cycles = [
        (event.get("args", {}).get("cycle"), event.get("dur", 0.0),
         "parent" if event.get("tid", 0) == 0 else "worker")
        for event in trace_events
        if event.get("ph") == "X" and event["name"] == "pipeline.cycle"
    ]
    cycles = [entry for entry in cycles if entry[0] is not None]
    cycles.sort(key=lambda entry: -entry[1])
    return [{"cycle": cycle, "seconds": round(dur / 1e6, 6),
             "side": side}
            for cycle, dur, side in cycles[:top]]


def _slowest_cycles(trace_events: Sequence[Dict[str, Any]],
                    top: int = 5) -> List[str]:
    """Top-N ``pipeline.cycle`` spans by duration, wherever they ran."""
    total = sum(1 for event in trace_events
                if event.get("ph") == "X"
                and event["name"] == "pipeline.cycle"
                and event.get("args", {}).get("cycle") is not None)
    rows = _slowest_rows(trace_events, top=top)
    if not rows:
        return []
    table_rows = [[row["cycle"], f"{row['seconds']:.3f}", row["side"]]
                  for row in rows]
    return [f"== slowest cycles (top {min(top, total)}) ==",
            format_table(["cycle", "seconds", "side"], table_rows)]


# -- entry points ------------------------------------------------------------

def flight_report(events_path: Union[str, Path],
                  trace_path: Optional[Union[str, Path]] = None,
                  top: int = 5) -> str:
    """The full post-hoc report as one printable string."""
    grouped = _by_kind(read_events(events_path))
    sections = [
        _summary_section(grouped),
        _shard_timeline(grouped),
        _cache_section(grouped),
        _snapshot_section(grouped),
        _resource_section(grouped),
        _stall_section(grouped),
        _filter_section(grouped),
        _verify_section(grouped),
    ]
    if trace_path is not None:
        trace_events = load_trace(trace_path)
        sections.append(_stage_section(trace_events))
        sections.append(_slowest_cycles(trace_events, top=top))
    return "\n\n".join("\n".join(section)
                       for section in sections if section)


def flight_report_data(events_path: Union[str, Path],
                       trace_path: Optional[Union[str, Path]] = None,
                       top: int = 5) -> Dict[str, Any]:
    """The same report as one JSON-ready object.

    Sections mirror the text report and are omitted when empty, except
    ``study`` which is always present.  ``repro report --format json``
    prints this, for dashboards and scripts.
    """
    grouped = _by_kind(read_events(events_path))
    data: Dict[str, Any] = {"study": _summary_data(grouped)}
    optional: List[tuple] = [
        ("shards", _shard_rows(grouped)),
        ("caches", _cache_data(grouped)),
        ("state_snapshots", _snapshot_totals(grouped)),
        ("resources", _resource_rows(grouped)),
        ("stalls", _stall_rows(grouped)),
        ("filters", _filter_series(grouped)),
        ("verify", _verify_data(grouped)),
    ]
    if trace_path is not None:
        trace_events = load_trace(trace_path)
        optional.append(("stages", _stage_rows(trace_events)))
        optional.append(("slowest_cycles",
                         _slowest_rows(trace_events, top=top)))
    for key, value in optional:
        if value:
            data[key] = value
    return data
