"""Regeneration of the paper's tables.

* :func:`table1` — cumulative average (with 95% confidence interval) of
  the proportion of LSPs surviving each LPR filter, over all cycles.
* :func:`table2` — per-AS, per-year min/max/avg counts of addresses
  tagged MPLS and non-MPLS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from .aggregate import LongitudinalStudy, MeanWithCi
from .render import format_table

_STAGE_LABELS = {
    "incomplete": "Incomplete LSPs",
    "intra_as": "IntraAS",
    "target_as": "TargetAS",
    "transit_diversity": "TransitDiversity",
    "persistence": "Persistence",
}


@dataclass
class TableResult:
    """One regenerated table: data + text rendering."""

    table_id: str
    data: dict
    text: str

    def __str__(self) -> str:
        return f"== {self.table_id} ==\n{self.text}"


def table1(study: LongitudinalStudy) -> TableResult:
    """Table 1: survivor share after each filter, averaged over cycles."""
    survival = study.filter_survival()
    rows = [
        [_STAGE_LABELS[stage], str(survival[stage])]
        for stage in ("incomplete", "intra_as", "target_as",
                      "transit_diversity", "persistence")
    ]
    text = format_table(["Filter", "Average"], rows)
    return TableResult("table1", {"survival": survival}, text)


def table2(study: LongitudinalStudy,
           ases: Mapping[int, str],
           cycles_per_year: int = 12) -> TableResult:
    """Table 2: yearly min/max/avg IP counts per AS of interest."""
    data: Dict[int, List[Dict[str, int]]] = {}
    rows = []
    for asn in sorted(ases):
        yearly = study.yearly_address_stats(asn, cycles_per_year)
        data[asn] = yearly
        for kind in ("non_mpls", "mpls"):
            row = [f"AS{asn} ({ases[asn]})" if kind == "non_mpls" else "",
                   "non MPLS" if kind == "non_mpls" else "MPLS"]
            for year in yearly:
                row.append(f"{year[kind + '_min']}/"
                           f"{year[kind + '_max']}/"
                           f"{year[kind + '_avg']}")
            rows.append(row)
    year_count = max((len(v) for v in data.values()), default=0)
    headers = ["AS", "addresses"] + [
        f"year {index + 1} (min/max/avg)" for index in range(year_count)
    ]
    return TableResult("table2", {"yearly": data},
                       format_table(headers, rows))
