"""Regeneration of the paper's tables and figures."""

from .aggregate import (LongitudinalStudy, MeanWithCi, mean_with_ci,
                        t_critical_95)
from .render import (
    bar_chart,
    format_table,
    series_chart,
    sparkline,
    stacked_shares,
)
from .figures import (
    FigureResult,
    fig5a,
    fig5b,
    fig6,
    fig7,
    fig8,
    fig9,
    fig13,
    fig16,
    fig17,
    per_as_figure,
)
from .tables import TableResult, table1, table2
from .experiments import (
    ALL_ARTIFACTS,
    FOCUS_ASES,
    Study,
    regenerate,
    regenerate_all,
    run_longitudinal_study,
)
from .flightreport import flight_report, flight_report_data, load_trace

__all__ = [
    "LongitudinalStudy",
    "MeanWithCi",
    "mean_with_ci",
    "t_critical_95",
    "bar_chart",
    "format_table",
    "series_chart",
    "sparkline",
    "stacked_shares",
    "FigureResult",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig13",
    "fig16",
    "fig17",
    "per_as_figure",
    "TableResult",
    "table1",
    "table2",
    "ALL_ARTIFACTS",
    "FOCUS_ASES",
    "Study",
    "regenerate",
    "regenerate_all",
    "run_longitudinal_study",
    "flight_report",
    "flight_report_data",
    "load_trace",
]
