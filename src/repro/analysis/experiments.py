"""Experiment registry: one entry per table/figure of the paper.

:func:`run_longitudinal_study` executes the full 60-cycle campaign once;
:func:`regenerate` then rebuilds any (or every) paper artifact from it.
The benchmark harness and the examples are thin wrappers over this
module, so ``EXPERIMENTS.md`` and the bench output always agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..core.pipeline import LprPipeline, persistence_sweep, run_study
from ..obs import get_logger, span
from ..par import StudySpec
from ..sim.ark import ArkSimulator, daily_campaign, \
    label_dynamics_campaign
from ..sim.config import MplsPolicy
from ..sim.scenarios import (
    ATT,
    CYCLES,
    LEVEL3,
    LEVEL3_RISE_CYCLE,
    NTT,
    TATA,
    VODAFONE,
)
from .aggregate import LongitudinalStudy
from .figures import (
    FigureResult,
    fig5a,
    fig5b,
    fig6,
    fig7,
    fig8,
    fig9,
    fig13,
    fig16,
    fig17,
    per_as_figure,
)
from .tables import TableResult, table1, table2

_log = get_logger(__name__)

FOCUS_ASES = {
    VODAFONE: "Vodafone",
    ATT: "AT&T",
    TATA: "Tata",
    NTT: "NTT",
    LEVEL3: "Level3",
}

ArtifactResult = Union[FigureResult, TableResult]


@dataclass
class Study:
    """Everything produced by one longitudinal campaign."""

    simulator: ArkSimulator
    pipeline: LprPipeline
    longitudinal: LongitudinalStudy

    @property
    def last_cycle(self):
        """The final cycle's result (the paper's 'cycle 60' snapshots)."""
        return self.longitudinal.results[-1]


def run_longitudinal_study(scale: float = 1.0, seed: int = 2015,
                           cycles: Optional[int] = None,
                           snapshots_per_cycle: int = 3,
                           workers: int = 1,
                           checkpoint_dir=None,
                           state_dir=None,
                           snapshot_stride: int = 8,
                           max_retries: int = 2,
                           backoff_base: float = 0.5,
                           progress: Optional[Callable] = None,
                           progress_clock=None,
                           engine: str = "object",
                           resources: bool = False,
                           stall_timeout: Optional[float] = None,
                           stall_clock=None,
                           health=None) -> Study:
    """Run the paper's measurement campaign end to end.

    ``scale`` shrinks router/prefix counts for fast tests; ``cycles``
    truncates the study (default: the full 60).  ``workers > 1`` shards
    the cycles over a process pool (`repro.par`) with byte-identical
    results; the returned study's simulator is left in the same
    end-of-campaign state either way, so the post-study experiments
    (Figs 6, 16, 17) regenerate identically too.  ``checkpoint_dir``
    makes the campaign restartable (finished shards are persisted and
    replayed instead of re-run) and ``max_retries`` bounds how often a
    crashed shard is re-dispatched before the study aborts
    (``backoff_base`` seeds the exponential retry delay).
    ``state_dir`` adds warm-start control-plane snapshots every
    ``snapshot_stride`` cycles (:mod:`repro.par.statestore`): workers
    and resumed runs restore the nearest snapshot instead of replaying
    every earlier cycle — still byte-identical (DESIGN §10).
    ``progress``/``progress_clock`` pass straight to
    :func:`repro.par.run_study` for live telemetry (DESIGN §9), as do
    the live-plane knobs ``resources`` (per-process RSS/CPU/GC gauges
    on every heartbeat), ``stall_timeout``/``stall_clock`` (the
    heartbeat-deadline watchdog) and ``health`` (the monitor a
    :class:`~repro.obs.live.TelemetryServer` shares) — all DESIGN §13,
    all observational.
    ``engine`` picks the analysis backend (``object`` or ``columnar``,
    DESIGN §12) — byte-identical either way.
    """
    spec = StudySpec(scale=scale, seed=seed, cycles=cycles or CYCLES,
                     snapshots_per_cycle=snapshots_per_cycle,
                     engine=engine)
    _log.info("study.start", scale=scale, seed=seed, cycles=spec.cycles,
              workers=workers)
    with span("study.run", cycles=spec.cycles, workers=workers):
        run = run_study(spec, workers=workers,
                        checkpoint_dir=checkpoint_dir,
                        state_dir=state_dir,
                        snapshot_stride=snapshot_stride,
                        max_retries=max_retries,
                        backoff_base=backoff_base,
                        progress=progress,
                        progress_clock=progress_clock,
                        resources=resources,
                        stall_timeout=stall_timeout,
                        stall_clock=stall_clock,
                        health=health)
    _log.info("study.done", cycles=len(run.results))
    return Study(simulator=run.simulator, pipeline=run.pipeline,
                 longitudinal=LongitudinalStudy(run.results))


def regenerate_fig6(study: Study, windows=(0, 1, 2, 3, 5, 8, 12),
                    snapshots: int = 13) -> FigureResult:
    """The Fig 6 sweep: one month probed as many daily snapshots."""
    simulator = study.simulator
    cycle = study.longitudinal.cycles[-1]
    saved = simulator.snapshots_per_cycle
    simulator.snapshots_per_cycle = snapshots
    try:
        month = simulator.run_cycle(cycle)
    finally:
        simulator.snapshots_per_cycle = saved
    points = persistence_sweep(month.snapshots,
                               simulator.internet.ip2as,
                               windows=windows)
    return fig6(points)


def regenerate_fig16(study: Study, days: int = 30) -> FigureResult:
    """The Fig 16 daily ramp-up of Level3's deployment."""
    ramp_policy = MplsPolicy(enabled=True, ldp=True,
                             te_pair_fraction=0.05,
                             te_tunnels_per_pair=2,
                             mpls_pair_fraction=0.90)
    day_traces = daily_campaign(
        study.simulator, base_cycle=LEVEL3_RISE_CYCLE,
        ramp_asn=LEVEL3, ramp_policy=ramp_policy, days=days,
    )
    return fig16(day_traces, study.simulator.internet.ip2as, LEVEL3)


def regenerate_fig17(study: Study, probes: int = 300) -> FigureResult:
    """The Fig 17 high-frequency label-dynamics campaign (Vodafone)."""
    traces = label_dynamics_campaign(
        study.simulator, cycle=45, target_asn=VODAFONE, probes=probes,
    )
    return fig17(traces, study.simulator.internet.ip2as, VODAFONE)


_PER_AS_FIGURES = {
    "fig10": (VODAFONE, "Vodafone"),
    "fig11": (ATT, "AT&T"),
    "fig12": (TATA, "Tata"),
    "fig14": (NTT, "NTT"),
    "fig15": (LEVEL3, "Level3"),
}


def regenerate(study: Study, artifact: str) -> ArtifactResult:
    """Rebuild one paper artifact ("fig5a", "table1", ...) from a study."""
    with span("study.regenerate", artifact=artifact):
        return _regenerate(study, artifact)


def _regenerate(study: Study, artifact: str) -> ArtifactResult:
    longitudinal = study.longitudinal
    if artifact == "fig5a":
        return fig5a(longitudinal)
    if artifact == "fig5b":
        return fig5b(longitudinal)
    if artifact == "fig6":
        return regenerate_fig6(study)
    if artifact == "fig7":
        return fig7(study.last_cycle)
    if artifact == "fig8":
        return fig8(study.last_cycle)
    if artifact == "fig9":
        return fig9(study.last_cycle)
    if artifact in _PER_AS_FIGURES:
        asn, name = _PER_AS_FIGURES[artifact]
        return per_as_figure(longitudinal, asn, name, artifact)
    if artifact == "fig13":
        return fig13(longitudinal, TATA)
    if artifact == "fig16":
        return regenerate_fig16(study)
    if artifact == "fig17":
        return regenerate_fig17(study)
    if artifact == "table1":
        return table1(longitudinal)
    if artifact == "table2":
        return table2(longitudinal, FOCUS_ASES)
    raise KeyError(f"unknown artifact {artifact!r}; "
                   f"known: {sorted(ALL_ARTIFACTS)}")


ALL_ARTIFACTS = (
    "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "table1", "table2",
)


def regenerate_all(study: Study) -> Dict[str, ArtifactResult]:
    """Rebuild every table and figure of the paper from one study."""
    return {artifact: regenerate(study, artifact)
            for artifact in ALL_ARTIFACTS}
