"""Router-level intra-AS topology model.

Each AS in the simulated Internet owns one :class:`Topology`: routers with
loopback addresses and point-to-point links carrying IGP costs.  Parallel
links (several links between the same router pair) are first-class citizens
because they are what produces the paper's "Parallel Links" ECMP subclass:
LDP assigns one label per (router, FEC), so two parallel links show the
*same* label on *different* interface addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..net.ip import int_to_ip


class TopologyError(ValueError):
    """Raised on inconsistent topology construction."""


@dataclass
class Router:
    """One router inside an AS.

    Attributes:
        router_id: index unique within the topology.
        loopback: loopback address (int) — the LDP FEC target for transit.
        vendor: vendor profile name ("cisco", "juniper", "legacy").
        is_border: whether this router speaks eBGP (LER candidate).
        responsive: whether the router answers traceroute probes;
            non-responsive routers appear as anonymous '*' hops and make
            LSPs *incomplete* (first LPR filter).
    """

    router_id: int
    loopback: int
    vendor: str = "cisco"
    is_border: bool = False
    responsive: bool = True

    def __hash__(self) -> int:
        return self.router_id

    def __repr__(self) -> str:
        kind = "border" if self.is_border else "core"
        return (
            f"Router({self.router_id}, {int_to_ip(self.loopback)}, "
            f"{self.vendor}, {kind})"
        )


@dataclass(frozen=True)
class Link:
    """A point-to-point link between two routers.

    ``addr_a``/``addr_b`` are the interface addresses on each side.  A probe
    entering router B over this link is answered from ``addr_b`` (routers
    reply with the incoming interface address, the assumption LPR's alias
    heuristic in §5 also makes).
    """

    link_id: int
    router_a: int
    router_b: int
    addr_a: int
    addr_b: int
    cost: int = 1

    def other(self, router_id: int) -> int:
        """The router on the other side of the link."""
        if router_id == self.router_a:
            return self.router_b
        if router_id == self.router_b:
            return self.router_a
        raise TopologyError(f"router {router_id} not on link {self.link_id}")

    def address_of(self, router_id: int) -> int:
        """The interface address owned by ``router_id`` on this link."""
        if router_id == self.router_a:
            return self.addr_a
        if router_id == self.router_b:
            return self.addr_b
        raise TopologyError(f"router {router_id} not on link {self.link_id}")


class Topology:
    """Mutable router-level topology of one AS."""

    def __init__(self, asn: int):
        self.asn = asn
        self.routers: Dict[int, Router] = {}
        self.links: Dict[int, Link] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._next_link_id = 0

    def add_router(self, router: Router) -> Router:
        """Register a router; router ids must be unique."""
        if router.router_id in self.routers:
            raise TopologyError(f"duplicate router id {router.router_id}")
        self.routers[router.router_id] = router
        self._adjacency[router.router_id] = []
        return router

    def add_link(self, router_a: int, router_b: int, addr_a: int,
                 addr_b: int, cost: int = 1) -> Link:
        """Connect two registered routers; returns the new link.

        Multiple calls with the same router pair create parallel links.
        """
        if router_a not in self.routers or router_b not in self.routers:
            raise TopologyError(
                f"link endpoints must be registered: {router_a}, {router_b}"
            )
        if router_a == router_b:
            raise TopologyError(f"self-loop on router {router_a}")
        if cost <= 0:
            raise TopologyError(f"IGP cost must be positive, got {cost}")
        link = Link(self._next_link_id, router_a, router_b, addr_a, addr_b,
                    cost)
        self._next_link_id += 1
        self.links[link.link_id] = link
        self._adjacency[router_a].append(link.link_id)
        self._adjacency[router_b].append(link.link_id)
        return link

    def neighbors(self, router_id: int) -> Iterator[Tuple[int, Link]]:
        """Yield (neighbor router id, link) pairs, one per link."""
        for link_id in self._adjacency[router_id]:
            link = self.links[link_id]
            yield link.other(router_id), link

    def links_between(self, router_a: int, router_b: int) -> List[Link]:
        """All (parallel) links between two routers."""
        return [
            self.links[link_id]
            for link_id in self._adjacency.get(router_a, [])
            if self.links[link_id].other(router_a) == router_b
        ]

    def border_routers(self) -> List[Router]:
        """Routers flagged as AS borders (LER candidates)."""
        return [r for r in self.routers.values() if r.is_border]

    def degree(self, router_id: int) -> int:
        """Number of links attached to a router."""
        return len(self._adjacency[router_id])

    def interface_addresses(self) -> Dict[int, int]:
        """Map interface address -> owning router id (loopbacks included)."""
        owners: Dict[int, int] = {}
        for router in self.routers.values():
            owners[router.loopback] = router.router_id
        for link in self.links.values():
            owners[link.addr_a] = link.router_a
            owners[link.addr_b] = link.router_b
        return owners

    def validate(self) -> None:
        """Check structural invariants; raises TopologyError on violation."""
        seen_addresses: Dict[int, Tuple[str, int]] = {}

        def claim(address: int, kind: str, owner: int) -> None:
            previous = seen_addresses.get(address)
            if previous is not None and previous != (kind, owner):
                raise TopologyError(
                    f"address {int_to_ip(address)} assigned twice: "
                    f"{previous} and {(kind, owner)}"
                )
            seen_addresses[address] = (kind, owner)

        for router in self.routers.values():
            claim(router.loopback, "loopback", router.router_id)
        for link in self.links.values():
            claim(link.addr_a, "iface", link.router_a)
            claim(link.addr_b, "iface", link.router_b)

    def __repr__(self) -> str:
        return (
            f"Topology(asn={self.asn}, routers={len(self.routers)}, "
            f"links={len(self.links)})"
        )
