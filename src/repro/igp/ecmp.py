"""Deterministic per-flow ECMP next-hop selection.

Real routers hash selected header fields (addresses, protocol, ports) and
use the digest to pick one of the equal-cost successors.  Paris traceroute
keeps those fields constant across the TTL sweep so that one trace follows
one consistent path; different destinations hash to different branches.

Python's builtin ``hash`` is salted per process, so we implement a small
stable 64-bit mixer (splitmix64 over a running state) that gives the same
branch decisions for the same flow across runs and machines.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .spf import NextHop

_MASK64 = (1 << 64) - 1


def _splitmix64(state: int) -> int:
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def flow_hash(*fields: int) -> int:
    """Stable 64-bit hash of integer header fields.

    >>> flow_hash(1, 2, 3) == flow_hash(1, 2, 3)
    True
    >>> flow_hash(1, 2, 3) != flow_hash(1, 2, 4)
    True
    """
    digest = 0x243F6A8885A308D3  # pi, nothing up the sleeve
    for field in fields:
        digest = _splitmix64(digest ^ (field & _MASK64))
    return digest


class FlowKey:
    """The header fields a hash-based load balancer inspects.

    ICMP-Paris probes (what Archipelago sends) keep checksum and identifier
    constant per destination, so the per-flow key reduces to addresses plus
    protocol.  Transport probes would add ports.
    """

    __slots__ = ("src", "dst", "proto", "sport", "dport")

    def __init__(self, src: int, dst: int, proto: int = 1, sport: int = 0,
                 dport: int = 0):
        self.src = src
        self.dst = dst
        self.proto = proto
        self.sport = sport
        self.dport = dport

    def digest(self, per_router_salt: int = 0) -> int:
        """Hash the key; the salt models per-router hash seed diversity."""
        return flow_hash(
            self.src, self.dst, self.proto, self.sport, self.dport,
            per_router_salt,
        )

    def __repr__(self) -> str:
        return (
            f"FlowKey(src={self.src}, dst={self.dst}, proto={self.proto})"
        )


def select_next_hop(choices: Sequence[NextHop], key: FlowKey,
                    router_salt: int = 0) -> NextHop:
    """Pick one successor for a flow among equal-cost choices.

    The choice is a pure function of (flow key, router salt, choice count):
    the same flow always takes the same branch at the same router, which is
    exactly the invariant Paris traceroute relies on.
    """
    if not choices:
        raise ValueError("no next hops to choose from")
    if len(choices) == 1:
        return choices[0]
    index = key.digest(router_salt) % len(choices)
    return choices[index]


def branch_distribution(choices_count: int, keys: Sequence[FlowKey],
                        router_salt: int = 0) -> List[int]:
    """Histogram of branch picks for a set of flows (testing/diagnostics)."""
    counts = [0] * choices_count
    for key in keys:
        counts[key.digest(router_salt) % choices_count] += 1
    return counts
