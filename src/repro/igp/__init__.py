"""IGP substrate: topology model, ECMP-aware SPF, flow hashing."""

from .topology import Link, Router, Topology, TopologyError
from .spf import SpfResult, SpfTable, spf_to
from .ecmp import FlowKey, branch_distribution, flow_hash, select_next_hop

__all__ = [
    "Link",
    "Router",
    "Topology",
    "TopologyError",
    "SpfResult",
    "SpfTable",
    "spf_to",
    "FlowKey",
    "branch_distribution",
    "flow_hash",
    "select_next_hop",
]
