"""Shortest-path-first computation with equal-cost multipath support.

The IGP (IS-IS/OSPF in real networks) computes, for every destination
router, the DAG of all equal-cost shortest paths.  ECMP forwarding then
picks one outgoing link per flow among the DAG successors (see
:mod:`repro.igp.ecmp`).  LDP builds its LSPs exactly along this DAG, which
is why LDP tunnels inherit the IGP's path diversity (paper §2.2.1).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .topology import Link, Topology

# A successor choice: (next-hop router id, link used to reach it).
NextHop = Tuple[int, Link]

INFINITY = float("inf")


class SpfResult:
    """All-pairs-to-one shortest-path DAG rooted at a destination router.

    ``distance[r]`` is the IGP cost from router ``r`` to the destination;
    ``successors[r]`` lists every (next-hop, link) on an equal-cost
    shortest path.  Parallel links of equal cost both appear, giving
    link-level ECMP.
    """

    __slots__ = ("destination", "distance", "successors")

    def __init__(self, destination: int, distance: Dict[int, float],
                 successors: Dict[int, List[NextHop]]):
        self.destination = destination
        self.distance = distance
        self.successors = successors

    def reachable(self, router_id: int) -> bool:
        """True if the router has a path to the destination."""
        return self.distance.get(router_id, INFINITY) < INFINITY

    def next_hops(self, router_id: int) -> List[NextHop]:
        """Equal-cost successor choices at a router (empty at the root)."""
        return self.successors.get(router_id, [])

    def path_count(self, source: int, _memo: Optional[Dict[int, int]] = None
                   ) -> int:
        """Number of distinct equal-cost paths from ``source`` to the root.

        Counts link-level diversity (parallel links multiply the count).
        Iterative post-order over the DAG — the depth of a shortest-path
        chain is bounded only by the topology size, so recursion would
        hit Python's recursion limit on long-chain networks.
        """
        memo = _memo if _memo is not None else {}
        memo.setdefault(self.destination, 1)
        stack = [source]
        while stack:
            router = stack[-1]
            if router in memo:
                stack.pop()
                continue
            if not self.reachable(router):
                memo[router] = 0
                stack.pop()
                continue
            pending = [nbr for nbr, _ in self.successors[router]
                       if nbr not in memo]
            if pending:
                stack.extend(pending)
            else:
                memo[router] = sum(memo[nbr]
                                   for nbr, _ in self.successors[router])
                stack.pop()
        return memo[source]

    def all_paths(self, source: int, limit: int = 1000
                  ) -> List[List[NextHop]]:
        """Enumerate equal-cost paths as lists of (router, link) steps.

        Each returned path is the sequence of hops *taken*: element i is
        (router entered, link used to enter it).  Enumeration is cut off at
        ``limit`` paths to bound work on very wide DAGs.
        """
        paths: List[List[NextHop]] = []
        stack: List[Tuple[int, List[NextHop]]] = [(source, [])]
        while stack and len(paths) < limit:
            router, taken = stack.pop()
            if router == self.destination:
                paths.append(taken)
                continue
            for nbr, link in reversed(self.successors.get(router, [])):
                stack.append((nbr, taken + [(nbr, link)]))
        return paths


def spf_to(topology: Topology, destination: int,
           excluded_links: Optional[frozenset] = None) -> SpfResult:
    """Dijkstra from every router *to* ``destination`` (reverse SPF).

    Because links are symmetric in cost, a single Dijkstra rooted at the
    destination yields, for every source, the full set of ECMP successors.
    ``excluded_links`` (link ids) models failed links: they are skipped,
    as if the IGP had withdrawn them.
    """
    if destination not in topology.routers:
        raise KeyError(f"unknown destination router {destination}")

    distance: Dict[int, float] = {destination: 0.0}
    successors: Dict[int, List[NextHop]] = {}
    visited: Dict[int, bool] = {}
    heap: List[Tuple[float, int]] = [(0.0, destination)]

    while heap:
        dist, router = heapq.heappop(heap)
        if visited.get(router):
            continue
        visited[router] = True
        for neighbor, link in topology.neighbors(router):
            if excluded_links and link.link_id in excluded_links:
                continue
            candidate = dist + link.cost
            known = distance.get(neighbor, INFINITY)
            if candidate < known:
                distance[neighbor] = candidate
                successors[neighbor] = [(router, link)]
                heapq.heappush(heap, (candidate, neighbor))
            elif candidate == known:
                # Another equal-cost successor (possibly a parallel link).
                successors[neighbor].append((router, link))

    # Deterministic successor order: by (neighbor id, link id).
    for choices in successors.values():
        choices.sort(key=lambda nh: (nh[0], nh[1].link_id))
    return SpfResult(destination, distance, successors)


class SpfTable:
    """Cache of per-destination SPF results for one topology."""

    def __init__(self, topology: Topology):
        self._topology = topology
        self._cache: Dict[int, SpfResult] = {}

    def to_destination(self, destination: int) -> SpfResult:
        """Return (computing and caching if needed) the DAG to a router."""
        result = self._cache.get(destination)
        if result is None:
            result = spf_to(self._topology, destination)
            self._cache[destination] = result
        return result

    def invalidate(self) -> None:
        """Drop cached results (call after topology changes)."""
        self._cache.clear()
