"""Extraction of explicit MPLS tunnels from traceroute data.

The paper (§2.3) focuses on *explicit* tunnels: ttl-propagate makes the
LSRs appear in the trace, RFC 4950 makes them quote their label stacks.
Extraction therefore scans each trace for maximal runs of label-quoting
hops and records the surrounding context (ingress hop before, exit hop
after).

Anonymous hops need care: a '*' *inside* a run (labeled, silent, labeled)
is almost certainly an LSR that dropped the probe, so the run is kept as
one LSP but flagged incomplete — the paper's first filter then discards
it, exactly like its "Incomplete LSPs" row in Table 1.

Not every labeled hop belongs to an explicit tunnel: an *opaque* tunnel
(RFC 4950 without ttl-propagate) reveals one hop quoting an LSE whose
TTL is still near 255 — the probe's TTL was never copied into it.  Such
hops carry no per-LSR label sequence to classify, so extraction keeps
only hops whose quoted LSE-TTL shows genuine propagation
(:data:`MAX_EXPLICIT_LSE_TTL`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..obs import get_registry, span
from ..traces import Trace, TraceHop
from .model import Lsp

_LSPS_EXTRACTED = get_registry().counter(
    "lsps_extracted_total",
    "Explicit-tunnel LSP observations pulled out of traces")
_TRACES_SCANNED = get_registry().counter(
    "extraction_traces_scanned_total",
    "Traces scanned for explicit label runs")

# An explicit-tunnel LSR quotes the LSE-TTL the dying probe carried:
# 1 (or 0 on some implementations).  Anything larger means the LSE-TTL
# was initialized to 255 at the ingress — an opaque tunnel's signature.
MAX_EXPLICIT_LSE_TTL = 2


def is_explicit_hop(hop: TraceHop) -> bool:
    """True when a hop's quoted stack is explicit-tunnel evidence."""
    return (hop.has_labels
            and hop.quoted_stack[0].ttl <= MAX_EXPLICIT_LSE_TTL)


def extract_lsps(trace: Trace) -> List[Lsp]:
    """All explicit-tunnel observations in one trace.

    Returns one :class:`Lsp` per labeled run.  A run is *incomplete* when
    it contains an anonymous hop, when the hop before or after the run is
    anonymous, or when the run touches either end of the trace (no
    context hop at all).
    """
    hops = trace.hops
    lsps: List[Lsp] = []
    index = 0
    while index < len(hops):
        if not is_explicit_hop(hops[index]):
            index += 1
            continue
        run_start = index
        run_end = index  # inclusive index of last labeled hop
        probe = index + 1
        holes = 0
        pending_holes = 0
        while probe < len(hops):
            hop = hops[probe]
            if is_explicit_hop(hop):
                run_end = probe
                holes += pending_holes
                pending_holes = 0
                probe += 1
            elif hop.is_anonymous:
                # Possibly an LSR that did not reply; absorb it only if
                # labels resume afterwards.
                pending_holes += 1
                probe += 1
            else:
                break
        lsps.append(_build_lsp(trace, run_start, run_end, holes))
        index = run_end + 1 + pending_holes
    return lsps


def _build_lsp(trace: Trace, run_start: int, run_end: int,
               holes: int) -> Lsp:
    hops = trace.hops
    labeled = [hop for hop in hops[run_start:run_end + 1]
               if is_explicit_hop(hop)]

    entry: Optional[int] = None
    if run_start > 0:
        before = hops[run_start - 1]
        if not before.is_anonymous:
            entry = before.address

    exit_: Optional[int] = None
    if run_end + 1 < len(hops):
        after = hops[run_end + 1]
        if not after.is_anonymous:
            exit_ = after.address

    complete = holes == 0 and entry is not None and exit_ is not None
    return Lsp(
        entry=entry,
        exit=exit_,
        hops=tuple((hop.address, hop.labels[0]) for hop in labeled),
        complete=complete,
        monitor=trace.monitor,
        dst=trace.dst,
    )


def _canonicalize(lsp: Lsp, table: dict) -> Lsp:
    """One Lsp with each field replaced by its first-seen equal object.

    Traces arriving from worker processes are value-identical to
    serially produced ones but lose cross-trace object sharing at
    pickle boundaries; interning the extracted values makes every
    downstream object graph — and hence checkpoint pickles — a pure
    function of the trace *values*, whatever worker layout produced
    them (DESIGN §8).
    """
    def intern(value):
        return table.setdefault(value, value)

    return Lsp(
        entry=intern(lsp.entry),
        exit=intern(lsp.exit),
        hops=intern(tuple(intern((intern(address), intern(label)))
                          for address, label in lsp.hops)),
        complete=lsp.complete,
        monitor=intern(lsp.monitor),
        dst=intern(lsp.dst),
    )


def extract_all(traces: Iterable[Trace]) -> List[Lsp]:
    """Extract every explicit tunnel from a collection of traces."""
    lsps: List[Lsp] = []
    table: dict = {}
    with span("extraction.extract_all"):
        count = 0
        for trace in traces:
            lsps.extend(_canonicalize(lsp, table)
                        for lsp in extract_lsps(trace))
            count += 1
    complete = sum(1 for lsp in lsps if lsp.complete)
    _TRACES_SCANNED.inc(count)
    _LSPS_EXTRACTED.inc(complete, complete="true")
    _LSPS_EXTRACTED.inc(len(lsps) - complete, complete="false")
    return lsps


def traces_with_tunnels(traces: Iterable[Trace]) -> int:
    """How many traces traverse at least one explicit tunnel (Fig 5a)."""
    return sum(
        1 for trace in traces
        if any(is_explicit_hop(hop) for hop in trace.hops)
    )
