"""Per-AS MPLS usage reports.

Condenses one cycle's LPR output into the kind of per-operator profile
the paper's §4.4 discusses AS by AS: class mix, Mono-FEC subclass split,
tunnel geometry (length / width / symmetry), destination-AS fan-out,
and the dynamic tag.  Used by the ``repro`` CLI and the examples; handy
whenever the question is "how does *this* network use MPLS?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..net.ip import int_to_ip
from .classification import (
    ClassificationResult,
    MonoFecSubclass,
    TunnelClass,
)
from .metrics import balanced_share, distribution, share_at_most
from .model import Iotp, IotpKey
from .pipeline import CycleResult


@dataclass
class AsProfile:
    """One AS's MPLS usage profile for one cycle."""

    asn: int
    iotp_count: int
    lsp_count: int
    class_shares: Dict[TunnelClass, float]
    subclass_shares: Dict[MonoFecSubclass, float]
    dynamic: bool
    mean_length: float
    max_width: int
    balanced_share: float
    dst_as_fanout: float            # mean destination ASes per IOTP
    mpls_addresses: int
    dominant_class: Optional[TunnelClass]

    def headline(self) -> str:
        """One-line summary in the paper's §4.4 voice."""
        if self.iotp_count == 0:
            return f"AS{self.asn}: no explicit MPLS transit observed"
        parts = [f"AS{self.asn}: {self.iotp_count} IOTPs"]
        if self.dominant_class is not None:
            parts.append(f"mainly {self.dominant_class.value} "
                         f"({self.class_shares[self.dominant_class]:.0%})")
        if self.dynamic:
            parts.append("dynamic labels (re-injected)")
        return ", ".join(parts)


def profile_as(result: CycleResult, asn: int) -> AsProfile:
    """Build the profile of one AS from a cycle's LPR output."""
    classification = result.for_as(asn)
    iotps = [iotp for key, iotp in result.iotps.items() if key[0] == asn]
    verdicts = list(classification.verdicts.values())

    shares = classification.shares()
    dominant: Optional[TunnelClass] = None
    if verdicts:
        dominant = max(shares, key=lambda tc: shares[tc])
    lengths = [verdict.length for verdict in verdicts]
    return AsProfile(
        asn=asn,
        iotp_count=len(verdicts),
        lsp_count=sum(iotp.width for iotp in iotps),
        class_shares=shares,
        subclass_shares=classification.subclass_shares(),
        dynamic=any(verdict.dynamic for verdict in verdicts),
        mean_length=(sum(lengths) / len(lengths) if lengths else 0.0),
        max_width=max((verdict.width for verdict in verdicts),
                      default=0),
        balanced_share=balanced_share(classification,
                                      TunnelClass.MONO_FEC),
        dst_as_fanout=(
            sum(len(iotp.dst_asns) for iotp in iotps) / len(iotps)
            if iotps else 0.0
        ),
        mpls_addresses=result.stats.mpls_by_as.get(asn, 0),
        dominant_class=dominant,
    )


def render_profile(profile: AsProfile,
                   name: Optional[str] = None) -> str:
    """Multi-line plain-text rendering of one profile."""
    title = f"AS{profile.asn}" + (f" ({name})" if name else "")
    lines = [title, "-" * len(title), profile.headline()]
    if profile.iotp_count == 0:
        return "\n".join(lines)
    lines.append(
        "classes: " + ", ".join(
            f"{tunnel_class.value}={share:.2f}"
            for tunnel_class, share in profile.class_shares.items()
            if share > 0
        )
    )
    if profile.class_shares[TunnelClass.MONO_FEC] > 0:
        lines.append(
            "ECMP flavour: " + ", ".join(
                f"{subclass.value}={share:.2f}"
                for subclass, share in profile.subclass_shares.items()
            )
            + f"; balanced={profile.balanced_share:.2f}"
        )
    lines.append(
        f"geometry: {profile.lsp_count} LSPs over "
        f"{profile.iotp_count} IOTPs, mean length "
        f"{profile.mean_length:.1f} LSRs, max width "
        f"{profile.max_width}"
    )
    lines.append(
        f"reach: {profile.dst_as_fanout:.1f} destination ASes per "
        f"IOTP; {profile.mpls_addresses} MPLS-tagged addresses"
    )
    return "\n".join(lines)


def profile_all(result: CycleResult,
                names: Optional[Mapping[int, str]] = None
                ) -> List[AsProfile]:
    """Profiles of every AS with at least one classified IOTP,
    ordered by IOTP count (busiest first)."""
    asns = sorted({key[0] for key in result.iotps})
    profiles = [profile_as(result, asn) for asn in asns]
    profiles.sort(key=lambda p: (-p.iotp_count, p.asn))
    return profiles


def render_report(result: CycleResult,
                  names: Optional[Mapping[int, str]] = None,
                  limit: Optional[int] = None) -> str:
    """The full per-AS report for one cycle."""
    names = names or {}
    profiles = profile_all(result, names)
    if limit is not None:
        profiles = profiles[:limit]
    sections = [
        render_profile(profile, names.get(profile.asn))
        for profile in profiles
    ]
    header = (
        f"cycle {result.cycle}: {len(result.iotps)} IOTPs across "
        f"{len(profiles)} ASes"
    )
    return "\n\n".join([header] + sections)
