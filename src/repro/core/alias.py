"""Alias resolution and router-level IOTPs (paper §5 extensions).

The paper deliberately works at the IP level, but sketches two
refinements this module implements:

* **Traceroute-based alias inference** — if two LSPs both reach address
  ``A`` at some hop, the probes entered one router through one
  interface, hence over one point-to-point link, hence from one
  upstream router: the *predecessor* addresses of a shared address are
  aliases of each other.  Applied transitively (union-find), this
  yields router-level groupings from the LSP set alone.
* **Router-level IOTPs** — regrouping IOTPs whose entry/exit addresses
  resolve to the same routers.  This merges IOTPs that the IP-level
  view splits artificially (multi-interface LERs), giving fewer, wider
  IOTPs, "closer to the actual MPLS usage" as §5 puts it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .model import Iotp, IotpKey, Lsp


class UnionFind:
    """Disjoint sets over hashable items, path-compressed."""

    def __init__(self):
        self._parent: Dict = {}

    def find(self, item):
        """Representative of ``item``'s set (inserting it if new)."""
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, left, right) -> None:
        """Merge the sets containing ``left`` and ``right``."""
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root != right_root:
            # Deterministic orientation: smaller root wins.
            if right_root < left_root:
                left_root, right_root = right_root, left_root
            self._parent[right_root] = left_root

    def groups(self) -> List[Set]:
        """All sets with at least two members."""
        by_root: Dict = {}
        for item in list(self._parent):
            by_root.setdefault(self.find(item), set()).add(item)
        return [group for group in by_root.values() if len(group) > 1]


class AliasResolver:
    """Maps interface addresses to router representatives."""

    def __init__(self, union_find: Optional[UnionFind] = None):
        self._sets = union_find if union_find is not None else UnionFind()

    def add_alias_pair(self, left: int, right: int) -> None:
        """Record that two addresses belong to one router."""
        self._sets.union(left, right)

    def resolve(self, address: int) -> int:
        """The canonical (router-representative) address."""
        return self._sets.find(address)

    def are_aliases(self, left: int, right: int) -> bool:
        """Whether two addresses resolve to the same router."""
        return self._sets.find(left) == self._sets.find(right)

    def alias_sets(self) -> List[Set[int]]:
        """All non-trivial alias sets found."""
        return self._sets.groups()


def infer_aliases(lsps: Iterable[Lsp]) -> AliasResolver:
    """Infer aliases from LSP structure (the §5 heuristic).

    For every address ``A`` observed at some hop, collect the addresses
    observed immediately *before* ``A`` (the LSP's entry counts as the
    predecessor of its first hop, and the last hop as the predecessor of
    the exit).  Probes reaching ``A`` entered one interface, i.e. one
    upstream link — so all of A's predecessors are aliases of one
    upstream router.
    """
    resolver = AliasResolver()
    predecessors: Dict[int, Set[int]] = {}
    for lsp in lsps:
        chain: List[int] = []
        if lsp.entry is not None:
            chain.append(lsp.entry)
        chain.extend(lsp.addresses)
        if lsp.exit is not None:
            chain.append(lsp.exit)
        for before, after in zip(chain, chain[1:]):
            predecessors.setdefault(after, set()).add(before)
    for group in predecessors.values():
        ordered = sorted(group)
        for other in ordered[1:]:
            resolver.add_alias_pair(ordered[0], other)
    return resolver


def router_level_iotps(iotps: Dict[IotpKey, Iotp],
                       resolver: AliasResolver) -> Dict[IotpKey, Iotp]:
    """Regroup IP-level IOTPs by router-level <Ingress; Egress> pairs.

    Two IOTPs merge when their entry addresses are aliases and their
    exit addresses are aliases.  The merged IOTP keeps the smallest
    (canonical) entry/exit addresses as its key and unions branches,
    destination ASes and the dynamic tag.
    """
    merged: Dict[IotpKey, Iotp] = {}
    for iotp in iotps.values():
        key = (iotp.asn, resolver.resolve(iotp.entry),
               resolver.resolve(iotp.exit))
        target = merged.get(key)
        if target is None:
            target = Iotp(asn=iotp.asn, entry=key[1], exit=key[2])
            merged[key] = target
        for signature, lsp in iotp.lsps.items():
            target.lsps.setdefault(signature, lsp)
        target.dst_asns |= iotp.dst_asns
        target.dynamic = target.dynamic or iotp.dynamic
    return merged
