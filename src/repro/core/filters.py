"""The LPR filtering stage (paper §3.1, Fig 3 left half).

Five steps, applied sequentially, each with survivor accounting so that
Table 1 can be regenerated:

1. **Incomplete** — drop LSPs with anonymous LSRs or missing endpoints.
2. **IntraAS** — every LSR address must map to one origin AS (the LSP is
   then attributed to it); inter-domain or mixed-origin LSPs are dropped.
3. **TargetAS** — the trace destination must live in a *different* AS
   than the tunnel (otherwise the tunnel does not carry transit traffic).
4. **TransitDiversity** — keep only IOTPs whose tunnels served at least
   two distinct destination ASes (multi-FEC potential by definition of
   destination-based routing).
5. **Persistence** — an LSP seen in cycle X must reappear in one of the
   follow-up snapshots X+1..X+j of the same month; if an AS loses almost
   all of its LSPs this way, the whole set is re-injected and the AS is
   tagged *dynamic* (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..net.ip2as import Ip2AsMapper, UNKNOWN_AS
from ..obs import get_logger, get_registry, span
from .model import Iotp, IotpKey, Lsp, LspSignature, group_into_iotps

_log = get_logger(__name__)
_LSPS_DROPPED = get_registry().counter(
    "lsps_dropped_total",
    "LSPs removed by each LPR filter stage")
_ASES_REINJECTED = get_registry().counter(
    "ases_reinjected_total",
    "ASes whose LSP set was re-injected as dynamic by Persistence")


@dataclass
class FilterStats:
    """Survivor counts after each filter, for one cycle."""

    extracted: int = 0
    after_incomplete: int = 0
    after_intra_as: int = 0
    after_target_as: int = 0
    after_transit_diversity: int = 0
    after_persistence: int = 0
    reinjected_ases: List[int] = field(default_factory=list)

    def proportions(self) -> Dict[str, float]:
        """Each stage's survivors as a share of extracted LSPs."""
        if self.extracted == 0:
            return {name: 0.0 for name in _STAGES}
        return {
            "incomplete": self.after_incomplete / self.extracted,
            "intra_as": self.after_intra_as / self.extracted,
            "target_as": self.after_target_as / self.extracted,
            "transit_diversity":
                self.after_transit_diversity / self.extracted,
            "persistence": self.after_persistence / self.extracted,
        }


_STAGES = ("incomplete", "intra_as", "target_as", "transit_diversity",
           "persistence")


def drop_incomplete(lsps: Iterable[Lsp]) -> List[Lsp]:
    """Filter 1: remove LSPs with anonymous LSRs or missing endpoints."""
    return [lsp for lsp in lsps if lsp.complete]


def intra_as(lsps: Iterable[Lsp], ip2as: Ip2AsMapper) -> List[Lsp]:
    """Filter 2: keep LSPs whose LSR addresses share one origin AS.

    Survivors come back annotated with their AS (``lsp.asn``).  All
    hop addresses go through one :meth:`~Ip2AsMapper.lookup_many`
    batch, so repeated interfaces cost one radix walk per /24 instead
    of one per hop observation.
    """
    lsps = list(lsps)
    flat = [address for lsp in lsps for address in lsp.addresses]
    asns = ip2as.lookup_many(flat)
    kept: List[Lsp] = []
    position = 0
    for lsp in lsps:
        count = len(lsp.hops)
        origins = set(asns[position:position + count])
        position += count
        if len(origins) != 1:
            continue
        asn = origins.pop()
        if asn == UNKNOWN_AS:
            continue
        kept.append(lsp.with_asn(asn))
    return kept


def target_as(lsps: Iterable[Lsp], ip2as: Ip2AsMapper) -> List[Lsp]:
    """Filter 3: the traceroute destination must be in a different AS."""
    lsps = list(lsps)
    dst_asns = ip2as.lookup_many([lsp.dst for lsp in lsps])
    return [
        lsp for lsp, dst_asn in zip(lsps, dst_asns)
        if dst_asn != lsp.asn
    ]


def transit_diversity(lsps: Sequence[Lsp], ip2as: Ip2AsMapper
                      ) -> Tuple[List[Lsp], Dict[IotpKey, Iotp]]:
    """Filter 4: keep IOTPs used towards >= 2 distinct destination ASes.

    Returns both the surviving LSP observations and the grouped IOTPs
    (which later stages reuse).
    """
    iotps = group_into_iotps(
        zip(lsps, ip2as.lookup_many([lsp.dst for lsp in lsps]))
    )
    diverse_keys = {
        key for key, iotp in iotps.items() if len(iotp.dst_asns) >= 2
    }
    kept = [
        lsp for lsp in lsps
        if (lsp.asn, lsp.entry, lsp.exit) in diverse_keys
    ]
    return kept, {key: iotp for key, iotp in iotps.items()
                  if key in diverse_keys}


@dataclass
class PersistenceOutcome:
    """Result of the persistence filter for one cycle."""

    kept: List[Lsp]
    dynamic_ases: List[int]


def persistence(lsps: Sequence[Lsp],
                follow_up_signatures: Sequence[Set[LspSignature]],
                reinject_threshold: float = 0.10) -> PersistenceOutcome:
    """Filter 5: LSPs must reappear in one of the follow-up snapshots.

    ``follow_up_signatures`` holds, per follow-up snapshot (X+1..X+j),
    the set of LSP signatures extracted there.  When an AS keeps fewer
    than ``reinject_threshold`` of its LSPs, the AS is assumed to change
    labels on purpose (dynamic TE, §4.5): its whole LSP set is
    re-injected and the AS is tagged dynamic.
    """
    if not follow_up_signatures:
        # No follow-up data at all: the filter is a no-op (j = 0).
        return PersistenceOutcome(kept=list(lsps), dynamic_ases=[])

    union: Set[LspSignature] = set()
    for signatures in follow_up_signatures:
        union |= signatures

    by_as: Dict[int, List[Lsp]] = {}
    for lsp in lsps:
        by_as.setdefault(lsp.asn, []).append(lsp)

    kept: List[Lsp] = []
    dynamic: List[int] = []
    for asn in sorted(by_as):
        candidates = by_as[asn]
        survivors = [lsp for lsp in candidates
                     if lsp.signature in union]
        if len(survivors) < reinject_threshold * len(candidates):
            kept.extend(candidates)
            dynamic.append(asn)
        else:
            kept.extend(survivors)
    return PersistenceOutcome(kept=kept, dynamic_ases=dynamic)


def run_filters(lsps: Sequence[Lsp], ip2as: Ip2AsMapper,
                follow_up_signatures: Sequence[Set[LspSignature]] = (),
                reinject_threshold: float = 0.10
                ) -> Tuple[Dict[IotpKey, Iotp], FilterStats]:
    """The full filtering pipeline for one cycle.

    Returns the cleaned IOTPs (rebuilt from the persistent LSPs, with
    dynamic ASes tagged) plus the per-stage survivor statistics.
    """
    stats = FilterStats(extracted=len(lsps))

    with span("filters.incomplete"):
        complete = drop_incomplete(lsps)
        stats.after_incomplete = len(complete)
        _LSPS_DROPPED.inc(stats.extracted - stats.after_incomplete,
                          filter="incomplete")

    with span("filters.intra_as"):
        mapped = intra_as(complete, ip2as)
        stats.after_intra_as = len(mapped)
        _LSPS_DROPPED.inc(stats.after_incomplete - stats.after_intra_as,
                          filter="intra_as")

    with span("filters.target_as"):
        transit = target_as(mapped, ip2as)
        stats.after_target_as = len(transit)
        _LSPS_DROPPED.inc(stats.after_intra_as - stats.after_target_as,
                          filter="target_as")

    with span("filters.transit_diversity"):
        diverse, grouped = transit_diversity(transit, ip2as)
        stats.after_transit_diversity = len(diverse)
        _LSPS_DROPPED.inc(
            stats.after_target_as - stats.after_transit_diversity,
            filter="transit_diversity")

    with span("filters.persistence"):
        outcome = persistence(diverse, follow_up_signatures,
                              reinject_threshold)
        stats.after_persistence = len(outcome.kept)
        stats.reinjected_ases = outcome.dynamic_ases
        _LSPS_DROPPED.inc(
            stats.after_transit_diversity - stats.after_persistence,
            filter="persistence")
        _ASES_REINJECTED.inc(len(outcome.dynamic_ases))

    if len(outcome.kept) == len(diverse):
        # Persistence dropped nothing (every survivor or a full
        # re-injection): the grouping TransitDiversity already built is
        # exactly the grouping of the kept set — reuse it instead of a
        # per-LSP lookup_single + regroup pass.
        iotps = grouped
    else:
        iotps = group_into_iotps(
            zip(outcome.kept,
                ip2as.lookup_many([lsp.dst for lsp in outcome.kept]))
        )
    dynamic_ases = set(outcome.dynamic_ases)
    for iotp in iotps.values():
        if iotp.asn in dynamic_ases:
            iotp.dynamic = True
    _log.debug("filters.done", extracted=stats.extracted,
               survivors=stats.after_persistence,
               reinjected=len(outcome.dynamic_ases))
    return iotps, stats
