"""LSP and IOTP data structures — the vocabulary of LPR.

From a traceroute, an *explicit tunnel* appears as a maximal run of hops
quoting RFC 4950 label stacks.  The run's hops are the LSRs; the hop just
before it is the Ingress LER (it pushed the stack, so it never shows one),
and the hop just after it is the tunnel exit (the Egress LER under PHP).

An **IOTP** (In-Out Transit Pair, paper §3) groups every observed LSP
sharing the same ``<Ingress LER; Egress LER>`` IP pair; its distinct label-
and-IP branches are what LPR classifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..net.ip import int_to_ip

# One labeled hop: (interface address, top label value).
LspHop = Tuple[int, int]
# The identity of an LSP: entry, exit, and its labeled hops.
LspSignature = Tuple[int, int, Tuple[LspHop, ...]]


@dataclass(frozen=True)
class Lsp:
    """One observed label-switched path (from a single trace).

    Attributes:
        entry: address of the Ingress LER (the hop before the labeled
            run), or None when that hop was anonymous/absent.
        exit: address of the tunnel exit (the hop after the labeled run),
            or None when anonymous/absent.
        hops: the labeled hops, in TTL order.
        complete: False when an anonymous hop interrupts the run or an
            endpoint is missing — the paper's first filter drops these.
        monitor: vantage point that observed it.
        dst: traceroute destination address.
        asn: AS of the LSRs (filled in by the IntraAS filter;
            None before mapping, or when the hops span several origins).
    """

    entry: Optional[int]
    exit: Optional[int]
    hops: Tuple[LspHop, ...]
    complete: bool
    monitor: str
    dst: int
    asn: Optional[int] = None

    @cached_property
    def signature(self) -> LspSignature:
        """Identity used for diversity and persistence comparisons.

        Cached after first use: Persistence probes it per candidate and
        IOTP grouping rebuilds it per observation, so one tuple per Lsp
        saves an allocation on every later test.  (``cached_property``
        writes straight into ``__dict__``, bypassing the frozen
        ``__setattr__``.)
        """
        return (self.entry, self.exit, self.hops)

    def __getstate__(self):
        # Pickle only the declared fields: the signature cache lives in
        # the instance __dict__ and letting it leak into pickles would
        # make checkpoint bytes depend on whether the cache had been
        # touched before the dump (DESIGN §8 byte-identity).
        return {name: getattr(self, name) for name in _LSP_FIELDS}

    @property
    def length(self) -> int:
        """Number of LSRs revealed (labeled hops)."""
        return len(self.hops)

    @property
    def addresses(self) -> Tuple[int, ...]:
        """LSR interface addresses, in order."""
        return tuple(address for address, _ in self.hops)

    @property
    def labels(self) -> Tuple[int, ...]:
        """Label values, in order."""
        return tuple(label for _, label in self.hops)

    def with_asn(self, asn: int) -> "Lsp":
        """A copy with the owning AS filled in."""
        return Lsp(entry=self.entry, exit=self.exit, hops=self.hops,
                   complete=self.complete, monitor=self.monitor,
                   dst=self.dst, asn=asn)

    def __str__(self) -> str:
        entry = int_to_ip(self.entry) if self.entry is not None else "?"
        exit_ = int_to_ip(self.exit) if self.exit is not None else "?"
        inner = " -> ".join(
            f"{int_to_ip(address)}({label})" for address, label in self.hops
        )
        return f"[{entry}] {inner} [{exit_}]"


# Field order matters: __getstate__ must mirror __init__'s __dict__
# insertion order so cached and uncached instances pickle identically.
_LSP_FIELDS = ("entry", "exit", "hops", "complete", "monitor", "dst",
               "asn")

# The key of an IOTP: (asn, ingress address, exit address).
IotpKey = Tuple[int, int, int]


@dataclass
class Iotp:
    """An In-Out Transit Pair: all LSPs between one LER pair in one AS."""

    asn: int
    entry: int
    exit: int
    lsps: Dict[LspSignature, Lsp] = field(default_factory=dict)
    dst_asns: Set[int] = field(default_factory=set)
    dynamic: bool = False

    @property
    def key(self) -> IotpKey:
        return (self.asn, self.entry, self.exit)

    def add(self, lsp: Lsp, dst_asn: int) -> None:
        """Record one observed LSP and the destination AS it served."""
        self.lsps.setdefault(lsp.signature, lsp)
        self.dst_asns.add(dst_asn)

    @property
    def branches(self) -> List[Lsp]:
        """Distinct LSPs, in a stable order."""
        return [self.lsps[s] for s in sorted(self.lsps)]

    @property
    def width(self) -> int:
        """Number of distinct branches (physical or logical)."""
        return len(self.lsps)

    @property
    def length(self) -> int:
        """LSR count of the longest branch (paper §4.3)."""
        return max(lsp.length for lsp in self.lsps.values())

    @property
    def symmetry(self) -> int:
        """Longest minus shortest branch LSR count (0 = balanced)."""
        lengths = [lsp.length for lsp in self.lsps.values()]
        return max(lengths) - min(lengths)

    def common_addresses(self) -> Set[int]:
        """Interface addresses traversed by at least two distinct LSPs."""
        seen: Dict[int, int] = {}
        for lsp in self.lsps.values():
            for address in set(lsp.addresses):
                seen[address] = seen.get(address, 0) + 1
        return {address for address, count in seen.items() if count >= 2}

    def labels_at(self, address: int) -> Set[int]:
        """All labels observed on one interface address, across LSPs."""
        return {
            label for lsp in self.lsps.values()
            for hop_address, label in lsp.hops if hop_address == address
        }

    def __repr__(self) -> str:
        return (
            f"Iotp(asn={self.asn}, {int_to_ip(self.entry)} -> "
            f"{int_to_ip(self.exit)}, width={self.width})"
        )


def group_into_iotps(lsps) -> Dict[IotpKey, Iotp]:
    """Group mapped LSPs into IOTPs keyed by (asn, entry, exit).

    LSPs must already carry their AS (IntraAS filter) and have concrete
    entry/exit addresses (complete).  The destination AS of each LSP's
    trace feeds the TransitDiversity filter.
    """
    iotps: Dict[IotpKey, Iotp] = {}
    for lsp, dst_asn in lsps:
        if lsp.asn is None or lsp.entry is None or lsp.exit is None:
            raise ValueError(f"unmapped or incomplete LSP: {lsp}")
        key = (lsp.asn, lsp.entry, lsp.exit)
        iotp = iotps.get(key)
        if iotp is None:
            iotp = Iotp(asn=lsp.asn, entry=lsp.entry, exit=lsp.exit)
            iotps[key] = iotp
        iotp.add(lsp, dst_asn)
    return iotps
