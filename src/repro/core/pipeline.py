"""End-to-end LPR driver: traces in, classified IOTPs out.

One :class:`LprPipeline` call per measurement cycle:

1. dataset statistics on the raw traces (Fig 5 inputs);
2. explicit-tunnel extraction (§2.3);
3. the five filters, using the cycle's follow-up snapshots for
   persistence (§3.1);
4. Algorithm-1 classification (§3.2).

:func:`persistence_sweep` re-runs the persistence stage for a whole range
of window sizes ``j`` over one month of snapshots (the Fig 6 study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from ..net.ip2as import Ip2AsMapper
from ..obs import emit, get_logger, get_registry, span
from ..traces import Trace
from .classification import ClassificationResult, classify
from .extraction import extract_all, traces_with_tunnels
from .filters import FilterStats, run_filters
from .model import Iotp, IotpKey, LspSignature

_log = get_logger(__name__)
_CYCLES_PROCESSED = get_registry().counter(
    "pipeline_cycles_total", "Measurement cycles run through LPR")


@dataclass
class DatasetStats:
    """Raw per-cycle dataset statistics, before any filtering (Fig 5)."""

    trace_count: int = 0
    traces_with_tunnels: int = 0
    mpls_addresses: int = 0
    non_mpls_addresses: int = 0
    mpls_by_as: Dict[int, int] = field(default_factory=dict)
    non_mpls_by_as: Dict[int, int] = field(default_factory=dict)

    @property
    def tunnel_trace_share(self) -> float:
        """Proportion of traces crossing >= 1 explicit tunnel (Fig 5a)."""
        if self.trace_count == 0:
            return 0.0
        return self.traces_with_tunnels / self.trace_count


def dataset_stats(traces: Sequence[Trace],
                  ip2as: Ip2AsMapper) -> DatasetStats:
    """Compute the Fig 5 / Table 2 raw statistics for one snapshot.

    An address counts as "used in MPLS" when it ever appears as a
    label-quoting hop; every other responding address is non-MPLS.
    """
    mpls: Set[int] = set()
    every: Set[int] = set()
    for trace in traces:
        for hop in trace.hops:
            if hop.address is None:
                continue
            every.add(hop.address)
            if hop.has_labels:
                mpls.add(hop.address)

    # One origin lookup per distinct address, feeding both histograms.
    mpls_by_as: Dict[int, int] = {}
    non_mpls_by_as: Dict[int, int] = {}
    for address in every:
        asn = ip2as.lookup_single(address)
        counts = mpls_by_as if address in mpls else non_mpls_by_as
        counts[asn] = counts.get(asn, 0) + 1

    return DatasetStats(
        trace_count=len(traces),
        traces_with_tunnels=traces_with_tunnels(traces),
        mpls_addresses=len(mpls),
        non_mpls_addresses=len(every) - len(mpls),
        mpls_by_as=mpls_by_as,
        non_mpls_by_as=non_mpls_by_as,
    )


@dataclass
class CycleResult:
    """Everything LPR produces for one measurement cycle."""

    cycle: int
    stats: DatasetStats
    filter_stats: FilterStats
    iotps: Dict[IotpKey, Iotp]
    classification: ClassificationResult
    metrics: Dict[str, Any] = field(default_factory=dict)
    """Registry delta recorded while processing this cycle (a
    :meth:`repro.obs.MetricsRegistry.diff` snapshot; deterministic)."""

    def for_as(self, asn: int) -> ClassificationResult:
        """Classification restricted to one AS."""
        return self.classification.for_as(asn)


ENGINES = ("object", "columnar")
"""Interchangeable analysis backends: the classic per-object pipeline
and the columnar kernel engine (:mod:`repro.engine`, DESIGN §12).
The differential matrix proves them byte-identical per run."""


class LprPipeline:
    """The complete Label Pattern Recognition pipeline."""

    def __init__(self, ip2as: Ip2AsMapper, persistence_window: int = 2,
                 reinject_threshold: float = 0.10,
                 php_heuristic: bool = False, engine: str = "object"):
        """``persistence_window`` is the paper's ``j`` (default 2)."""
        if persistence_window < 0:
            raise ValueError(f"negative persistence window: "
                             f"{persistence_window}")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} "
                             f"(expected one of {ENGINES})")
        self.ip2as = ip2as
        self.persistence_window = persistence_window
        self.reinject_threshold = reinject_threshold
        self.php_heuristic = php_heuristic
        self.engine = engine

    def follow_up_signatures(
        self, snapshots: Sequence[Sequence[Trace]]
    ) -> List[Set[LspSignature]]:
        """Complete-LSP signature sets of the X+1..X+j snapshots."""
        window = snapshots[1:1 + self.persistence_window]
        return [
            {lsp.signature for lsp in extract_all(snapshot)
             if lsp.complete}
            for snapshot in window
        ]

    def process_snapshots(self, cycle: int,
                          snapshots: Sequence[Sequence[Trace]]
                          ) -> CycleResult:
        """Run LPR on a cycle given as [primary, follow-up...] traces."""
        if not snapshots:
            raise ValueError("need at least the primary snapshot")
        registry = get_registry()
        before = registry.snapshot()
        primary = snapshots[0]
        with span("pipeline.cycle", cycle=cycle):
            if self.engine == "columnar":
                # Imported lazily: the kernels build on this module's
                # DatasetStats, and object-only runs never pay for it.
                from ..engine.kernels import analyze_snapshots

                stats, filter_stats, iotps, classification = \
                    analyze_snapshots(
                        cycle, snapshots, self.ip2as,
                        persistence_window=self.persistence_window,
                        reinject_threshold=self.reinject_threshold,
                        php_heuristic=self.php_heuristic,
                    )
            else:
                with span("pipeline.extract"):
                    lsps = extract_all(primary)
                with span("pipeline.follow_ups"):
                    follow_ups = self.follow_up_signatures(snapshots)
                with span("pipeline.filters"):
                    iotps, filter_stats = run_filters(
                        lsps, self.ip2as,
                        follow_up_signatures=follow_ups,
                        reinject_threshold=self.reinject_threshold,
                    )
                with span("pipeline.dataset_stats"):
                    stats = dataset_stats(primary, self.ip2as)
                with span("pipeline.classify"):
                    classification = classify(iotps,
                                              self.php_heuristic)
        _CYCLES_PROCESSED.inc()
        _log.info("pipeline.cycle.done", cycle=cycle,
                  traces=stats.trace_count,
                  extracted=filter_stats.extracted,
                  iotps=len(iotps))
        emit("cycle.done", cycle=cycle, traces=stats.trace_count,
             extracted=filter_stats.extracted, iotps=len(iotps))
        return CycleResult(
            cycle=cycle,
            stats=stats,
            filter_stats=filter_stats,
            iotps=iotps,
            classification=classification,
            metrics=registry.diff(before, registry.snapshot()),
        )

    def process_cycle(self, cycle_data) -> CycleResult:
        """Run LPR on an :class:`repro.sim.ark.CycleData`."""
        return self.process_snapshots(cycle_data.cycle,
                                      cycle_data.snapshots)

    def process_run(self, run: Iterable) -> List[CycleResult]:
        """Run LPR over an iterable of cycle datasets."""
        return [self.process_cycle(cycle_data) for cycle_data in run]


def run_study(spec, workers: int = 1, **options):
    """Execute a full longitudinal campaign, optionally sharded.

    ``spec`` is a :class:`repro.par.StudySpec`; the return value is a
    :class:`repro.par.StudyRun` whose ``results`` list is ordered by
    cycle regardless of how the work was scheduled.  ``workers <= 1``
    runs the classic serial loop in this process; ``workers > 1`` shards
    the cycle range over a process pool — each worker reconstructs its
    block's network state deterministically and the per-shard metrics
    deltas merge back into this process's registry — with byte-identical
    output either way (asserted in ``tests/test_par.py``).  Workers
    beyond the cycle count keep sharding *inside* cycles: surplus
    workers trace contiguous (monitor, destination) pair blocks that
    are reassembled in pair order (DESIGN §8), so even a 1-cycle study
    scales out.

    Keyword ``options`` pass straight to
    :func:`repro.par.runner.run_study` — fault tolerance knobs such as
    ``max_retries``, ``checkpoint_dir`` and ``subdivide`` (DESIGN §8),
    the warm-start state-store knobs ``state_dir`` /
    ``snapshot_stride`` (DESIGN §10), and the live telemetry knobs
    ``progress``, ``resources``, ``stall_timeout`` and ``health``
    (DESIGN §9/§13) — all observational, never changing a byte of
    output.
    """
    # Imported lazily: repro.par builds on this module and on repro.sim.
    from ..par.runner import run_study as run_sharded

    return run_sharded(spec, workers=workers, **options)


@dataclass
class PersistencePoint:
    """One point of the Fig 6 sweep: the effect of window size j."""

    window: int
    kept_lsps: int
    classification: ClassificationResult


def persistence_sweep(snapshots: Sequence[Sequence[Trace]],
                      ip2as: Ip2AsMapper,
                      windows: Iterable[int],
                      reinject_threshold: float = 0.10
                      ) -> List[PersistencePoint]:
    """Vary the persistence window over one month of snapshots (Fig 6).

    ``snapshots[0]`` is the cycle under study; ``snapshots[1:]`` are the
    follow-up runs.  ``windows`` lists the j values to evaluate (0 = no
    persistence filtering).

    Extraction happens once per snapshot, not once per window: the
    primary's LSPs and each follow-up's complete-signature set are
    window-independent, so every sweep point reuses them and only the
    filter chain and classification re-run.  The filters never mutate
    their input LSPs (survivor lists are fresh, AS annotation copies),
    which is what makes the sharing sound.
    """
    if not snapshots:
        raise ValueError("need at least the primary snapshot")
    windows = list(windows)
    for window in windows:
        if window < 0:
            raise ValueError(f"negative persistence window: {window}")

    with span("pipeline.sweep", windows=len(windows)):
        with span("pipeline.extract"):
            lsps = extract_all(snapshots[0])
        widest = max(windows, default=0)
        with span("pipeline.follow_ups"):
            follow_ups = [
                {lsp.signature for lsp in extract_all(snapshot)
                 if lsp.complete}
                for snapshot in snapshots[1:1 + widest]
            ]
        points = []
        for window in windows:
            with span("pipeline.filters", window=window):
                iotps, stats = run_filters(
                    lsps, ip2as,
                    follow_up_signatures=follow_ups[:window],
                    reinject_threshold=reinject_threshold,
                )
            with span("pipeline.classify", window=window):
                classification = classify(iotps)
            points.append(PersistencePoint(
                window=window,
                kept_lsps=stats.after_persistence,
                classification=classification,
            ))
    return points
