"""LSP-tree analysis (paper §5 future work).

LDP does not build point-to-point tunnels: it builds an *LSP-tree* per
FEC, rooted at the egress — packets from several Ingress LERs arrive at
a shared LSR over different interfaces but leave with the same outgoing
label.  The paper proposes indexing LSPs by Egress LER only, so that
more of them can be classified (an IOTP needs a shared ingress; a tree
does not).

:func:`group_into_trees` regroups filtered LSPs by (AS, exit address);
:func:`classify_tree` applies the same label-scope reasoning as
Algorithm 1 at tree granularity: a *consistent* tree carries one label
per common address (LDP), an *inconsistent* one carries several
(RSVP-TE sessions towards that egress).  Because trees merge branches
from many ingresses, strictly more LSPs become classifiable than with
IOTPs — asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .model import Lsp, LspSignature

# The key of an LSP-tree: (asn, exit address).
TreeKey = Tuple[int, int]


class TreeClass(Enum):
    """Label consistency of one egress-rooted tree."""

    SINGLE_BRANCH = "single-branch"    # one LSP only: nothing to compare
    CONSISTENT = "consistent"          # LDP signature (router-scoped)
    INCONSISTENT = "inconsistent"      # per-session labels (RSVP-TE)
    DISJOINT = "disjoint"              # branches share no LSR


@dataclass
class LspTree:
    """All observed LSPs converging on one Egress LER."""

    asn: int
    exit: int
    lsps: Dict[LspSignature, Lsp] = field(default_factory=dict)
    ingresses: Set[int] = field(default_factory=set)
    dst_asns: Set[int] = field(default_factory=set)

    @property
    def key(self) -> TreeKey:
        return (self.asn, self.exit)

    def add(self, lsp: Lsp, dst_asn: int) -> None:
        """Record one branch observation."""
        self.lsps.setdefault(lsp.signature, lsp)
        if lsp.entry is not None:
            self.ingresses.add(lsp.entry)
        self.dst_asns.add(dst_asn)

    @property
    def branch_count(self) -> int:
        """Distinct (label-sequence) branches."""
        return len(self.lsps)

    @property
    def ingress_count(self) -> int:
        """Distinct Ingress LER addresses feeding the tree."""
        return len(self.ingresses)

    def common_addresses(self) -> Set[int]:
        """LSR addresses crossed by at least two branches."""
        seen: Dict[int, int] = {}
        for lsp in self.lsps.values():
            for address in set(lsp.addresses):
                seen[address] = seen.get(address, 0) + 1
        return {address for address, count in seen.items() if count >= 2}

    def labels_at(self, address: int) -> Set[int]:
        """All labels observed on one address across branches."""
        return {
            label for lsp in self.lsps.values()
            for hop_address, label in lsp.hops if hop_address == address
        }


def group_into_trees(lsps: Iterable[Tuple[Lsp, int]]
                     ) -> Dict[TreeKey, LspTree]:
    """Group (LSP, destination ASN) pairs by their Egress LER."""
    trees: Dict[TreeKey, LspTree] = {}
    for lsp, dst_asn in lsps:
        if lsp.asn is None or lsp.exit is None:
            raise ValueError(f"unmapped or incomplete LSP: {lsp}")
        key = (lsp.asn, lsp.exit)
        tree = trees.get(key)
        if tree is None:
            tree = LspTree(asn=lsp.asn, exit=lsp.exit)
            trees[key] = tree
        tree.add(lsp, dst_asn)
    return trees


def classify_tree(tree: LspTree) -> TreeClass:
    """Label-scope classification of one egress-rooted tree."""
    if tree.branch_count == 1:
        return TreeClass.SINGLE_BRANCH
    common = tree.common_addresses()
    if not common:
        return TreeClass.DISJOINT
    for address in common:
        if len(tree.labels_at(address)) > 1:
            return TreeClass.INCONSISTENT
    return TreeClass.CONSISTENT


@dataclass
class TreeReport:
    """Aggregate LSP-tree statistics for one cycle."""

    tree_count: int
    counts: Dict[TreeClass, int]
    mean_ingresses: float
    mean_branches: float
    classified_lsps: int

    def share(self, tree_class: TreeClass) -> float:
        if self.tree_count == 0:
            return 0.0
        return self.counts.get(tree_class, 0) / self.tree_count


def analyze_trees(trees: Dict[TreeKey, LspTree]) -> TreeReport:
    """Classify every tree and summarize."""
    counts = {tree_class: 0 for tree_class in TreeClass}
    comparable = 0
    for tree in trees.values():
        verdict = classify_tree(tree)
        counts[verdict] += 1
        if verdict in (TreeClass.CONSISTENT, TreeClass.INCONSISTENT):
            comparable += tree.branch_count
    total = len(trees)
    return TreeReport(
        tree_count=total,
        counts=counts,
        mean_ingresses=(sum(t.ingress_count for t in trees.values())
                        / total if total else 0.0),
        mean_branches=(sum(t.branch_count for t in trees.values())
                       / total if total else 0.0),
        classified_lsps=comparable,
    )
