"""The §5 ground-proof: cross-validating LPR against MDA probing.

The paper's proposed validation: LSPs LPR tags as **ECMP Mono-FEC** (LDP
over IGP load balancing) should be *visible* to a flow-varying Paris
traceroute — different flow identifiers expose the different IP paths —
while **Multi-FEC** diversity (per-destination RSVP-TE tunnels) should
be *invisible* to flow variation, since one destination always rides one
tunnel.  If both hold, the label-based inference is corroborated by an
entirely independent mechanism.

:func:`validate_classification` runs that campaign over classified
IOTPs and reports agreement rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..sim.dataplane import DataPlane
from ..sim.mda import MdaProber, MdaResult
from ..sim.monitors import Monitor
from .classification import ClassificationResult, TunnelClass
from .model import Iotp, IotpKey


@dataclass
class IotpValidation:
    """MDA verdict for one classified IOTP."""

    key: IotpKey
    tunnel_class: TunnelClass
    mda_paths_through_as: int       # distinct projected sub-paths
    flows_used: int
    agrees: bool


@dataclass
class ValidationReport:
    """Aggregate §5 validation outcome."""

    checked: List[IotpValidation] = field(default_factory=list)

    def add(self, validation: IotpValidation) -> None:
        self.checked.append(validation)

    def agreement_rate(self, tunnel_class: TunnelClass) -> float:
        """Share of one class's IOTPs whose MDA evidence agrees."""
        relevant = [v for v in self.checked
                    if v.tunnel_class is tunnel_class]
        if not relevant:
            return 0.0
        return sum(1 for v in relevant if v.agrees) / len(relevant)

    def counts(self) -> Dict[TunnelClass, Tuple[int, int]]:
        """Per class: (agreeing, total checked)."""
        result: Dict[TunnelClass, Tuple[int, int]] = {}
        for tunnel_class in TunnelClass:
            relevant = [v for v in self.checked
                        if v.tunnel_class is tunnel_class]
            agreeing = sum(1 for v in relevant if v.agrees)
            result[tunnel_class] = (agreeing, len(relevant))
        return result

    def __len__(self) -> int:
        return len(self.checked)


def validate_classification(
    dataplane: DataPlane,
    monitors: Mapping[str, Monitor],
    iotps: Mapping[IotpKey, Iotp],
    classification: ClassificationResult,
    alpha: float = 0.05,
    max_flows: int = 128,
) -> ValidationReport:
    """Run the MDA cross-check for every multi-LSP IOTP.

    For each IOTP classified Mono-FEC or Multi-FEC, an MDA campaign is
    launched from the monitor that observed one of its LSPs towards
    that LSP's destination; the discovered IP diversity is projected
    onto the IOTP's own LSR addresses:

    * Mono-FEC agrees when MDA exposes >= 2 sub-paths through the AS;
    * Multi-FEC agrees when flow variation exposes exactly one.

    ``monitors`` maps monitor names (as recorded in the LSPs) to
    :class:`Monitor` objects.
    """
    report = ValidationReport()
    probers: Dict[str, MdaProber] = {}
    for key in sorted(iotps):
        verdict = classification.verdicts.get(key)
        if verdict is None or verdict.tunnel_class not in (
                TunnelClass.MONO_FEC, TunnelClass.MULTI_FEC):
            continue
        iotp = iotps[key]
        lsp = next(iter(iotp.branches))
        monitor = monitors.get(lsp.monitor)
        if monitor is None:
            continue
        prober = probers.get(monitor.name)
        if prober is None:
            prober = MdaProber(dataplane, monitor, alpha=alpha,
                               max_flows=max_flows)
            probers[monitor.name] = prober
        segment_addresses: Set[int] = {
            address for branch in iotp.branches
            for address in branch.addresses
        }
        segment_addresses.add(iotp.exit)
        discovery = prober.discover(lsp.dst)
        width = discovery.width_between(segment_addresses)
        if verdict.tunnel_class is TunnelClass.MONO_FEC:
            agrees = width >= 2
        else:
            agrees = width <= 1
        report.add(IotpValidation(
            key=key,
            tunnel_class=verdict.tunnel_class,
            mda_paths_through_as=width,
            flows_used=discovery.flows_used,
            agrees=agrees,
        ))
    return report
