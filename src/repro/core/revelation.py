"""The tunnel-revelation taxonomy (paper §2.3 background).

The paper builds on the classification of how an MPLS tunnel shows up in
traceroute, set by ``ttl-propagate`` and RFC 4950 (Donnet et al., CCR
2012):

=============  ============  =========  =================================
visibility     ttl-propagate RFC 4950   evidence in the trace
=============  ============  =========  =================================
**explicit**   yes           yes        per-LSR hops quoting LSEs, TTL 1
**implicit**   yes           no         per-LSR hops without labels, but
                                        the quoted IP-TTL (qTTL) climbs
                                        2, 3, 4... along the tunnel
**opaque**     no            yes        one hop quoting an LSE whose TTL
                                        is near 255; the deficit from
                                        255 is the hidden tunnel length
**invisible**  no            no         nothing at all
=============  ============  =========  =================================

This module detects all three visible kinds from a trace and produces
the per-dataset census that motivates the paper's restriction to
explicit tunnels (the only kind whose *labels* LPR can compare).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..traces import Trace, TraceHop
from .extraction import MAX_EXPLICIT_LSE_TTL, is_explicit_hop


class TunnelVisibility(Enum):
    """How a tunnel manifests in traceroute output."""

    EXPLICIT = "explicit"
    IMPLICIT = "implicit"
    OPAQUE = "opaque"


@dataclass(frozen=True)
class RevealedTunnel:
    """One tunnel detected in a trace.

    Attributes:
        visibility: explicit / implicit / opaque.
        start_index: index of the first evidence hop within the trace.
        hop_count: number of evidence hops (1 for opaque).
        inferred_length: LSR count — observed for explicit/implicit,
            derived from the LSE-TTL deficit for opaque tunnels.
    """

    visibility: TunnelVisibility
    start_index: int
    hop_count: int
    inferred_length: int


def _is_implicit_hop(hop: TraceHop) -> bool:
    """A responding, label-less hop whose quoted IP-TTL exceeds 1."""
    return (not hop.is_anonymous and not hop.has_labels
            and hop.quoted_ttl >= 2)


def _is_opaque_hop(hop: TraceHop) -> bool:
    """A labeled hop whose LSE-TTL was never propagated into."""
    return (hop.has_labels
            and hop.quoted_stack[0].ttl > MAX_EXPLICIT_LSE_TTL)


def reveal_tunnels(trace: Trace) -> List[RevealedTunnel]:
    """Detect every visible tunnel in one trace.

    Explicit runs are maximal sequences of label-quoting TTL-1 hops;
    implicit runs are maximal sequences of qTTL >= 2 hops whose quoted
    TTLs increase hop by hop (the propagation signature); opaque tunnels
    are single high-LSE-TTL hops.
    """
    tunnels: List[RevealedTunnel] = []
    hops = trace.hops
    index = 0
    while index < len(hops):
        hop = hops[index]
        if is_explicit_hop(hop):
            end = index
            while end + 1 < len(hops) and is_explicit_hop(hops[end + 1]):
                end += 1
            count = end - index + 1
            tunnels.append(RevealedTunnel(
                visibility=TunnelVisibility.EXPLICIT,
                start_index=index, hop_count=count,
                inferred_length=count,
            ))
            index = end + 1
        elif _is_opaque_hop(hop):
            hidden = 255 - hop.quoted_stack[0].ttl + 1
            tunnels.append(RevealedTunnel(
                visibility=TunnelVisibility.OPAQUE,
                start_index=index, hop_count=1,
                inferred_length=max(1, hidden),
            ))
            index += 1
        elif _is_implicit_hop(hop):
            end = index
            while (end + 1 < len(hops)
                   and _is_implicit_hop(hops[end + 1])
                   and hops[end + 1].quoted_ttl
                   == hops[end].quoted_ttl + 1):
                end += 1
            count = end - index + 1
            tunnels.append(RevealedTunnel(
                visibility=TunnelVisibility.IMPLICIT,
                start_index=index, hop_count=count,
                inferred_length=count,
            ))
            index = end + 1
        else:
            index += 1
    return tunnels


@dataclass
class VisibilityCensus:
    """Dataset-level tally of tunnel visibility kinds."""

    tunnels: Dict[TunnelVisibility, int] = field(default_factory=dict)
    traces_with: Dict[TunnelVisibility, int] = field(default_factory=dict)
    trace_count: int = 0

    def share_of_traces(self, visibility: TunnelVisibility) -> float:
        """Share of traces containing at least one such tunnel."""
        if self.trace_count == 0:
            return 0.0
        return self.traces_with.get(visibility, 0) / self.trace_count


def visibility_census(traces: Iterable[Trace]) -> VisibilityCensus:
    """Tally every visible tunnel kind across a dataset."""
    census = VisibilityCensus(
        tunnels={visibility: 0 for visibility in TunnelVisibility},
        traces_with={visibility: 0 for visibility in TunnelVisibility},
    )
    for trace in traces:
        census.trace_count += 1
        seen = set()
        for tunnel in reveal_tunnels(trace):
            census.tunnels[tunnel.visibility] += 1
            seen.add(tunnel.visibility)
        for visibility in seen:
            census.traces_with[visibility] += 1
    return census
