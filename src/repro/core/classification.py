"""The LPR classification stage (paper §3.2, Algorithm 1).

Each filtered IOTP lands in exactly one class:

* ``MONO_LSP`` — a single distinct LSP: no observable transit diversity.
* ``MULTI_FEC`` — some *common IP address* (an LSR interface crossed by
  at least two LSPs) carries different labels for different LSPs.  LDP
  labels have router scope — an LSR proposes one label per destination
  to all upstreams — so distinct labels at one interface can only come
  from per-session allocation, i.e. RSVP-TE traffic engineering.
* ``MONO_FEC`` — every common IP address carries a single label: the LDP
  signature, diversity coming from IGP ECMP.  Subclassified into
  ``PARALLEL_LINKS`` (identical label sequences on different addresses —
  the addresses are aliases reached over parallel links) and
  ``ROUTERS_DISJOINT`` (labels and addresses both differ somewhere).
* ``UNCLASSIFIED`` — no common IP address at all (LSPs that only
  converge at a PHP egress, which shows no label).

The optional ``php_heuristic`` implements the §5 alias trick: the exit
address is shared by construction, and packets entering a router through
one interface arrive over one upstream link — so the *last* LSR of every
branch must be one penultimate router, and their labels can be compared
as if on a common address.  This removes the Unclassified class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..obs import get_registry, span
from .model import Iotp, IotpKey

_IOTPS_CLASSIFIED = get_registry().counter(
    "iotps_classified_total",
    "IOTPs assigned a class by Algorithm 1")


class TunnelClass(Enum):
    """Top-level LPR classes (Algorithm 1)."""

    MONO_LSP = "mono-lsp"
    MULTI_FEC = "multi-fec"
    MONO_FEC = "mono-fec"
    UNCLASSIFIED = "unclassified"


class MonoFecSubclass(Enum):
    """ECMP flavours inside the Mono-FEC class (paper Fig 4c/4d)."""

    ROUTERS_DISJOINT = "routers-disjoint"
    PARALLEL_LINKS = "parallel-links"


@dataclass(frozen=True)
class IotpVerdict:
    """Classification outcome for one IOTP."""

    key: IotpKey
    tunnel_class: TunnelClass
    subclass: Optional[MonoFecSubclass] = None
    dynamic: bool = False
    width: int = 1
    length: int = 0
    symmetry: int = 0


@dataclass
class ClassificationResult:
    """All verdicts of one cycle, with aggregation helpers."""

    verdicts: Dict[IotpKey, IotpVerdict] = field(default_factory=dict)

    def add(self, verdict: IotpVerdict) -> None:
        self.verdicts[verdict.key] = verdict

    def __len__(self) -> int:
        return len(self.verdicts)

    def of_class(self, tunnel_class: TunnelClass) -> List[IotpVerdict]:
        """Verdicts belonging to one class."""
        return [v for v in self.verdicts.values()
                if v.tunnel_class is tunnel_class]

    def counts(self) -> Dict[TunnelClass, int]:
        """IOTP count per class."""
        result = {tunnel_class: 0 for tunnel_class in TunnelClass}
        for verdict in self.verdicts.values():
            result[verdict.tunnel_class] += 1
        return result

    def shares(self) -> Dict[TunnelClass, float]:
        """Class shares (the PDF bars of Figs 6b and 10–15)."""
        total = len(self.verdicts)
        counts = self.counts()
        if total == 0:
            return {tunnel_class: 0.0 for tunnel_class in TunnelClass}
        return {tunnel_class: counts[tunnel_class] / total
                for tunnel_class in TunnelClass}

    def subclass_shares(self) -> Dict[MonoFecSubclass, float]:
        """Parallel-links vs routers-disjoint split (Fig 13)."""
        mono_fec = self.of_class(TunnelClass.MONO_FEC)
        result = {subclass: 0.0 for subclass in MonoFecSubclass}
        if not mono_fec:
            return result
        for verdict in mono_fec:
            result[verdict.subclass] += 1
        return {subclass: count / len(mono_fec)
                for subclass, count in result.items()}

    def for_as(self, asn: int) -> "ClassificationResult":
        """The sub-result restricted to one AS."""
        restricted = ClassificationResult()
        for key, verdict in self.verdicts.items():
            if key[0] == asn:
                restricted.add(verdict)
        return restricted


def classify_iotp(iotp: Iotp, php_heuristic: bool = False) -> IotpVerdict:
    """Algorithm 1, lines 7–28, for a single IOTP."""
    base = dict(key=iotp.key, dynamic=iotp.dynamic, width=iotp.width,
                length=iotp.length, symmetry=iotp.symmetry)

    if iotp.width == 1:
        return IotpVerdict(tunnel_class=TunnelClass.MONO_LSP, **base)

    common = iotp.common_addresses()
    if not common:
        if php_heuristic:
            return IotpVerdict(
                tunnel_class=_php_alias_class(iotp),
                subclass=None, **base,
            )
        return IotpVerdict(tunnel_class=TunnelClass.UNCLASSIFIED, **base)

    for address in common:
        if len(iotp.labels_at(address)) > 1:
            return IotpVerdict(tunnel_class=TunnelClass.MULTI_FEC, **base)

    return IotpVerdict(
        tunnel_class=TunnelClass.MONO_FEC,
        subclass=subclassify_mono_fec(iotp),
        **base,
    )


def subclassify_mono_fec(iotp: Iotp) -> MonoFecSubclass:
    """Parallel links vs disjoint routers (paper §3.2, class 3).

    If every branch carries the *same label sequence* while the
    addresses differ, the differing addresses must be aliases of the
    same LSRs (LDP labels are router-scoped), i.e. diversity comes from
    parallel links only.  Any label difference means distinct routers
    were crossed somewhere.
    """
    sequences = {lsp.labels for lsp in iotp.lsps.values()}
    if len(sequences) == 1:
        return MonoFecSubclass.PARALLEL_LINKS
    return MonoFecSubclass.ROUTERS_DISJOINT


def _php_alias_class(iotp: Iotp) -> TunnelClass:
    """§5 heuristic for IOTPs whose LSPs share no common address.

    All branches end at the same exit interface; to enter it they used
    one upstream link from one penultimate router, so each branch's last
    LSR is an alias of that router.  Compare the labels there as if it
    were a common IP: several labels on one (aliased) router is the
    Multi-FEC signature, a single label the Mono-FEC one.
    """
    last_labels = {
        lsp.hops[-1][1] for lsp in iotp.lsps.values() if lsp.hops
    }
    if len(last_labels) > 1:
        return TunnelClass.MULTI_FEC
    return TunnelClass.MONO_FEC


def classify(iotps: Mapping[IotpKey, Iotp],
             php_heuristic: bool = False) -> ClassificationResult:
    """Classify every filtered IOTP of a cycle (Algorithm 1)."""
    result = ClassificationResult()
    with span("classification.classify", iotps=len(iotps)):
        for key in sorted(iotps):
            verdict = classify_iotp(iotps[key], php_heuristic)
            result.add(verdict)
            _IOTPS_CLASSIFIED.inc(
                tunnel_class=verdict.tunnel_class.value)
    return result
