"""Label-dynamics analysis (paper §4.5, Fig 17).

Given a high-frequency probing campaign through a re-optimizing AS, this
module extracts, per LSR interface, the time series of observed labels
and quantifies the sawtooth: change points, wrap-arounds, and the
per-LSR churn rate whose differences reveal relative LSR load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..net.ip2as import Ip2AsMapper
from ..traces import Trace

# One observation: (timestamp seconds, label value).
LabelSample = Tuple[float, int]


def label_series(traces: Iterable[Trace], ip2as: Ip2AsMapper,
                 asn: int) -> Dict[int, List[LabelSample]]:
    """Per-LSR label time series inside one AS.

    Returns a map from LSR interface address to its chronological
    (timestamp, label) samples, considering only labeled hops whose
    address maps to ``asn``.
    """
    series: Dict[int, List[LabelSample]] = {}
    for trace in traces:
        for hop in trace.hops:
            if hop.address is None or not hop.has_labels:
                continue
            if ip2as.lookup_single(hop.address) != asn:
                continue
            series.setdefault(hop.address, []).append(
                (trace.timestamp, hop.labels[0])
            )
    for samples in series.values():
        samples.sort()
    return series


@dataclass(frozen=True)
class SeriesSummary:
    """Shape statistics of one LSR's label evolution."""

    samples: int
    distinct_labels: int
    change_points: int          # samples where the label differs from
                                # the previous one
    wraps: int                  # label decreased: allocator wrapped
    min_label: int
    max_label: int
    mean_step: float            # average label increase per change

    @property
    def changes_per_sample(self) -> float:
        """Churn rate; higher means the LSR is more solicited."""
        if self.samples <= 1:
            return 0.0
        return self.change_points / (self.samples - 1)


def summarize_series(samples: Sequence[LabelSample]) -> SeriesSummary:
    """Describe one label time series (one curve of Fig 17)."""
    if not samples:
        raise ValueError("empty label series")
    labels = [label for _, label in samples]
    changes = 0
    wraps = 0
    increases: List[int] = []
    for previous, current in zip(labels, labels[1:]):
        if current == previous:
            continue
        changes += 1
        if current < previous:
            wraps += 1
        else:
            increases.append(current - previous)
    mean_step = sum(increases) / len(increases) if increases else 0.0
    return SeriesSummary(
        samples=len(samples),
        distinct_labels=len(set(labels)),
        change_points=changes,
        wraps=wraps,
        min_label=min(labels),
        max_label=max(labels),
        mean_step=mean_step,
    )


def summarize_all(series: Dict[int, List[LabelSample]]
                  ) -> Dict[int, SeriesSummary]:
    """Summaries for every LSR of a campaign."""
    return {address: summarize_series(samples)
            for address, samples in series.items() if samples}


def rank_by_churn(summaries: Dict[int, SeriesSummary]
                  ) -> List[Tuple[int, SeriesSummary]]:
    """LSRs ordered busiest-first (paper: LSR2 evolves faster than LSR1).

    Churn compares labels *consumed* over the campaign: changes weighted
    by their mean step, i.e. how far the allocator counter travelled.
    """
    def travelled(summary: SeriesSummary) -> float:
        span = max(1, summary.max_label - summary.min_label)
        return summary.change_points * summary.mean_step \
            + summary.wraps * span

    return sorted(summaries.items(),
                  key=lambda item: travelled(item[1]), reverse=True)


def step_durations(samples: Sequence[LabelSample]) -> List[float]:
    """Time spent on each label before it changed (seconds).

    The paper notes that step durations are not all equal — some label
    changes are event-driven rather than timer-driven.
    """
    durations: List[float] = []
    step_start: Optional[float] = None
    previous_label: Optional[int] = None
    for timestamp, label in samples:
        if previous_label is None:
            step_start = timestamp
        elif label != previous_label:
            durations.append(timestamp - step_start)
            step_start = timestamp
        previous_label = label
    return durations
