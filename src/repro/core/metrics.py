"""IOTP-level metrics: length, width, symmetry (paper §4.3).

The paper adapts the load-balanced-path metrics of Augustin et al. to
MPLS tunnels:

* **length** — LSRs in the longest LSP of the IOTP (LERs not counted);
* **width** — number of branches (physically or logically distinct LSPs);
* **symmetry** — length difference between the longest and shortest
  branches; 0 means the IOTP is balanced.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .classification import (
    ClassificationResult,
    IotpVerdict,
    TunnelClass,
)


def distribution(values: Iterable[int],
                 clamp: Optional[int] = None) -> Dict[int, float]:
    """Normalized histogram (a PDF over integer values).

    With ``clamp``, every value above it is folded into the clamp bucket
    (the paper's ">= 10" width bucket in Fig 8).
    """
    counts: Dict[int, int] = {}
    total = 0
    for value in values:
        if clamp is not None and value > clamp:
            value = clamp
        counts[value] = counts.get(value, 0) + 1
        total += 1
    if total == 0:
        return {}
    return {value: count / total
            for value, count in sorted(counts.items())}


def length_distribution(result: ClassificationResult) -> Dict[int, float]:
    """IOTP length PDF over all classes (Fig 7)."""
    return distribution(v.length for v in result.verdicts.values())


def width_distribution(result: ClassificationResult,
                       clamp: int = 10) -> Dict[int, float]:
    """IOTP width PDF over all classes (Fig 8a)."""
    return distribution(
        (v.width for v in result.verdicts.values()), clamp=clamp,
    )


def width_distribution_by_class(
    result: ClassificationResult, clamp: int = 10
) -> Dict[TunnelClass, Dict[int, float]]:
    """Per-class width PDFs (Fig 8b compares Mono-FEC vs Multi-FEC)."""
    return {
        tunnel_class: distribution(
            (v.width for v in result.of_class(tunnel_class)), clamp=clamp,
        )
        for tunnel_class in TunnelClass
    }


def symmetry_distribution_by_class(
    result: ClassificationResult, clamp: int = 8
) -> Dict[TunnelClass, Dict[int, float]]:
    """Per-class symmetry PDFs (Fig 9; Mono-LSP is balanced by definition
    and therefore excluded by the paper)."""
    return {
        tunnel_class: distribution(
            (v.symmetry for v in result.of_class(tunnel_class)),
            clamp=clamp,
        )
        for tunnel_class in (TunnelClass.MONO_FEC, TunnelClass.MULTI_FEC)
    }


def balanced_share(result: ClassificationResult,
                   tunnel_class: TunnelClass) -> float:
    """Fraction of one class's IOTPs with symmetry 0 (paper: ~80%)."""
    verdicts = result.of_class(tunnel_class)
    if not verdicts:
        return 0.0
    return sum(1 for v in verdicts if v.symmetry == 0) / len(verdicts)


def share_at_most(pdf: Mapping[int, float], bound: int) -> float:
    """Cumulative probability of values <= bound in a PDF."""
    return sum(share for value, share in pdf.items() if value <= bound)
