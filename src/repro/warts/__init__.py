"""Warts-like trace archive codecs (binary and JSON-lines)."""

from .format import (
    WartsError,
    WartsReader,
    WartsWriter,
    decode_trace,
    encode_trace,
    read_archive,
    write_archive,
)
from .jsonl import (
    dump_jsonl,
    load_jsonl,
    read_jsonl,
    trace_from_dict,
    trace_to_dict,
    write_jsonl,
)

__all__ = [
    "WartsError",
    "WartsReader",
    "WartsWriter",
    "decode_trace",
    "encode_trace",
    "read_archive",
    "write_archive",
    "dump_jsonl",
    "load_jsonl",
    "read_jsonl",
    "trace_from_dict",
    "trace_to_dict",
    "write_jsonl",
]
