"""Warts-like trace archive codecs (binary and JSON-lines)."""

from .format import (
    MAX_RECORD_LENGTH,
    WartsError,
    WartsReader,
    WartsWriter,
    decode_trace,
    encode_trace,
    read_archive,
    salvage_archive,
    write_archive,
)
from .jsonl import (
    dump_jsonl,
    load_jsonl,
    read_jsonl,
    trace_from_dict,
    trace_to_dict,
    write_jsonl,
)

__all__ = [
    "MAX_RECORD_LENGTH",
    "WartsError",
    "WartsReader",
    "WartsWriter",
    "decode_trace",
    "encode_trace",
    "read_archive",
    "salvage_archive",
    "write_archive",
    "dump_jsonl",
    "load_jsonl",
    "read_jsonl",
    "trace_from_dict",
    "trace_to_dict",
    "write_jsonl",
]
