"""Binary warts-like trace archive format.

CAIDA distributes Archipelago traceroutes in scamper's *warts* format.  We
implement a compact binary format with the same role — an append-only
sequence of length-prefixed trace records — so the analysis pipeline
exercises a real parse step instead of holding everything in memory.

Layout (all integers big-endian):

* file header: magic ``b"RWTS"``, u16 version.
* per trace: u32 record length, then the record body::

      u8  monitor-name length, monitor name (utf-8)
      u32 src, u32 dst
      f64 timestamp
      u8  stop reason code
      u16 hop count, then per hop:
          u8  probe ttl
          u8  flags (bit0: responded, bit1: has labels)
          u32 address        (present iff responded)
          f32 rtt in ms      (present iff responded)
          u8  quoted IP TTL  (present iff responded; the qTTL)
          u8  LSE count, then u32 wire LSEs (present iff has labels)

The format is self-framing: a reader can skip unknown records by length,
and truncated files fail loudly with :class:`WartsError`.  Real measurement
archives are messier — CAIDA ships partial ``.warts.gz`` files, transfers
truncate, disks corrupt — so :class:`WartsReader` also offers an opt-in
``tolerant=True`` *salvage* mode that skips corrupt records (bounded
lengths, magic-based resync, decode errors) instead of aborting, counting
every skip by reason in ``warts_records_skipped_total{reason}``.
"""

from __future__ import annotations

import gzip
import struct
from typing import BinaryIO, Dict, Iterator, List, Tuple

from ..mpls.lse import LabelStackEntry
from ..obs import get_logger, get_registry
from ..traces import StopReason, Trace, TraceHop

MAGIC = b"RWTS"
VERSION = 2

MAX_RECORD_LENGTH = 16 * 1024 * 1024
"""Upper bound on one record's claimed length.  A corrupt u32 near 2^32
must never turn into a multi-GB allocation: real traces are a few KiB,
so anything above this cap is treated as framing corruption."""

_RESYNC_CHUNK = 1 << 16

_log = get_logger(__name__)
_RECORDS_SKIPPED = get_registry().counter(
    "warts_records_skipped_total",
    "Corrupt archive records skipped by tolerant readers, by reason")

_STOP_CODES = {reason: code for code, reason in enumerate(StopReason)}
_STOP_REASONS = {code: reason for reason, code in _STOP_CODES.items()}

_FLAG_RESPONDED = 0x01
_FLAG_LABELS = 0x02

# Hot-path formats, compiled once: encode/decode run per hop and per
# LSE over millions of records, where struct.pack/unpack's per-call
# format parse and cache lookup are measurable.
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_HOP_HEAD = struct.Struct("!BB")
_HOP_RESPONSE = struct.Struct("!IfB")
_TRACE_HEAD = struct.Struct("!IIdBH")


class WartsError(ValueError):
    """Raised on malformed archive data."""


def _encode_hop(hop: TraceHop) -> bytes:
    flags = 0
    if not hop.is_anonymous:
        flags |= _FLAG_RESPONDED
    if hop.quoted_stack:
        flags |= _FLAG_LABELS
    parts = [_HOP_HEAD.pack(hop.probe_ttl, flags)]
    if not hop.is_anonymous:
        parts.append(_HOP_RESPONSE.pack(hop.address, hop.rtt_ms,
                                        hop.quoted_ttl))
    if hop.quoted_stack:
        parts.append(_U8.pack(len(hop.quoted_stack)))
        parts.extend(
            _U32.pack(entry.encode()) for entry in hop.quoted_stack
        )
    return b"".join(parts)


def encode_trace(trace: Trace) -> bytes:
    """Serialize one trace record body (without the length prefix)."""
    name = trace.monitor.encode("utf-8")
    if len(name) > 255:
        raise WartsError(f"monitor name too long: {trace.monitor!r}")
    if len(trace.hops) > 0xFFFF:
        raise WartsError(f"too many hops: {len(trace.hops)}")
    parts = [
        _U8.pack(len(name)),
        name,
        _TRACE_HEAD.pack(
            trace.src,
            trace.dst,
            trace.timestamp,
            _STOP_CODES[trace.stop_reason],
            len(trace.hops),
        ),
    ]
    parts.extend(_encode_hop(hop) for hop in trace.hops)
    return b"".join(parts)


class _Cursor:
    """Bounds-checked reader over one record body."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise WartsError("truncated record")
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def unpack(self, fmt: struct.Struct):
        return fmt.unpack(self.take(fmt.size))

    def done(self) -> bool:
        return self.offset == len(self.data)


def decode_trace(body: bytes) -> Trace:
    """Parse one trace record body."""
    cursor = _Cursor(body)
    (name_length,) = cursor.unpack(_U8)
    monitor = cursor.take(name_length).decode("utf-8")
    src, dst, timestamp, stop_code, hop_count = cursor.unpack(
        _TRACE_HEAD)
    if stop_code not in _STOP_REASONS:
        raise WartsError(f"unknown stop reason code {stop_code}")
    hops: List[TraceHop] = []
    for _ in range(hop_count):
        probe_ttl, flags = cursor.unpack(_HOP_HEAD)
        address = None
        rtt = 0.0
        quoted_ttl = 1
        if flags & _FLAG_RESPONDED:
            address, rtt, quoted_ttl = cursor.unpack(_HOP_RESPONSE)
        stack: List[LabelStackEntry] = []
        if flags & _FLAG_LABELS:
            (lse_count,) = cursor.unpack(_U8)
            for _ in range(lse_count):
                (word,) = cursor.unpack(_U32)
                stack.append(LabelStackEntry.decode(word))
        hops.append(TraceHop(probe_ttl=probe_ttl, address=address,
                             rtt_ms=rtt, quoted_stack=tuple(stack),
                             quoted_ttl=quoted_ttl))
    if not cursor.done():
        raise WartsError(
            f"{len(body) - cursor.offset} trailing bytes in record"
        )
    return Trace(monitor=monitor, src=src, dst=dst, timestamp=timestamp,
                 stop_reason=_STOP_REASONS[stop_code], hops=hops)


class WartsWriter:
    """Streams traces into a binary archive."""

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        self._stream.write(MAGIC + _U16.pack(VERSION))
        self.written = 0

    def write(self, trace: Trace) -> None:
        """Append one trace record."""
        body = encode_trace(trace)
        self._stream.write(_U32.pack(len(body)))
        self._stream.write(body)
        self.written += 1

    def write_all(self, traces) -> None:
        """Append every trace from an iterable."""
        for trace in traces:
            self.write(trace)


class WartsReader:
    """Iterates traces out of a binary archive.

    Strict by default: any framing or decode problem raises
    :class:`WartsError`.  With ``tolerant=True`` the reader *salvages*
    instead — every intact record is yielded and each corrupt one is
    skipped and tallied in :attr:`skipped` (and the
    ``warts_records_skipped_total{reason}`` counter):

    * ``oversized_length`` — the length prefix exceeds
      :data:`MAX_RECORD_LENGTH`; the framing is untrustworthy, so the
      reader scans forward for the next embedded file header (magic +
      version) and resumes there;
    * ``truncated_length`` / ``truncated_body`` — the archive ends
      mid-record (a partial transfer); reading stops cleanly;
    * ``decode_error`` — the record body is well-framed but does not
      parse; only that record is lost.
    """

    def __init__(self, stream: BinaryIO, tolerant: bool = False):
        self._stream = stream
        self._buffer = b""
        self.tolerant = tolerant
        self.skipped: Dict[str, int] = {}
        header = self._read(6)
        if len(header) != 6 or header[:4] != MAGIC:
            raise WartsError("not a warts-like archive (bad magic)")
        (version,) = _U16.unpack(header[4:])
        if version != VERSION:
            raise WartsError(f"unsupported version {version}")

    def _read(self, count: int) -> bytes:
        """Up to ``count`` bytes, short only at end of stream."""
        while len(self._buffer) < count:
            chunk = self._stream.read(count - len(self._buffer))
            if not chunk:
                break
            self._buffer += chunk
        out = self._buffer[:count]
        self._buffer = self._buffer[count:]
        return out

    def _skip(self, reason: str) -> None:
        self.skipped[reason] = self.skipped.get(reason, 0) + 1
        _RECORDS_SKIPPED.inc(reason=reason)
        _log.warning("warts.record.skipped", reason=reason)

    def _resync(self) -> bool:
        """Scan forward for an embedded file header; position after it.

        The record stream is length-prefixed with no per-record marker,
        so once a length prefix is corrupt the only trustworthy anchor
        is the next ``MAGIC`` + version sequence (archives are often
        produced by concatenating files).  Returns False at end of
        stream with no anchor found.
        """
        window = self._buffer
        self._buffer = b""
        while True:
            index = window.find(MAGIC)
            if index >= 0:
                rest = window[index + len(MAGIC):]
                while len(rest) < 2:
                    chunk = self._stream.read(_RESYNC_CHUNK)
                    if not chunk:
                        return False
                    rest += chunk
                (version,) = _U16.unpack(rest[:2])
                if version == VERSION:
                    self._buffer = rest[2:]
                    return True
                window = rest  # false positive; keep scanning after it
                continue
            # Keep a possible magic prefix straddling the chunk border.
            window = window[-(len(MAGIC) - 1):]
            chunk = self._stream.read(_RESYNC_CHUNK)
            if not chunk:
                return False
            window += chunk

    def __iter__(self) -> Iterator[Trace]:
        while True:
            length_bytes = self._read(4)
            if not length_bytes:
                return
            if len(length_bytes) != 4:
                if self.tolerant:
                    self._skip("truncated_length")
                    return
                raise WartsError("truncated record length")
            (length,) = _U32.unpack(length_bytes)
            if length > MAX_RECORD_LENGTH:
                if self.tolerant:
                    self._skip("oversized_length")
                    # The four length bytes may themselves start an
                    # embedded file header (concatenated archives) —
                    # let the resync scan see them again.
                    self._buffer = length_bytes + self._buffer
                    if not self._resync():
                        return
                    continue
                raise WartsError(
                    f"record length {length} exceeds the "
                    f"{MAX_RECORD_LENGTH}-byte cap (corrupt archive?)")
            body = self._read(length)
            if len(body) != length:
                if self.tolerant:
                    self._skip("truncated_body")
                    return
                raise WartsError("truncated record body")
            try:
                trace = decode_trace(body)
            except WartsError:
                if self.tolerant:
                    self._skip("decode_error")
                    continue
                raise
            yield trace


def _opener(path, mode: str):
    """gzip-transparent file opener (CAIDA ships .warts.gz too)."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode)


def write_archive(path, traces) -> int:
    """Write traces to a file (gzipped when the name ends in .gz);
    returns the number written."""
    with _opener(path, "wb") as stream:
        writer = WartsWriter(stream)
        writer.write_all(traces)
        return writer.written


def read_archive(path, tolerant: bool = False) -> List[Trace]:
    """Read every trace from a (possibly gzipped) file.

    ``tolerant=True`` salvages what it can from a corrupt archive
    instead of raising (see :class:`WartsReader`); use
    :func:`salvage_archive` when the skip tally is needed too.
    """
    with _opener(path, "rb") as stream:
        return list(WartsReader(stream, tolerant=tolerant))


def salvage_archive(path) -> Tuple[List[Trace], Dict[str, int]]:
    """Tolerantly read a (possibly gzipped) file; also return the
    per-reason tally of corrupt records skipped."""
    with _opener(path, "rb") as stream:
        reader = WartsReader(stream, tolerant=True)
        traces = list(reader)
        return traces, dict(reader.skipped)
