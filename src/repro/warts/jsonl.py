"""JSON-lines codec for traces.

A human-readable sibling of the binary format: one JSON object per line.
Useful for eyeballing simulator output, diffing datasets, and feeding
external tools.  Round-trips exactly with :mod:`repro.warts.format`.
"""

from __future__ import annotations

import json
from typing import Iterator, List, TextIO

from ..mpls.lse import LabelStackEntry
from ..net.ip import int_to_ip, ip_to_int
from ..traces import StopReason, Trace, TraceHop


def trace_to_dict(trace: Trace) -> dict:
    """Convert a trace to a JSON-compatible dict (addresses dotted)."""
    return {
        "monitor": trace.monitor,
        "src": int_to_ip(trace.src),
        "dst": int_to_ip(trace.dst),
        "timestamp": trace.timestamp,
        "stop_reason": trace.stop_reason.value,
        "hops": [
            {
                "probe_ttl": hop.probe_ttl,
                "address": (int_to_ip(hop.address)
                            if hop.address is not None else None),
                "rtt_ms": round(hop.rtt_ms, 6),
                "quoted_ttl": hop.quoted_ttl,
                "mpls": [
                    {"label": e.label, "tc": e.tc,
                     "bottom": e.bottom, "ttl": e.ttl}
                    for e in hop.quoted_stack
                ],
            }
            for hop in trace.hops
        ],
    }


def trace_from_dict(data: dict) -> Trace:
    """Rebuild a trace from its dict form."""
    hops = [
        TraceHop(
            probe_ttl=hop["probe_ttl"],
            address=(ip_to_int(hop["address"])
                     if hop["address"] is not None else None),
            rtt_ms=hop["rtt_ms"],
            quoted_ttl=hop.get("quoted_ttl", 1),
            quoted_stack=tuple(
                LabelStackEntry(label=e["label"], tc=e["tc"],
                                bottom=e["bottom"], ttl=e["ttl"])
                for e in hop.get("mpls", [])
            ),
        )
        for hop in data["hops"]
    ]
    return Trace(
        monitor=data["monitor"],
        src=ip_to_int(data["src"]),
        dst=ip_to_int(data["dst"]),
        timestamp=data["timestamp"],
        stop_reason=StopReason(data["stop_reason"]),
        hops=hops,
    )


def dump_jsonl(traces, stream: TextIO) -> int:
    """Write traces as JSON lines; returns the number written."""
    count = 0
    for trace in traces:
        stream.write(json.dumps(trace_to_dict(trace), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def load_jsonl(stream: TextIO) -> Iterator[Trace]:
    """Yield traces from a JSON-lines stream, skipping blank lines."""
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield trace_from_dict(json.loads(line))
        except (KeyError, ValueError) as exc:
            raise ValueError(f"bad trace on line {line_number}: {exc}")


def read_jsonl(path) -> List[Trace]:
    """Read every trace from a JSON-lines file."""
    with open(path, "r", encoding="utf-8") as stream:
        return list(load_jsonl(stream))


def write_jsonl(path, traces) -> int:
    """Write traces to a JSON-lines file; returns the number written."""
    with open(path, "w", encoding="utf-8") as stream:
        return dump_jsonl(traces, stream)
