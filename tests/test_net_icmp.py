"""Unit tests for the ICMP time-exceeded / RFC 4950 wire codec."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.mpls.lse import LabelStack, MAX_LABEL
from repro.net.icmp import (
    IcmpError,
    MIN_QUOTED_LENGTH,
    MplsExtensionObject,
    TimeExceeded,
    build_probe_quote,
    internet_checksum,
    parse_probe_quote,
)


class TestChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    @given(st.binary(min_size=0, max_size=64).filter(
        lambda data: len(data) % 2 == 0))
    def test_message_with_inserted_checksum_verifies(self, data):
        """Appending the checksum word makes the total verify to zero
        (the receiver-side check), for word-aligned payloads."""
        checksum = internet_checksum(data)
        with_checksum = data + struct.pack("!H", checksum)
        assert internet_checksum(with_checksum) == 0


class TestProbeQuote:
    def test_round_trip(self):
        quote = build_probe_quote(src=111, dst=222, probe_ttl=7)
        assert parse_probe_quote(quote) == (111, 222, 7)

    def test_rejects_short(self):
        with pytest.raises(IcmpError):
            parse_probe_quote(b"\x45\x00")

    def test_rejects_non_ipv4(self):
        quote = bytearray(build_probe_quote(1, 2, 3))
        quote[0] = 0x60  # IPv6 version nibble
        with pytest.raises(IcmpError):
            parse_probe_quote(bytes(quote))


class TestExtensionObject:
    def test_round_trip(self):
        stack = LabelStack.from_labels([300123, 17], ttl=1)
        encoded = MplsExtensionObject(stack).encode()
        decoded, consumed = MplsExtensionObject.decode(encoded)
        assert consumed == len(encoded)
        assert decoded.stack.labels() == (300123, 17)

    def test_rejects_unknown_class(self):
        encoded = bytearray(MplsExtensionObject(
            LabelStack.from_labels([5])).encode())
        encoded[2] = 99
        with pytest.raises(IcmpError, match="class"):
            MplsExtensionObject.decode(bytes(encoded))

    def test_rejects_truncation(self):
        encoded = MplsExtensionObject(
            LabelStack.from_labels([5])).encode()
        with pytest.raises(IcmpError):
            MplsExtensionObject.decode(encoded[:3])


class TestTimeExceeded:
    def test_plain_round_trip(self):
        quote = build_probe_quote(1, 2, 9)
        message = TimeExceeded(quoted=quote)
        decoded = TimeExceeded.decode(message.encode())
        assert decoded.stack is None
        assert decoded.labels == ()
        assert parse_probe_quote(decoded.quoted) == (1, 2, 9)

    def test_mpls_round_trip(self):
        quote = build_probe_quote(1, 2, 9)
        stack = LabelStack.from_labels([301234], ttl=1)
        message = TimeExceeded(quoted=quote, stack=stack)
        decoded = TimeExceeded.decode(message.encode())
        assert decoded.labels == (301234,)
        assert parse_probe_quote(decoded.quoted) == (1, 2, 9)

    def test_extension_pads_quote_to_128(self):
        quote = build_probe_quote(1, 2, 9)
        stack = LabelStack.from_labels([17])
        encoded = TimeExceeded(quoted=quote, stack=stack).encode()
        decoded = TimeExceeded.decode(encoded)
        assert len(decoded.quoted) >= MIN_QUOTED_LENGTH

    def test_stack_of_two(self):
        stack = LabelStack.from_labels([500, 600], ttl=3)
        message = TimeExceeded(quoted=build_probe_quote(1, 2, 3),
                               stack=stack)
        decoded = TimeExceeded.decode(message.encode())
        assert decoded.labels == (500, 600)
        assert decoded.stack[0].ttl == 3

    def test_checksum_validated(self):
        encoded = bytearray(
            TimeExceeded(quoted=build_probe_quote(1, 2, 3)).encode())
        encoded[-1] ^= 0xFF
        with pytest.raises(IcmpError, match="checksum"):
            TimeExceeded.decode(bytes(encoded))

    def test_extension_checksum_validated(self):
        stack = LabelStack.from_labels([17])
        encoded = bytearray(TimeExceeded(
            quoted=build_probe_quote(1, 2, 3), stack=stack).encode())
        # Corrupt the last byte (inside the extension) and refresh the
        # outer ICMP checksum so only the inner one fails.
        encoded[-1] ^= 0x01
        encoded[2:4] = b"\x00\x00"
        fixed = internet_checksum(bytes(encoded))
        encoded[2:4] = struct.pack("!H", fixed)
        with pytest.raises(IcmpError, match="checksum"):
            TimeExceeded.decode(bytes(encoded))

    def test_rejects_wrong_type(self):
        encoded = bytearray(
            TimeExceeded(quoted=build_probe_quote(1, 2, 3)).encode())
        encoded[0] = 3  # destination unreachable
        encoded[2:4] = b"\x00\x00"
        encoded[2:4] = struct.pack(
            "!H", internet_checksum(bytes(encoded)))
        with pytest.raises(IcmpError, match="time-exceeded"):
            TimeExceeded.decode(bytes(encoded))

    def test_rejects_short_message(self):
        with pytest.raises(IcmpError):
            TimeExceeded.decode(b"\x0b\x00")

    def test_empty_stack_treated_as_plain(self):
        message = TimeExceeded(quoted=build_probe_quote(1, 2, 3),
                               stack=LabelStack())
        decoded = TimeExceeded.decode(message.encode())
        assert decoded.stack is None

    @given(st.lists(st.integers(min_value=16, max_value=MAX_LABEL),
                    min_size=1, max_size=4),
           st.integers(min_value=1, max_value=255))
    def test_round_trip_property(self, labels, ttl):
        stack = LabelStack.from_labels(labels, ttl=1)
        message = TimeExceeded(
            quoted=build_probe_quote(3, 4, ttl), stack=stack)
        decoded = TimeExceeded.decode(message.encode())
        assert decoded.labels == tuple(labels)
        assert parse_probe_quote(decoded.quoted)[2] == ttl
