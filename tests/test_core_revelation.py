"""Tests for the tunnel-revelation taxonomy (§2.3 background)."""

import pytest

from repro.core.revelation import (
    RevealedTunnel,
    TunnelVisibility,
    reveal_tunnels,
    visibility_census,
)
from repro.mpls.lse import LabelStackEntry
from repro.traces import StopReason, Trace, TraceHop


def hop(ttl, address, label=None, lse_ttl=1, quoted_ttl=1,
        anonymous=False):
    if anonymous:
        return TraceHop(probe_ttl=ttl, address=None)
    stack = ()
    if label is not None:
        stack = (LabelStackEntry(label, bottom=True, ttl=lse_ttl),)
    return TraceHop(probe_ttl=ttl, address=address, rtt_ms=1.0,
                    quoted_stack=stack, quoted_ttl=quoted_ttl)


def trace(*hops):
    return Trace(monitor="m", src=1, dst=99, timestamp=0.0,
                 stop_reason=StopReason.COMPLETED, hops=list(hops))


class TestExplicitDetection:
    def test_explicit_run(self):
        t = trace(hop(1, 10),
                  hop(2, 20, label=100, quoted_ttl=2),
                  hop(3, 21, label=200, quoted_ttl=3),
                  hop(4, 30), hop(5, 99))
        tunnels = reveal_tunnels(t)
        assert len(tunnels) == 1
        tunnel = tunnels[0]
        assert tunnel.visibility is TunnelVisibility.EXPLICIT
        assert tunnel.hop_count == 2
        assert tunnel.inferred_length == 2
        assert tunnel.start_index == 1

    def test_plain_trace_reveals_nothing(self):
        t = trace(hop(1, 10), hop(2, 11), hop(3, 99))
        assert reveal_tunnels(t) == []


class TestImplicitDetection:
    def test_qttl_signature(self):
        """Label-less hops whose qTTL climbs 2, 3, 4: an implicit
        tunnel (ttl-propagate without RFC 4950)."""
        t = trace(hop(1, 10),
                  hop(2, 20, quoted_ttl=2),
                  hop(3, 21, quoted_ttl=3),
                  hop(4, 22, quoted_ttl=4),
                  hop(5, 30), hop(6, 99))
        tunnels = reveal_tunnels(t)
        assert len(tunnels) == 1
        assert tunnels[0].visibility is TunnelVisibility.IMPLICIT
        assert tunnels[0].inferred_length == 3

    def test_non_monotone_qttl_splits_runs(self):
        t = trace(hop(1, 10),
                  hop(2, 20, quoted_ttl=2),
                  hop(3, 21, quoted_ttl=2),  # not climbing: new tunnel
                  hop(4, 99))
        tunnels = reveal_tunnels(t)
        assert len(tunnels) == 2
        assert all(tn.visibility is TunnelVisibility.IMPLICIT
                   for tn in tunnels)

    def test_qttl_one_is_ordinary(self):
        t = trace(hop(1, 10, quoted_ttl=1), hop(2, 99, quoted_ttl=1))
        assert reveal_tunnels(t) == []


class TestOpaqueDetection:
    def test_high_lse_ttl_hop(self):
        t = trace(hop(1, 10), hop(2, 20, label=300, lse_ttl=250),
                  hop(3, 99))
        tunnels = reveal_tunnels(t)
        assert len(tunnels) == 1
        tunnel = tunnels[0]
        assert tunnel.visibility is TunnelVisibility.OPAQUE
        assert tunnel.hop_count == 1
        # 255 - 250 + 1 = 6 hidden LSRs.
        assert tunnel.inferred_length == 6

    def test_explicit_not_mistaken_for_opaque(self):
        t = trace(hop(1, 10), hop(2, 20, label=300, lse_ttl=1),
                  hop(3, 30), hop(4, 99))
        (tunnel,) = reveal_tunnels(t)
        assert tunnel.visibility is TunnelVisibility.EXPLICIT


class TestMixedTraces:
    def test_explicit_then_opaque(self):
        t = trace(hop(1, 10),
                  hop(2, 20, label=100),
                  hop(3, 30),
                  hop(4, 40, label=300, lse_ttl=251),
                  hop(5, 99))
        kinds = [tn.visibility for tn in reveal_tunnels(t)]
        assert kinds == [TunnelVisibility.EXPLICIT,
                         TunnelVisibility.OPAQUE]

    def test_census(self):
        traces = [
            trace(hop(1, 10), hop(2, 20, label=100), hop(3, 99)),
            trace(hop(1, 10), hop(2, 20, quoted_ttl=2),
                  hop(3, 21, quoted_ttl=3), hop(4, 99)),
            trace(hop(1, 10), hop(2, 99)),
        ]
        census = visibility_census(traces)
        assert census.trace_count == 3
        assert census.tunnels[TunnelVisibility.EXPLICIT] == 1
        assert census.tunnels[TunnelVisibility.IMPLICIT] == 1
        assert census.tunnels[TunnelVisibility.OPAQUE] == 0
        assert census.share_of_traces(TunnelVisibility.EXPLICIT) \
            == pytest.approx(1 / 3)


class TestOnSimulatedData:
    """The taxonomy observed end to end on the paper universe, whose
    scenario deliberately contains one implicit (65105, no RFC 4950)
    and one invisible-by-default (65106, no ttl-propagate but Juniper
    RFC 4950 => opaque) deployment."""

    @pytest.fixture(scope="class")
    def cycle(self):
        from repro.sim import ArkSimulator, paper_scenario

        simulator = ArkSimulator(paper_scenario(scale=0.6, seed=11))
        return simulator, simulator.run_cycle(40)

    def test_all_three_kinds_present(self, cycle):
        _, data = cycle
        census = visibility_census(data.traces)
        assert census.tunnels[TunnelVisibility.EXPLICIT] > 0
        assert census.tunnels[TunnelVisibility.IMPLICIT] > 0
        assert census.tunnels[TunnelVisibility.OPAQUE] > 0

    def test_implicit_tunnels_map_to_no_rfc4950_as(self, cycle):
        simulator, data = cycle
        ip2as = simulator.internet.ip2as
        implicit_ases = set()
        for trace in data.traces:
            for tunnel in reveal_tunnels(trace):
                if tunnel.visibility is TunnelVisibility.IMPLICIT:
                    address = trace.hops[tunnel.start_index].address
                    implicit_ases.add(ip2as.lookup_single(address))
        assert implicit_ases == {65105}

    def test_opaque_tunnels_map_to_no_propagate_as(self, cycle):
        simulator, data = cycle
        ip2as = simulator.internet.ip2as
        opaque_ases = set()
        for trace in data.traces:
            for tunnel in reveal_tunnels(trace):
                if tunnel.visibility is TunnelVisibility.OPAQUE:
                    address = trace.hops[tunnel.start_index].address
                    opaque_ases.add(ip2as.lookup_single(address))
        assert opaque_ases == {65106}

    def test_opaque_length_close_to_truth(self, cycle):
        """The LSE-TTL deficit approximates the hidden LSR count."""
        simulator, data = cycle
        for trace in data.traces:
            for tunnel in reveal_tunnels(trace):
                if tunnel.visibility is TunnelVisibility.OPAQUE:
                    assert 1 <= tunnel.inferred_length <= 12
