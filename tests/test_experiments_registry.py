"""Tests for the experiment registry (artifact regeneration paths)."""

import pytest

from repro.analysis import (
    ALL_ARTIFACTS,
    FOCUS_ASES,
    FigureResult,
    TableResult,
    regenerate,
    run_longitudinal_study,
)


@pytest.fixture(scope="module")
def small_study():
    """A truncated study, just big enough for every artifact to run."""
    return run_longitudinal_study(scale=0.5, seed=77, cycles=12)


class TestRegistry:
    def test_all_artifacts_enumerated(self):
        assert len(ALL_ARTIFACTS) == 16
        assert set(ALL_ARTIFACTS) >= {
            "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "fig16", "fig17", "table1", "table2",
        }

    def test_unknown_artifact_raises(self, small_study):
        with pytest.raises(KeyError, match="fig99"):
            regenerate(small_study, "fig99")

    def test_focus_as_registry(self):
        assert set(FOCUS_ASES) == {1273, 7018, 6453, 2914, 3356}

    @pytest.mark.parametrize("artifact", [
        "fig5a", "fig5b", "fig7", "fig8", "fig9",
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    ])
    def test_figures_regenerate(self, small_study, artifact):
        result = regenerate(small_study, artifact)
        assert isinstance(result, FigureResult)
        assert result.figure_id == artifact
        assert result.text
        assert result.data

    @pytest.mark.parametrize("artifact", ["table1", "table2"])
    def test_tables_regenerate(self, small_study, artifact):
        result = regenerate(small_study, artifact)
        assert isinstance(result, TableResult)
        assert result.table_id == artifact
        assert result.text

    def test_fig17_campaign(self, small_study):
        result = regenerate(small_study, "fig17")
        assert result.data["summaries"]
        assert result.data["ranked"]

    def test_study_shape(self, small_study):
        assert len(small_study.longitudinal) == 12
        assert small_study.last_cycle.cycle == 12

    def test_str_render(self, small_study):
        text = str(regenerate(small_study, "table1"))
        assert text.startswith("== table1 ==")
