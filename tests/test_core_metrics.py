"""Unit tests for IOTP metrics and their distributions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.classification import (
    ClassificationResult,
    IotpVerdict,
    TunnelClass,
)
from repro.core.metrics import (
    balanced_share,
    distribution,
    length_distribution,
    share_at_most,
    symmetry_distribution_by_class,
    width_distribution,
    width_distribution_by_class,
)


def verdict(key_suffix, tunnel_class, width=1, length=2, symmetry=0):
    return IotpVerdict(
        key=(65001, 1, key_suffix),
        tunnel_class=tunnel_class,
        width=width, length=length, symmetry=symmetry,
    )


def make_result(verdicts):
    result = ClassificationResult()
    for item in verdicts:
        result.add(item)
    return result


class TestDistribution:
    def test_normalizes(self):
        pdf = distribution([1, 1, 2, 3])
        assert pdf == {1: 0.5, 2: 0.25, 3: 0.25}

    def test_empty(self):
        assert distribution([]) == {}

    def test_clamp_folds_tail(self):
        pdf = distribution([1, 5, 25, 99], clamp=10)
        assert pdf == {1: 0.25, 5: 0.25, 10: 0.5}

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1))
    def test_sums_to_one(self, values):
        pdf = distribution(values)
        assert sum(pdf.values()) == pytest.approx(1.0)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1),
           st.integers(min_value=1, max_value=20))
    def test_clamped_sums_to_one(self, values, clamp):
        pdf = distribution(values, clamp=clamp)
        assert sum(pdf.values()) == pytest.approx(1.0)
        assert max(pdf) <= clamp


class TestIotpDistributions:
    def build(self):
        return make_result([
            verdict(1, TunnelClass.MONO_LSP, width=1, length=1),
            verdict(2, TunnelClass.MONO_LSP, width=1, length=2),
            verdict(3, TunnelClass.MONO_FEC, width=2, length=3,
                    symmetry=0),
            verdict(4, TunnelClass.MONO_FEC, width=12, length=3,
                    symmetry=1),
            verdict(5, TunnelClass.MULTI_FEC, width=2, length=5,
                    symmetry=0),
        ])

    def test_length_distribution(self):
        pdf = length_distribution(self.build())
        assert pdf[1] == pytest.approx(0.2)
        assert pdf[3] == pytest.approx(0.4)

    def test_width_distribution_clamps(self):
        pdf = width_distribution(self.build(), clamp=10)
        assert pdf[1] == pytest.approx(0.4)
        assert pdf[10] == pytest.approx(0.2)  # the width-12 IOTP

    def test_width_by_class(self):
        per_class = width_distribution_by_class(self.build())
        assert per_class[TunnelClass.MONO_LSP] == {1: 1.0}
        assert per_class[TunnelClass.MULTI_FEC] == {2: 1.0}

    def test_symmetry_by_class_excludes_mono_lsp(self):
        per_class = symmetry_distribution_by_class(self.build())
        assert set(per_class) == {TunnelClass.MONO_FEC,
                                  TunnelClass.MULTI_FEC}
        assert per_class[TunnelClass.MONO_FEC] == {0: 0.5, 1: 0.5}

    def test_balanced_share(self):
        result = self.build()
        assert balanced_share(result, TunnelClass.MONO_FEC) == 0.5
        assert balanced_share(result, TunnelClass.MULTI_FEC) == 1.0
        assert balanced_share(ClassificationResult(),
                              TunnelClass.MONO_FEC) == 0.0

    def test_share_at_most(self):
        pdf = length_distribution(self.build())
        assert share_at_most(pdf, 3) == pytest.approx(0.8)
        assert share_at_most(pdf, 0) == 0.0
        assert share_at_most(pdf, 99) == pytest.approx(1.0)
