"""Unit tests for the radix trie longest-prefix-match."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import MAX_IPV4, Prefix, ip_to_int
from repro.net.radix import RadixTrie, trie_from_pairs


def make_trie(entries):
    return trie_from_pairs(
        (Prefix.parse(text), value) for text, value in entries
    )


class TestRadixTrie:
    def test_empty_lookup(self):
        assert RadixTrie().lookup(ip_to_int("10.0.0.1")) is None

    def test_exact_match(self):
        trie = make_trie([("192.0.2.0/24", "a")])
        assert trie.lookup_str("192.0.2.7") == "a"
        assert trie.lookup_str("192.0.3.7") is None

    def test_longest_prefix_wins(self):
        trie = make_trie([
            ("10.0.0.0/8", "coarse"),
            ("10.1.0.0/16", "mid"),
            ("10.1.2.0/24", "fine"),
        ])
        assert trie.lookup_str("10.1.2.3") == "fine"
        assert trie.lookup_str("10.1.9.9") == "mid"
        assert trie.lookup_str("10.9.9.9") == "coarse"

    def test_default_route(self):
        trie = make_trie([("0.0.0.0/0", "default"), ("10.0.0.0/8", "ten")])
        assert trie.lookup_str("11.0.0.1") == "default"
        assert trie.lookup_str("10.0.0.1") == "ten"

    def test_lookup_with_prefix(self):
        trie = make_trie([("10.0.0.0/8", "x")])
        match = trie.lookup_with_prefix(ip_to_int("10.1.2.3"))
        assert match is not None
        prefix, value = match
        assert str(prefix) == "10.0.0.0/8"
        assert value == "x"

    def test_lookup_exact(self):
        trie = make_trie([("10.0.0.0/8", "x"), ("10.0.0.0/16", "y")])
        assert trie.lookup_exact(Prefix.parse("10.0.0.0/8")) == "x"
        assert trie.lookup_exact(Prefix.parse("10.0.0.0/16")) == "y"
        assert trie.lookup_exact(Prefix.parse("10.0.0.0/12")) is None

    def test_insert_replaces(self):
        trie = make_trie([("10.0.0.0/8", "old")])
        trie.insert(Prefix.parse("10.0.0.0/8"), "new")
        assert trie.lookup_str("10.0.0.1") == "new"
        assert len(trie) == 1

    def test_remove(self):
        trie = make_trie([("10.0.0.0/8", "a"), ("10.1.0.0/16", "b")])
        assert trie.remove(Prefix.parse("10.1.0.0/16"))
        assert trie.lookup_str("10.1.0.1") == "a"
        assert len(trie) == 1
        assert not trie.remove(Prefix.parse("10.1.0.0/16"))

    def test_remove_absent_branch(self):
        trie = make_trie([("10.0.0.0/8", "a")])
        assert not trie.remove(Prefix.parse("192.0.2.0/24"))

    def test_host_route(self):
        trie = make_trie([("10.0.0.0/8", "net"), ("10.0.0.1/32", "host")])
        assert trie.lookup_str("10.0.0.1") == "host"
        assert trie.lookup_str("10.0.0.2") == "net"

    def test_items_yields_all(self):
        entries = [("10.0.0.0/8", 1), ("10.1.0.0/16", 2),
                   ("192.0.2.0/24", 3)]
        trie = make_trie(entries)
        got = {(str(p), v) for p, v in trie.items()}
        assert got == {(t, v) for t, v in entries}

    def test_len_counts_unique_prefixes(self):
        trie = make_trie([("10.0.0.0/8", 1), ("10.0.0.0/16", 2)])
        assert len(trie) == 2

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=MAX_IPV4),
                  st.integers(min_value=8, max_value=32)),
        min_size=1, max_size=40,
    ))
    def test_matches_linear_scan(self, raw_entries):
        """Trie LPM agrees with a brute-force longest-match scan."""
        prefixes = {}
        for address, length in raw_entries:
            prefix = Prefix.from_host(address, length)
            prefixes[prefix] = str(prefix)
        trie = trie_from_pairs(prefixes.items())
        probes = [address for address, _ in raw_entries] + [0, MAX_IPV4]
        for probe in probes:
            expected = None
            best_length = -1
            for prefix, value in prefixes.items():
                if probe in prefix and prefix.length > best_length:
                    best_length = prefix.length
                    expected = value
            assert trie.lookup(probe) == expected
