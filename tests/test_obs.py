"""Tests for the observability layer (repro.obs)."""

import json
import logging

import pytest

from repro.core import LprPipeline
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    FakeClock,
    JsonFormatter,
    KeyValueFormatter,
    MetricsRegistry,
    MonotonicClock,
    NullClock,
    Tracer,
    configure_logging,
    get_logger,
    get_registry,
    get_tracer,
    set_tracer,
    snapshot_to_json,
    span,
    to_prometheus,
    traced,
)
from repro.obs.metrics import Counter, Histogram
from repro.sim import ArkSimulator, paper_scenario


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner-a", "inner-b"]

    def test_fake_clock_durations_are_exact(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
        (root,) = tracer.roots
        assert root.duration == 1.25
        assert root.children[0].duration == 0.25
        assert root.self_time == 1.0

    def test_null_clock_keeps_structure_without_timing(self):
        tracer = Tracer(NullClock())
        with tracer.span("stage", cycle=3) as node:
            pass
        assert node.duration == 0.0
        assert node.attrs == {"cycle": 3}

    def test_span_reopens_after_exception(self):
        tracer = Tracer(FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError
        assert tracer.active is None
        assert tracer.roots[0].end is not None

    def test_totals_aggregate_by_name(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        for _ in range(3):
            with tracer.span("stage"):
                clock.advance(0.5)
        (totals,) = tracer.totals()
        assert totals.count == 3
        assert totals.total_s == pytest.approx(1.5)
        assert totals.mean_ms == pytest.approx(500.0)

    def test_decorator_and_global_tracer(self):
        saved = get_tracer()
        tracer = set_tracer(Tracer(FakeClock()))
        try:
            @traced("decorated", kind="test")
            def work():
                return 42

            assert work() == 42
            with span("manual"):
                pass
            assert [s.name for s in tracer.roots] == ["decorated",
                                                      "manual"]
        finally:
            set_tracer(saved)

    def test_to_dict_round_trips_through_json(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("outer", cycle=1):
            clock.advance(2.0)
            with tracer.span("inner"):
                clock.advance(1.0)
        data = json.loads(json.dumps(tracer.to_dict()))
        assert data[0]["name"] == "outer"
        assert data[0]["duration_s"] == 3.0
        assert data[0]["children"][0]["duration_s"] == 1.0


class TestCounters:
    def test_inc_and_labels(self):
        counter = Counter("things_total")
        counter.inc()
        counter.inc(4, kind="a")
        counter.inc(2, kind="a")
        assert counter.value() == 1
        assert counter.value(kind="a") == 6
        assert counter.value(kind="b") == 0

    def test_counters_cannot_decrease(self):
        counter = Counter("things_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_registry_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total")
        b = registry.counter("hits_total")
        assert a is b
        with pytest.raises(TypeError):
            registry.gauge("hits_total")

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value() == 3


class TestHistograms:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("sizes", buckets=(1, 10, 100))
        for value in (0.5, 5, 5, 50, 5000):
            histogram.observe(value)
        cell = histogram.snapshot_cell()
        assert cell["buckets"] == [1, 2, 1, 1]
        assert cell["count"] == 5
        assert cell["sum"] == pytest.approx(5060.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(10, 1))


class TestSnapshots:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("lsps_total").inc(7, filter="incomplete")
        registry.gauge("level").set(3.5)
        registry.histogram("sizes", buckets=(1, 10)).observe(4)
        return registry

    def test_json_export_round_trip(self):
        registry = self.build()
        snapshot = registry.snapshot()
        decoded = json.loads(snapshot_to_json(snapshot))
        assert decoded == json.loads(json.dumps(snapshot))
        assert decoded["lsps_total"]["values"][0] == {
            "labels": {"filter": "incomplete"}, "value": 7}
        assert decoded["sizes"]["values"][0]["value"]["count"] == 1

    def test_diff_subtracts_counters_keeps_gauges(self):
        registry = self.build()
        before = registry.snapshot()
        registry.counter("lsps_total").inc(3, filter="incomplete")
        registry.gauge("level").set(9.0)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta["lsps_total"]["values"][0]["value"] == 3
        assert delta["level"]["values"][0]["value"] == 9.0
        assert "sizes" not in delta  # zero delta dropped

    def test_diff_drops_unchanged_gauges(self):
        # A long-lived gauge set *before* the window (a worker's peak
        # RSS, say) must not leak into every later delta: only gauges
        # that changed inside the window survive the diff.
        registry = self.build()
        before = registry.snapshot()
        registry.counter("lsps_total").inc(1, filter="incomplete")
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert "level" not in delta
        assert delta["lsps_total"]["values"][0]["value"] == 1

    def test_merge_sums_counters_and_histograms(self):
        one = self.build().snapshot()
        two = self.build().snapshot()
        merged = MetricsRegistry.merge([one, two])
        assert merged["lsps_total"]["values"][0]["value"] == 14
        assert merged["sizes"]["values"][0]["value"]["count"] == 2

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = self.build()
        registry.reset()
        assert registry.counter("lsps_total").value(
            filter="incomplete") == 0

    def test_absorb_reapplies_a_delta(self):
        registry = self.build()
        before = registry.snapshot()
        registry.counter("lsps_total").inc(3, filter="incomplete")
        registry.histogram("sizes").observe(2)
        delta = MetricsRegistry.diff(before, registry.snapshot())

        other = self.build()
        other.absorb(delta)
        assert other.counter("lsps_total").value(
            filter="incomplete") == 10
        cell = other.histogram("sizes").snapshot_cell()
        assert cell["count"] == 2
        assert cell["sum"] == 6.0

    def test_absorb_sets_gauges(self):
        registry = self.build()
        registry.absorb({"level": {
            "type": "gauge", "help": "",
            "values": [{"labels": {}, "value": 9.0}]}})
        assert registry.gauge("level").value() == 9.0

    def test_absorb_creates_missing_metrics(self):
        registry = MetricsRegistry()
        registry.absorb(self.build().snapshot())
        assert registry.counter("lsps_total").value(
            filter="incomplete") == 7
        assert registry.histogram("sizes").buckets == (1.0, 10.0)
        assert registry.histogram("sizes").snapshot_cell()["count"] == 1

    def test_absorb_round_trips_with_serial_totals(self):
        # Two "shards" each diffed against their own baseline absorb
        # into a fresh registry to the same totals as one serial run.
        serial = MetricsRegistry()
        parent = MetricsRegistry()
        for rounds in (2, 3):
            shard = MetricsRegistry()
            before = shard.snapshot()
            for _ in range(rounds):
                shard.counter("cycles_total").inc()
                serial.counter("cycles_total").inc()
            parent.absorb(MetricsRegistry.diff(before, shard.snapshot()))
        assert parent.snapshot() == serial.snapshot()

    def test_absorb_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetricsRegistry().absorb({"weird": {
                "type": "summary", "values": []}})

    def test_absorb_rejects_mismatched_histogram_cell(self):
        registry = self.build()
        with pytest.raises(ValueError):
            registry.histogram("sizes").absorb_cell(
                {"buckets": [1, 0], "sum": 0.5, "count": 1})

    def test_prometheus_text_format(self):
        text = to_prometheus(self.build())
        assert '# TYPE lsps_total counter' in text
        assert 'lsps_total{filter="incomplete"} 7' in text
        assert 'sizes_bucket{le="10"} 1' in text
        assert 'sizes_bucket{le="+Inf"} 1' in text
        assert 'sizes_count 1' in text


class TestPrometheusGolden:
    """Exact-text exposition checks: escaping, bucket math, spellings."""

    def build(self):
        registry = MetricsRegistry()
        weird = registry.counter("weird_total", "odd labels")
        weird.inc(1, path=r"C:\tmp", note='say "hi"', text="a\nb")
        gauge = registry.gauge("extremes", "non-finite values")
        gauge.set(float("inf"), kind="pos")
        gauge.set(float("-inf"), kind="neg")
        gauge.set(float("nan"), kind="nan")
        gauge.set(1e21, kind="huge")
        hist = registry.histogram("latency", "with odd bounds",
                                  buckets=(1e-07, 0.5, 1e21))
        for value in (0.0, 0.25, 0.75, 2.0, 1e22):
            hist.observe(value)
        return registry

    def test_golden_exposition(self):
        expected = "\n".join([
            "# HELP extremes non-finite values",
            "# TYPE extremes gauge",
            'extremes{kind="huge"} 1000000000000000000000',
            'extremes{kind="nan"} NaN',
            'extremes{kind="neg"} -Inf',
            'extremes{kind="pos"} +Inf',
            "# HELP latency with odd bounds",
            "# TYPE latency histogram",
            'latency_bucket{le="0.0000001"} 1',
            'latency_bucket{le="0.5"} 2',
            'latency_bucket{le="1000000000000000000000"} 4',
            'latency_bucket{le="+Inf"} 5',
            # 1e22 + 3 rounds to 1e22 in float64; what matters here is
            # the plain-decimal expansion of the e-notation repr.
            "latency_sum 10000000000000000000000",
            "latency_count 5",
            "# HELP weird_total odd labels",
            "# TYPE weird_total counter",
            'weird_total{note="say \\"hi\\"",'
            'path="C:\\\\tmp",text="a\\nb"} 1',
            "",
        ])
        assert to_prometheus(self.build()) == expected

    def test_le_buckets_are_cumulative_monotone(self):
        text = to_prometheus(self.build())
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("latency_bucket")]
        assert counts == sorted(counts)

    def test_exposition_content_type(self):
        # The 0.0.4 text exposition content type scrapers negotiate on;
        # /metrics serves exactly this string.
        assert PROMETHEUS_CONTENT_TYPE == \
            "text/plain; version=0.0.4; charset=utf-8"

    def test_inf_bucket_equals_count(self):
        text = to_prometheus(self.build())
        lines = text.splitlines()
        (inf_line,) = [l for l in lines if '{le="+Inf"}' in l]
        (count_line,) = [l for l in lines
                         if l.startswith("latency_count")]
        assert inf_line.rsplit(" ", 1)[1] == \
            count_line.rsplit(" ", 1)[1]


class TestFormatNumber:
    def test_spellings(self):
        from repro.obs.export import _format_number
        assert _format_number(float("inf")) == "+Inf"
        assert _format_number(float("-inf")) == "-Inf"
        assert _format_number(float("nan")) == "NaN"
        assert _format_number(2.5) == "2.5"
        assert _format_number(3.0) == "3"
        assert _format_number(7) == "7"
        # repr() e-notation is expanded to plain decimal
        assert _format_number(1e-07) == "0.0000001"
        assert _format_number(1e21) == "1000000000000000000000"
        assert _format_number(2.5e-09) == "0.0000000025"


class TestStructuredLogging:
    def test_key_value_line(self, capsys):
        handler = configure_logging(level="info")
        try:
            get_logger("repro.test").info("cycle.done", cycle=3,
                                          note="two words")
        finally:
            logging.getLogger("repro").removeHandler(handler)
        err = capsys.readouterr().err
        assert "repro.test cycle.done" in err
        assert "cycle=3" in err
        assert 'note="two words"' in err

    def test_json_lines(self, capsys):
        handler = configure_logging(level="debug", json_output=True)
        try:
            get_logger("repro.test").debug("probe.sent", ttl=7)
        finally:
            logging.getLogger("repro").removeHandler(handler)
        record = json.loads(capsys.readouterr().err.strip())
        assert record["event"] == "probe.sent"
        assert record["ttl"] == 7
        assert record["level"] == "debug"

    def test_level_gating(self, capsys):
        handler = configure_logging(level="warning")
        try:
            get_logger("repro.test").info("hidden")
            get_logger("repro.test").warning("shown")
        finally:
            logging.getLogger("repro").removeHandler(handler)
        err = capsys.readouterr().err
        assert "hidden" not in err
        assert "shown" in err

    def test_loggers_are_rerooted_under_repro(self):
        assert get_logger("outsider").name == "repro.outsider"
        assert get_logger("repro.sim.ark").name == "repro.sim.ark"

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")


class TestPipelineReconciliation:
    """Filter drop counters must agree exactly with FilterStats."""

    @pytest.fixture(scope="class")
    def cycle_result(self):
        simulator = ArkSimulator(paper_scenario(scale=0.4, seed=7))
        pipeline = LprPipeline(simulator.internet.ip2as)
        get_registry().reset()
        return pipeline.process_cycle(simulator.run_cycle(30))

    def drops(self, result):
        values = result.metrics["lsps_dropped_total"]["values"]
        return {entry["labels"]["filter"]: entry["value"]
                for entry in values}

    def test_per_filter_drops_match_filter_stats(self, cycle_result):
        stats = cycle_result.filter_stats
        drops = self.drops(cycle_result)
        expected = {
            "incomplete": stats.extracted - stats.after_incomplete,
            "intra_as": stats.after_incomplete - stats.after_intra_as,
            "target_as": stats.after_intra_as - stats.after_target_as,
            "transit_diversity":
                stats.after_target_as - stats.after_transit_diversity,
            "persistence":
                stats.after_transit_diversity - stats.after_persistence,
        }
        for stage, value in expected.items():
            assert drops.get(stage, 0) == value, stage

    def test_drop_sum_equals_total_attrition(self, cycle_result):
        stats = cycle_result.filter_stats
        assert sum(self.drops(cycle_result).values()) == \
            stats.extracted - stats.after_persistence

    def test_classification_counters_match_counts(self, cycle_result):
        values = cycle_result.metrics[
            "iotps_classified_total"]["values"]
        counted = {entry["labels"]["tunnel_class"]: entry["value"]
                   for entry in values}
        for tunnel_class, count in \
                cycle_result.classification.counts().items():
            assert counted.get(tunnel_class.value, 0) == count

    def test_cycle_metrics_are_deterministic(self):
        def run():
            simulator = ArkSimulator(paper_scenario(scale=0.4, seed=7))
            pipeline = LprPipeline(simulator.internet.ip2as)
            return pipeline.process_cycle(simulator.run_cycle(30))

        assert run().metrics == run().metrics

    def test_null_clock_is_the_default(self):
        assert isinstance(get_tracer().clock, (NullClock,
                                               MonotonicClock))
        # A fresh tracer must never read the wall clock by default.
        assert isinstance(Tracer().clock, NullClock)
