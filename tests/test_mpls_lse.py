"""Unit tests for the MPLS label stack entry wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.mpls.lse import (
    LabelError,
    LabelStack,
    LabelStackEntry,
    MAX_LABEL,
    IMPLICIT_NULL,
    RESERVED_LABEL_MAX,
)

labels = st.integers(min_value=0, max_value=MAX_LABEL)
tcs = st.integers(min_value=0, max_value=7)
ttls = st.integers(min_value=0, max_value=255)


class TestLabelStackEntry:
    def test_encode_layout(self):
        entry = LabelStackEntry(label=1, tc=1, bottom=True, ttl=1)
        # label 1 -> bits 31..12, tc 1 -> bits 11..9, S -> bit 8, ttl 1.
        assert entry.encode() == (1 << 12) | (1 << 9) | (1 << 8) | 1

    @given(labels, tcs, st.booleans(), ttls)
    def test_encode_decode_round_trip(self, label, tc, bottom, ttl):
        entry = LabelStackEntry(label, tc, bottom, ttl)
        assert LabelStackEntry.decode(entry.encode()) == entry

    @given(labels, tcs, st.booleans(), ttls)
    def test_bytes_round_trip(self, label, tc, bottom, ttl):
        entry = LabelStackEntry(label, tc, bottom, ttl)
        data = entry.to_bytes()
        assert len(data) == 4
        assert LabelStackEntry.from_bytes(data) == entry

    @pytest.mark.parametrize("kwargs", [
        {"label": MAX_LABEL + 1},
        {"label": -1},
        {"label": 0, "tc": 8},
        {"label": 0, "ttl": 256},
    ])
    def test_field_validation(self, kwargs):
        with pytest.raises(LabelError):
            LabelStackEntry(**kwargs)

    def test_reserved_detection(self):
        assert LabelStackEntry(IMPLICIT_NULL).is_reserved
        assert LabelStackEntry(RESERVED_LABEL_MAX).is_reserved
        assert not LabelStackEntry(RESERVED_LABEL_MAX + 1).is_reserved

    def test_replace(self):
        entry = LabelStackEntry(100, ttl=64)
        changed = entry.replace(ttl=63)
        assert changed.ttl == 63 and changed.label == 100
        assert entry.ttl == 64  # original untouched

    def test_from_bytes_wrong_length(self):
        with pytest.raises(LabelError):
            LabelStackEntry.from_bytes(b"\x00\x00\x00")


class TestLabelStack:
    def test_bottom_bit_maintained(self):
        stack = LabelStack.from_labels([100, 200])
        assert not stack[0].bottom
        assert stack[1].bottom

    def test_push_clears_previous_bottom(self):
        stack = LabelStack.from_labels([100])
        assert stack[0].bottom
        stack.push(LabelStackEntry(200))
        assert stack.labels() == (200, 100)
        assert not stack[0].bottom
        assert stack[1].bottom

    def test_pop_restores_bottom(self):
        stack = LabelStack.from_labels([100, 200])
        popped = stack.pop()
        assert popped.label == 100
        assert stack[0].bottom

    def test_pop_empty_raises(self):
        with pytest.raises(LabelError):
            LabelStack().pop()

    def test_swap_keeps_ttl(self):
        stack = LabelStack.from_labels([100], ttl=42)
        stack.swap(900)
        assert stack.top.label == 900
        assert stack.top.ttl == 42

    def test_swap_empty_raises(self):
        with pytest.raises(LabelError):
            LabelStack().swap(1)

    def test_decrement_ttl(self):
        stack = LabelStack.from_labels([100], ttl=2)
        assert stack.decrement_ttl() == 1
        assert stack.decrement_ttl() == 0
        with pytest.raises(LabelError):
            stack.decrement_ttl()

    def test_top_empty_raises(self):
        with pytest.raises(LabelError):
            LabelStack().top

    @given(st.lists(labels, min_size=1, max_size=5))
    def test_wire_round_trip(self, values):
        stack = LabelStack.from_labels(values)
        data = stack.to_bytes()
        assert len(data) == 4 * len(values)
        assert LabelStack.from_bytes(data) == stack

    def test_from_bytes_rejects_bad_s_bit(self):
        # Two entries both claiming bottom-of-stack.
        first = LabelStackEntry(1, bottom=True).to_bytes()
        second = LabelStackEntry(2, bottom=True).to_bytes()
        with pytest.raises(LabelError):
            LabelStack.from_bytes(first + second)

    def test_from_bytes_rejects_misaligned(self):
        with pytest.raises(LabelError):
            LabelStack.from_bytes(b"\x00" * 5)

    def test_copy_is_independent(self):
        stack = LabelStack.from_labels([100])
        clone = stack.copy()
        clone.swap(200)
        assert stack.top.label == 100
