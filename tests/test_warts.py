"""Unit tests for the warts-like binary and JSONL trace codecs."""

import io
import struct

import pytest
from hypothesis import given, strategies as st

from repro.mpls.lse import LabelStackEntry
from repro.net.ip import ip_to_int
from repro.obs import get_registry
from repro.traces import StopReason, Trace, TraceHop
from repro.warts.format import (
    MAGIC,
    MAX_RECORD_LENGTH,
    VERSION,
    WartsError,
    WartsReader,
    WartsWriter,
    decode_trace,
    encode_trace,
    read_archive,
    salvage_archive,
    write_archive,
)
from repro.warts.jsonl import (
    dump_jsonl,
    load_jsonl,
    trace_from_dict,
    trace_to_dict,
)


def sample_trace(monitor="mon-a", hop_count=3, with_labels=True):
    hops = []
    for ttl in range(1, hop_count + 1):
        stack = ()
        if with_labels and ttl == 2:
            stack = (LabelStackEntry(300100, tc=0, bottom=True, ttl=254),)
        hops.append(TraceHop(
            probe_ttl=ttl,
            address=ip_to_int("10.0.0.0") + ttl,
            rtt_ms=1.5 * ttl,
            quoted_stack=stack,
        ))
    return Trace(
        monitor=monitor,
        src=ip_to_int("192.0.2.1"),
        dst=ip_to_int("198.51.100.7"),
        timestamp=1234.5,
        stop_reason=StopReason.COMPLETED,
        hops=hops,
    )


def anonymous_trace():
    return Trace(
        monitor="mon-b",
        src=1, dst=2, timestamp=0.0,
        stop_reason=StopReason.GAP_LIMIT,
        hops=[
            TraceHop(probe_ttl=1, address=10, rtt_ms=0.4),
            TraceHop(probe_ttl=2, address=None),
            TraceHop(probe_ttl=3, address=12, rtt_ms=2.25,
                     quoted_stack=(
                         LabelStackEntry(17, bottom=False, ttl=253),
                         LabelStackEntry(42, bottom=True, ttl=253),
                     )),
        ],
    )


def traces_equal(left, right):
    if (left.monitor, left.src, left.dst, left.stop_reason) != (
            right.monitor, right.src, right.dst, right.stop_reason):
        return False
    if abs(left.timestamp - right.timestamp) > 1e-9:
        return False
    if len(left.hops) != len(right.hops):
        return False
    for a, b in zip(left.hops, right.hops):
        if (a.probe_ttl, a.address, a.quoted_stack) != (
                b.probe_ttl, b.address, b.quoted_stack):
            return False
        if abs(a.rtt_ms - b.rtt_ms) > 1e-3:  # f32 storage
            return False
    return True


class TestBinaryCodec:
    def test_record_round_trip(self):
        trace = sample_trace()
        assert traces_equal(decode_trace(encode_trace(trace)), trace)

    def test_anonymous_and_stack_round_trip(self):
        trace = anonymous_trace()
        decoded = decode_trace(encode_trace(trace))
        assert traces_equal(decoded, trace)
        assert decoded.hops[1].is_anonymous
        assert decoded.hops[2].labels == (17, 42)

    def test_stream_round_trip(self):
        buffer = io.BytesIO()
        writer = WartsWriter(buffer)
        originals = [sample_trace(f"mon-{i}") for i in range(5)]
        writer.write_all(originals)
        assert writer.written == 5
        buffer.seek(0)
        loaded = list(WartsReader(buffer))
        assert len(loaded) == 5
        assert all(traces_equal(a, b) for a, b in zip(originals, loaded))

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "cycle.rwts"
        originals = [sample_trace(), anonymous_trace()]
        assert write_archive(path, originals) == 2
        loaded = read_archive(path)
        assert all(traces_equal(a, b) for a, b in zip(originals, loaded))

    def test_bad_magic(self):
        with pytest.raises(WartsError, match="magic"):
            WartsReader(io.BytesIO(b"NOPE\x00\x01"))

    def test_bad_version(self):
        with pytest.raises(WartsError, match="version"):
            WartsReader(io.BytesIO(b"RWTS\x00\x63"))

    def test_truncated_body(self):
        buffer = io.BytesIO()
        WartsWriter(buffer).write(sample_trace())
        data = buffer.getvalue()[:-3]
        with pytest.raises(WartsError, match="truncated"):
            list(WartsReader(io.BytesIO(data)))

    def test_trailing_bytes_rejected(self):
        body = encode_trace(sample_trace()) + b"\x00"
        with pytest.raises(WartsError, match="trailing"):
            decode_trace(body)

    def test_empty_archive(self):
        buffer = io.BytesIO()
        WartsWriter(buffer)
        buffer.seek(0)
        assert list(WartsReader(buffer)) == []

    def test_monitor_name_length_limit(self):
        trace = sample_trace(monitor="x" * 256)
        with pytest.raises(WartsError, match="monitor"):
            encode_trace(trace)

    def test_record_length_cap_rejected_before_allocation(self):
        # A corrupt length near 2^32 must raise, not attempt a
        # multi-GB read; nothing beyond the prefix is consumed.
        header = MAGIC + struct.pack("!H", VERSION)
        data = header + struct.pack("!I", 0xFFFFFFF0)
        with pytest.raises(WartsError, match="cap"):
            list(WartsReader(io.BytesIO(data)))

    def test_record_length_cap_boundary(self):
        header = MAGIC + struct.pack("!H", VERSION)
        data = header + struct.pack("!I", MAX_RECORD_LENGTH + 1)
        with pytest.raises(WartsError, match="cap"):
            list(WartsReader(io.BytesIO(data)))


def archive_bytes(traces):
    buffer = io.BytesIO()
    WartsWriter(buffer).write_all(traces)
    return buffer.getvalue()


class TestTolerantReader:
    def test_strict_by_default(self):
        data = archive_bytes([sample_trace()])[:-3]
        with pytest.raises(WartsError):
            list(WartsReader(io.BytesIO(data)))

    def test_truncated_body_salvaged(self):
        originals = [sample_trace(f"mon-{i}") for i in range(3)]
        data = archive_bytes(originals)[:-3]
        reader = WartsReader(io.BytesIO(data), tolerant=True)
        loaded = list(reader)
        assert len(loaded) == 2
        assert all(traces_equal(a, b)
                   for a, b in zip(originals, loaded))
        assert reader.skipped == {"truncated_body": 1}

    def test_truncated_length_salvaged(self):
        data = archive_bytes([sample_trace()]) + b"\x00\x01"
        reader = WartsReader(io.BytesIO(data), tolerant=True)
        assert len(list(reader)) == 1
        assert reader.skipped == {"truncated_length": 1}

    def test_decode_error_skips_only_that_record(self):
        good = encode_trace(sample_trace())
        bad = b"\xff" * 24  # framed fine, parses to garbage
        data = (MAGIC + struct.pack("!H", VERSION)
                + struct.pack("!I", len(bad)) + bad
                + struct.pack("!I", len(good)) + good)
        reader = WartsReader(io.BytesIO(data), tolerant=True)
        loaded = list(reader)
        assert len(loaded) == 1
        assert traces_equal(loaded[0], sample_trace())
        assert reader.skipped == {"decode_error": 1}

    def test_oversized_length_resyncs_on_embedded_header(self):
        # Corrupt framing followed by a concatenated archive: the
        # reader abandons the bad region, finds the embedded magic,
        # and keeps going.
        first = archive_bytes([sample_trace("mon-a")])
        second = archive_bytes([sample_trace("mon-b"),
                                sample_trace("mon-c")])
        data = (first
                + struct.pack("!I", 0xF0000000) + b"\xde\xad" * 11
                + second)
        reader = WartsReader(io.BytesIO(data), tolerant=True)
        loaded = list(reader)
        assert [t.monitor for t in loaded] == ["mon-a", "mon-b", "mon-c"]
        assert reader.skipped.get("oversized_length") == 1

    def test_concatenated_archives_read_seamlessly(self):
        data = (archive_bytes([sample_trace("mon-a")])
                + archive_bytes([sample_trace("mon-b")]))
        reader = WartsReader(io.BytesIO(data), tolerant=True)
        assert [t.monitor for t in reader] == ["mon-a", "mon-b"]

    def test_garbage_tail_without_anchor_stops_cleanly(self):
        data = (archive_bytes([sample_trace()])
                + struct.pack("!I", 0xF0000000) + b"\x99" * 100)
        reader = WartsReader(io.BytesIO(data), tolerant=True)
        assert len(list(reader)) == 1
        assert reader.skipped == {"oversized_length": 1}

    def test_salvage_archive_reports_tally(self, tmp_path):
        path = tmp_path / "broken.rwts"
        originals = [sample_trace(f"mon-{i}") for i in range(4)]
        payload = archive_bytes(originals)
        path.write_bytes(payload[:-5])
        traces, skipped = salvage_archive(path)
        assert len(traces) == 3
        assert skipped == {"truncated_body": 1}
        with pytest.raises(WartsError):
            read_archive(path)
        assert len(read_archive(path, tolerant=True)) == 3

    def test_skip_counter_increments(self):
        counter = get_registry().counter("warts_records_skipped_total")
        before = counter.value(reason="truncated_body")
        data = archive_bytes([sample_trace()])[:-3]
        list(WartsReader(io.BytesIO(data), tolerant=True))
        assert counter.value(reason="truncated_body") == before + 1


class TestJsonlCodec:
    def test_dict_round_trip(self):
        trace = anonymous_trace()
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.hops[1].is_anonymous
        assert rebuilt.hops[2].quoted_stack == trace.hops[2].quoted_stack
        assert rebuilt.monitor == trace.monitor

    def test_stream_round_trip(self):
        originals = [sample_trace(), anonymous_trace()]
        buffer = io.StringIO()
        assert dump_jsonl(originals, buffer) == 2
        buffer.seek(0)
        loaded = list(load_jsonl(buffer))
        assert len(loaded) == 2
        assert loaded[0].dst == originals[0].dst

    def test_blank_lines_skipped(self):
        buffer = io.StringIO()
        dump_jsonl([sample_trace()], buffer)
        text = "\n" + buffer.getvalue() + "\n\n"
        assert len(list(load_jsonl(io.StringIO(text)))) == 1

    def test_bad_line_reports_number(self):
        with pytest.raises(ValueError, match="line 1"):
            list(load_jsonl(io.StringIO('{"nope": 1}\n')))

    def test_addresses_rendered_dotted(self):
        data = trace_to_dict(sample_trace())
        assert data["src"] == "192.0.2.1"
        assert data["hops"][0]["address"].startswith("10.0.0.")

    def test_minimal_hand_written_record_round_trips(self):
        # Hand-written JSONL omits optional keys: no mpls list, no
        # quoted_ttl.  Both must default instead of raising KeyError.
        minimal = {
            "monitor": "mon-hand",
            "src": "192.0.2.1",
            "dst": "198.51.100.7",
            "timestamp": 12.5,
            "stop_reason": StopReason.COMPLETED.value,
            "hops": [
                {"probe_ttl": 1, "address": "10.0.0.1", "rtt_ms": 0.7},
                {"probe_ttl": 2, "address": None, "rtt_ms": 0.0},
            ],
        }
        trace = trace_from_dict(minimal)
        assert trace.hops[0].quoted_stack == ()
        assert trace.hops[0].quoted_ttl == 1
        assert trace.hops[1].is_anonymous
        # Full round trip: dict -> trace -> dict -> trace.
        again = trace_from_dict(trace_to_dict(trace))
        assert traces_equal(trace, again)


@given(st.lists(st.tuples(
    st.integers(min_value=1, max_value=255),           # probe ttl
    st.one_of(st.none(), st.integers(min_value=0,
                                     max_value=0xFFFFFFFF)),  # address
    st.lists(st.integers(min_value=16, max_value=(1 << 20) - 1),
             max_size=3),                               # labels
), max_size=12))
def test_binary_round_trip_property(hop_specs):
    hops = []
    for ttl, address, labels in hop_specs:
        stack = tuple(
            LabelStackEntry(label, bottom=(i == len(labels) - 1), ttl=200)
            for i, label in enumerate(labels)
        )
        if address is None:
            stack = ()  # an anonymous hop quotes nothing and has no RTT
        hops.append(TraceHop(
            probe_ttl=ttl, address=address,
            rtt_ms=0.0 if address is None else 0.5,
            quoted_stack=stack,
        ))
    trace = Trace(monitor="prop", src=1, dst=2, timestamp=9.25,
                  stop_reason=StopReason.LOOP, hops=hops)
    assert traces_equal(decode_trace(encode_trace(trace)), trace)


class TestGzipArchives:
    def test_gz_round_trip(self, tmp_path):
        path = tmp_path / "cycle.rwts.gz"
        originals = [sample_trace(), anonymous_trace()]
        assert write_archive(path, originals) == 2
        loaded = read_archive(path)
        assert all(traces_equal(a, b)
                   for a, b in zip(originals, loaded))

    def test_gz_actually_compressed(self, tmp_path):
        plain = tmp_path / "a.rwts"
        packed = tmp_path / "a.rwts.gz"
        traces = [sample_trace(f"mon-{i}") for i in range(50)]
        write_archive(plain, traces)
        write_archive(packed, traces)
        assert packed.stat().st_size < plain.stat().st_size
        with open(packed, "rb") as stream:
            assert stream.read(2) == b"\x1f\x8b"  # gzip magic
