"""Unit tests for IPv4 address and prefix arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import (
    AddressError,
    MAX_IPV4,
    Prefix,
    int_to_ip,
    ip_to_int,
    netmask,
    summarize_range,
)


class TestIpConversion:
    def test_round_trip_known_values(self):
        for text, value in [
            ("0.0.0.0", 0),
            ("255.255.255.255", MAX_IPV4),
            ("10.0.0.1", 0x0A000001),
            ("192.0.2.33", 0xC0000221),
        ]:
            assert ip_to_int(text) == value
            assert int_to_ip(value) == text

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_round_trip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize("bad", [
        "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4", "",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            ip_to_int(bad)

    def test_int_to_ip_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            int_to_ip(-1)
        with pytest.raises(AddressError):
            int_to_ip(MAX_IPV4 + 1)


class TestNetmask:
    def test_boundaries(self):
        assert netmask(0) == 0
        assert netmask(32) == MAX_IPV4
        assert netmask(24) == 0xFFFFFF00
        assert netmask(8) == 0xFF000000

    @pytest.mark.parametrize("bad", [-1, 33])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(AddressError):
            netmask(bad)


class TestPrefix:
    def test_parse_and_str_round_trip(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert str(prefix) == "192.0.2.0/24"
        assert prefix.length == 24

    def test_rejects_host_bits(self):
        with pytest.raises(AddressError):
            Prefix(ip_to_int("192.0.2.1"), 24)

    def test_rejects_missing_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("192.0.2.0")

    def test_contains_address(self):
        prefix = Prefix.parse("10.1.0.0/16")
        assert ip_to_int("10.1.2.3") in prefix
        assert ip_to_int("10.2.0.0") not in prefix

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_first_last_size(self):
        prefix = Prefix.parse("192.0.2.0/30")
        assert int_to_ip(prefix.first) == "192.0.2.0"
        assert int_to_ip(prefix.last) == "192.0.2.3"
        assert prefix.size == 4

    def test_hosts_skips_network_and_broadcast(self):
        prefix = Prefix.parse("192.0.2.0/30")
        hosts = [int_to_ip(h) for h in prefix.hosts()]
        assert hosts == ["192.0.2.1", "192.0.2.2"]

    def test_hosts_slash31_uses_both(self):
        prefix = Prefix.parse("192.0.2.0/31")
        assert len(list(prefix.hosts())) == 2

    def test_hosts_slash32(self):
        prefix = Prefix.parse("192.0.2.1/32")
        assert [int_to_ip(h) for h in prefix.hosts()] == ["192.0.2.1"]

    def test_subnets(self):
        prefix = Prefix.parse("10.0.0.0/24")
        subs = list(prefix.subnets(26))
        assert [str(s) for s in subs] == [
            "10.0.0.0/26", "10.0.0.64/26", "10.0.0.128/26", "10.0.0.192/26",
        ]

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))

    def test_from_host_masks(self):
        prefix = Prefix.from_host(ip_to_int("10.1.2.3"), 24)
        assert str(prefix) == "10.1.2.0/24"

    def test_equality_and_hash(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/8")
        c = Prefix.parse("10.0.0.0/9")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_ordering(self):
        prefixes = [
            Prefix.parse("10.0.0.0/9"),
            Prefix.parse("9.0.0.0/8"),
            Prefix.parse("10.0.0.0/8"),
        ]
        assert [str(p) for p in sorted(prefixes)] == [
            "9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/9",
        ]

    @given(st.integers(min_value=0, max_value=MAX_IPV4),
           st.integers(min_value=0, max_value=32))
    def test_from_host_always_contains_host(self, address, length):
        prefix = Prefix.from_host(address, length)
        assert address in prefix


class TestSummarizeRange:
    def test_single_block(self):
        prefixes = summarize_range(ip_to_int("10.0.0.0"),
                                   ip_to_int("10.0.0.255"))
        assert [str(p) for p in prefixes] == ["10.0.0.0/24"]

    def test_unaligned_range(self):
        prefixes = summarize_range(ip_to_int("10.0.0.1"),
                                   ip_to_int("10.0.0.4"))
        assert [str(p) for p in prefixes] == [
            "10.0.0.1/32", "10.0.0.2/31", "10.0.0.4/32",
        ]

    def test_rejects_empty(self):
        with pytest.raises(AddressError):
            summarize_range(2, 1)

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_covers_exactly(self, start):
        end = start + 137
        prefixes = summarize_range(start, end)
        covered = sorted(
            address for p in prefixes
            for address in range(p.first, p.last + 1)
        )
        assert covered == list(range(start, end + 1))
