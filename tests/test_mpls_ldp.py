"""Unit tests for the LDP engine.

The assertions here encode the invariants LPR later exploits:
router-scoped labels (one label per router per FEC), ECMP inheritance from
the IGP DAG, PHP at the penultimate hop.
"""

import pytest

from repro.igp.spf import SpfTable
from repro.mpls.fec import PrefixFec
from repro.mpls.ldp import LdpEngine
from repro.mpls.lfib import LfibAction
from repro.net.ip import Prefix

from helpers import (
    chain_topology,
    diamond_topology,
    label_manager_for,
    parallel_link_topology,
)


def engine_for(topology):
    return LdpEngine(topology, SpfTable(topology),
                     label_manager_for(topology))


class TestEstablishFec:
    def test_fec_targets_egress_loopback(self):
        topology = chain_topology(4)
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        assert fec.prefix == Prefix(topology.routers[3].loopback, 32)

    def test_idempotent(self):
        topology = chain_topology(4)
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        assert engine.establish_fec(3) == fec
        assert engine.labels.allocator(1).in_use == 1

    def test_every_transit_router_has_label(self):
        topology = chain_topology(4)
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        for router_id in (0, 1, 2):
            assert engine.labels.lfib(router_id).label_for(fec) is not None

    def test_php_egress_has_no_label(self):
        topology = chain_topology(4)  # cisco: PHP on
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        assert engine.labels.lfib(3).label_for(fec) is None

    def test_penultimate_pops(self):
        topology = chain_topology(4)
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        in_label = engine.labels.lfib(2).label_for(fec)
        choices = engine.labels.lfib(2).choices(in_label)
        assert len(choices) == 1
        assert choices[0].action is LfibAction.POP
        assert choices[0].next_hop == 3

    def test_transit_swaps_to_downstream_label(self):
        topology = chain_topology(4)
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        label_r1 = engine.labels.lfib(1).label_for(fec)
        label_r2 = engine.labels.lfib(2).label_for(fec)
        choices = engine.labels.lfib(1).choices(label_r1)
        assert choices[0].action is LfibAction.SWAP
        assert choices[0].out_label == label_r2

    def test_no_php_egress_delivers(self):
        topology = chain_topology(4, vendor="legacy")  # legacy: PHP off
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        in_label = engine.labels.lfib(3).label_for(fec)
        assert in_label is not None
        choices = engine.labels.lfib(3).choices(in_label)
        assert choices[0].action is LfibAction.DELIVER

    def test_ecmp_installs_both_branches(self):
        topology = diamond_topology()
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        in_label = engine.labels.lfib(0).label_for(fec)
        next_hops = {c.next_hop for c in engine.labels.lfib(0)
                     .choices(in_label)}
        assert next_hops == {1, 2}

    def test_router_scope_one_label_per_fec(self):
        """An LSR proposes the same label to all upstreams (LDP default)."""
        topology = diamond_topology()
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        # Whatever branch the packet took, at router 1 the label is the
        # label router 1 allocated — there is exactly one.
        assert engine.labels.allocator(1).in_use == 1


class TestIngressPush:
    def test_chain_pushes_next_hop_label(self):
        topology = chain_topology(4)
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        choices = engine.ingress_push_choices(0, fec)
        assert len(choices) == 1
        label, next_hop, _ = choices[0]
        assert next_hop == 1
        assert label == engine.labels.lfib(1).label_for(fec)

    def test_one_hop_php_pushes_nothing(self):
        topology = chain_topology(2)
        engine = engine_for(topology)
        fec = engine.establish_fec(1)
        choices = engine.ingress_push_choices(0, fec)
        assert choices == [(None, 1, topology.links[0])]

    def test_ecmp_push_choices(self):
        topology = diamond_topology()
        engine = engine_for(topology)
        fec = engine.establish_fec(3)
        choices = engine.ingress_push_choices(0, fec)
        assert len(choices) == 2
        labels = {label for label, _, _ in choices}
        assert len(labels) == 2  # different downstream routers, labels

    def test_parallel_links_same_label_different_links(self):
        topology = parallel_link_topology()
        engine = engine_for(topology)
        fec = engine.establish_fec(2)
        choices = engine.ingress_push_choices(0, fec)
        assert len(choices) == 2
        labels = {label for label, _, _ in choices}
        links = {link.link_id for _, _, link in choices}
        assert len(labels) == 1   # same downstream router => same label
        assert len(links) == 2    # but two distinct links

    def test_ingress_equals_egress_empty(self):
        topology = chain_topology(3)
        engine = engine_for(topology)
        fec = engine.establish_fec(2)
        assert engine.ingress_push_choices(2, fec) == []

    def test_unestablished_fec_raises(self):
        topology = chain_topology(3)
        engine = engine_for(topology)
        fec = PrefixFec(Prefix.parse("10.9.9.9/32"))
        with pytest.raises(KeyError):
            engine.ingress_push_choices(0, fec)


class TestPolicies:
    def test_establish_transit_fecs_covers_borders(self):
        topology = diamond_topology()
        engine = engine_for(topology)
        fecs = engine.establish_transit_fecs()
        egresses = {engine.egress_of(fec) for fec in fecs}
        assert egresses == {0, 3}

    def test_advertised_prefixes_cisco_all(self):
        topology = chain_topology(2, vendor="cisco")
        engine = engine_for(topology)
        prefixes = [Prefix.parse("10.0.0.0/30"),
                    Prefix.parse("10.255.0.1/32")]
        assert engine.advertised_prefixes(0, prefixes) == prefixes

    def test_advertised_prefixes_juniper_loopbacks(self):
        topology = chain_topology(2, vendor="juniper")
        engine = engine_for(topology)
        prefixes = [Prefix.parse("10.0.0.0/30"),
                    Prefix.parse("10.255.0.1/32")]
        assert engine.advertised_prefixes(0, prefixes) == [
            Prefix.parse("10.255.0.1/32")
        ]
