"""End-to-end tests for the study flight recorder (DESIGN §9).

The contracts under test:

* a fully instrumented parallel run (--progress + events sink + real
  clocks) produces monotonically non-decreasing progress, a Chrome
  trace whose worker spans sit on shard-labelled tracks, a profile
  table that accounts for worker stages, and an events file ``repro
  report`` can reconstruct;
* all of that telemetry changes nothing about the study's results —
  the instrumented parallel run stays byte-identical to a bare serial
  one;
* the default path (NullClock, no sinks) never reads the wall clock,
  so a serial run's events are deterministic across invocations.
"""

import json

import pytest

from repro.cli import _profile_table
from repro.core.pipeline import run_study
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    EventBus,
    FakeClock,
    HealthMonitor,
    MonotonicClock,
    NullClock,
    TelemetryServer,
    Tracer,
    get_event_bus,
    get_tracer,
    read_events,
    set_event_bus,
    set_tracer,
    write_chrome_trace,
)
from repro.analysis.flightreport import flight_report, \
    flight_report_data
from repro.par import CheckpointStore, StudySpec
from repro.par.checkpoint import CHECKPOINT_VERSION
from repro.par.runner import ShardResult, _delta_total

SPEC = StudySpec(scale=0.25, seed=7, cycles=4, snapshots_per_cycle=2)
SPEC2 = StudySpec(scale=0.25, seed=7, cycles=2, snapshots_per_cycle=2)


@pytest.fixture(scope="module")
def serial_run():
    """The plain baseline: no telemetry, default clocks."""
    return run_study(SPEC, workers=1)


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    """One parallel run with every flight-recorder feature on,
    including the DESIGN §13 live plane: a telemetry server scraped
    mid-run, resource sampling and an (ample) stall deadline."""
    out = tmp_path_factory.mktemp("flightrec")
    events_path = out / "events.jsonl"
    trace_path = out / "trace.json"
    ticks = []
    scrapes = {}

    saved_tracer, saved_bus = get_tracer(), get_event_bus()
    tracer = set_tracer(Tracer(MonotonicClock()))
    bus = set_event_bus(EventBus(clock=MonotonicClock(),
                                 sink=events_path))
    health = HealthMonitor()
    server = TelemetryServer(bus=bus, health=health)

    def on_progress(tracker):
        server.on_progress(tracker)
        ticks.append((tracker.work_done, tracker.shards_done,
                      tracker.traces, tracker.render()))
        # Scrape every endpoint once mid-run, as soon as the ETA is
        # computable (some work done, some wall time elapsed).
        if (not scrapes and tracker.work_done > 0
                and tracker.elapsed() > 0):
            for path in ("/metrics", "/healthz", "/progress",
                         "/events?n=10"):
                scrapes[path] = server.respond(path)

    try:
        run = run_study(SPEC, workers=4, progress=on_progress,
                        resources=True, stall_timeout=300.0,
                        health=health)
        write_chrome_trace(trace_path, tracer)
    finally:
        bus.close()
        set_tracer(saved_tracer)
        set_event_bus(saved_bus)
    return {"run": run, "tracer": tracer, "ticks": ticks,
            "events_path": events_path, "trace_path": trace_path,
            "scrapes": scrapes, "health": health}


class TestProgress:
    def test_work_done_is_monotonic(self, telemetry_run):
        done = [tick[0] for tick in telemetry_run["ticks"]]
        assert done == sorted(done)
        assert done[-1] == SPEC.cycles

    def test_traces_are_monotonic(self, telemetry_run):
        traces = [tick[2] for tick in telemetry_run["ticks"]]
        assert traces == sorted(traces)
        assert traces[-1] > 0

    def test_all_shards_finish(self, telemetry_run):
        _done, shards_done, _traces, line = telemetry_run["ticks"][-1]
        assert shards_done == 4
        assert "(100%)" in line

    def test_heartbeats_arrived_mid_flight(self, telemetry_run):
        # More callback ticks than shards: the in-flight heartbeats
        # (one per worker cycle) were delivered, not just completions.
        assert len(telemetry_run["ticks"]) > 4

    def test_fake_progress_clock_reads_no_wall_clock(self):
        clock = FakeClock()
        etas = []

        def on_progress(tracker):
            assert tracker.clock is clock
            clock.advance(1.0)
            etas.append(tracker.eta_seconds())

        run = run_study(SPEC2, workers=1, progress=on_progress,
                        progress_clock=clock)
        assert len(run.results) == SPEC2.cycles
        assert len(etas) == SPEC2.cycles + 1  # per cycle + final
        assert etas[-1] == 0.0


class TestWorkerSpans:
    def test_worker_trees_grafted_under_study_span(self, telemetry_run):
        tracer = telemetry_run["tracer"]
        study = next(root for root in tracer.roots
                     if root.name == "par.study")
        workers = [child for child in study.children
                   if child.name == "par.worker"]
        assert len(workers) == 4
        assert sorted(w.attrs["shard"] for w in workers) == [0, 1, 2, 3]
        # Worker time is real: a probing shard takes nonzero wall time.
        assert all(w.duration > 0 for w in workers)

    def test_worker_stages_appear_in_profile_table(self, telemetry_run):
        table = _profile_table(telemetry_run["tracer"])
        for stage in ("par.worker", "sim.cycle", "pipeline.filters",
                      "classification.classify"):
            assert stage in table

    def test_chrome_trace_has_shard_tracks(self, telemetry_run):
        payload = json.loads(
            telemetry_run["trace_path"].read_text())
        names = {event["tid"]: event["args"]["name"]
                 for event in payload["traceEvents"]
                 if event["ph"] == "M"}
        assert names[0] == "parent"
        assert {names[tid] for tid in names if tid != 0} == \
            {"shard 0", "shard 1", "shard 2", "shard 3"}
        worker_events = [event for event in payload["traceEvents"]
                        if event["ph"] == "X" and event["tid"] != 0]
        assert {e["name"] for e in worker_events} >= \
            {"par.worker", "sim.cycle", "pipeline.cycle"}


class TestLiveScrapes:
    """Mid-run endpoint responses captured by the fixture's callback."""

    def test_metrics_scrape_is_valid_prometheus(self, telemetry_run):
        status, content_type, body = \
            telemetry_run["scrapes"]["/metrics"]
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE par_shards_total counter" in text
        # Resource sampling was live mid-run: the heartbeat-fed worker
        # gauges already carry samples (shard counters only total up at
        # shard completion, so they may still be bare at scrape time).
        assert "# TYPE worker_rss_bytes gauge" in text
        samples = [line for line in text.splitlines()
                   if line.startswith("worker_rss_bytes{")]
        assert samples
        assert all(float(line.rsplit(" ", 1)[1]) > 0
                   for line in samples)

    def test_healthz_ok_while_running(self, telemetry_run):
        status, _, body = telemetry_run["scrapes"]["/healthz"]
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["finished"] is False  # scraped mid-run
        assert telemetry_run["health"].status()["finished"] is True

    def test_progress_json_has_finite_eta(self, telemetry_run):
        status, _, body = telemetry_run["scrapes"]["/progress"]
        payload = json.loads(body)
        assert status == 200
        assert payload["total_cycles"] == SPEC.cycles
        assert 0 < payload["work_done"] <= SPEC.cycles
        assert payload["eta"] is not None
        assert 0 <= payload["eta"] < float("inf")
        assert len(payload["shards"]) == 4

    def test_events_tail_serves_the_ring(self, telemetry_run):
        status, _, body = telemetry_run["scrapes"]["/events?n=10"]
        payload = json.loads(body)
        assert status == 200
        assert 0 < payload["count"] <= 10
        assert all("seq" in event for event in payload["events"])


class TestEventsFile:
    def test_lifecycle_events_in_order(self, telemetry_run):
        events = read_events(telemetry_run["events_path"])
        kinds = [event.kind for event in events]
        assert kinds[0] == "study.start"
        assert kinds[-1] == "study.done"
        assert "study.plan" in kinds
        assert kinds.count("shard.dispatch") == 4
        assert kinds.count("shard.done") == 4
        assert kinds.count("cycle.metrics") == SPEC.cycles
        assert "shard.heartbeat" in kinds

    def test_worker_resources_events_per_process(self, telemetry_run):
        events = read_events(telemetry_run["events_path"])
        samples = [e for e in events if e.kind == "worker.resources"]
        shards = {e.fields["shard"] for e in samples}
        assert {0, 1, 2, 3, "parent"} <= shards
        assert all(e.fields["rss_bytes"] > 0 for e in samples)
        assert "shard.stalled" not in {e.kind for e in events}

    def test_seq_strictly_increasing_ts_present(self, telemetry_run):
        events = read_events(telemetry_run["events_path"])
        seqs = [event.seq for event in events]
        assert seqs == list(range(1, len(events) + 1))
        stamps = [event.ts for event in events]
        assert all(ts is not None for ts in stamps)
        assert stamps == sorted(stamps)

    def test_shard_done_traces_reconcile(self, telemetry_run):
        events = read_events(telemetry_run["events_path"])
        from_events = sum(e.fields["traces"] for e in events
                          if e.kind == "shard.done")
        from_shards = sum(
            _delta_total(shard.metrics_delta, "sim_traces_total")
            for shard in telemetry_run["run"].shards
            if shard.block is None)
        assert from_events == from_shards > 0

    def test_report_reconstructs_the_run(self, telemetry_run):
        report = flight_report(telemetry_run["events_path"],
                               trace_path=telemetry_run["trace_path"])
        assert "cycles: 4  workers: 4" in report
        assert "completed: 4 cycle results" in report
        assert "== shard timeline ==" in report
        assert report.count("done") >= 4
        assert "== filter drops per cycle ==" in report
        assert "== resource usage ==" in report
        assert "peak rss" in report
        assert "parent" in report
        assert "== per-stage time (from trace) ==" in report
        assert "par.worker" in report
        assert "== slowest cycles" in report
        assert "== stalls ==" not in report  # nothing stalled

    def test_json_report_mirrors_the_text_sections(self, telemetry_run):
        data = flight_report_data(
            telemetry_run["events_path"],
            trace_path=telemetry_run["trace_path"])
        decoded = json.loads(json.dumps(data))  # JSON round trip
        assert decoded["study"]["cycles"] == 4
        assert decoded["study"]["completed"] is True
        assert len(decoded["shards"]) == 4
        assert decoded["caches"]["forwarding"]["hits"] > 0
        shards = {row["shard"] for row in decoded["resources"]}
        assert {"0", "1", "2", "3", "parent"} <= shards
        assert all(row["peak_rss_bytes"] > 0
                   for row in decoded["resources"])
        assert decoded["filters"]["cycles"] == [1, 2, 3, 4]
        assert any(row["span"] == "par.worker"
                   for row in decoded["stages"])
        assert "stalls" not in decoded

    def test_report_cache_families_are_guarded(self, telemetry_run):
        # An object-engine run has forwarding and ip2as-memo telemetry
        # but no columnar counters: the absent family is omitted, not
        # divided by zero.
        report = flight_report(telemetry_run["events_path"])
        assert "== forwarding-path caches ==" in report
        assert "ip2as memo" in report
        assert "columnar engine" not in report

    def test_report_includes_columnar_engine_counters(self, tmp_path):
        from dataclasses import replace
        events_path = tmp_path / "events.jsonl"
        saved = get_event_bus()
        bus = set_event_bus(EventBus(sink=events_path))
        try:
            run_study(replace(SPEC2, engine="columnar"), workers=1)
        finally:
            bus.close()
            set_event_bus(saved)
        report = flight_report(events_path)
        assert "columnar engine" in report
        assert "hops encoded" in report

    def test_serial_events_are_deterministic(self):
        def capture():
            saved = get_event_bus()
            bus = set_event_bus(EventBus())
            try:
                run_study(SPEC2, workers=1)
            finally:
                set_event_bus(saved)
            return [event.to_dict() for event in bus.events]

        first, second = capture(), capture()
        assert first == second
        assert all("ts" not in row for row in first)


class TestTelemetryByteIdentity:
    """Telemetry must observe, never perturb (DESIGN §6)."""

    def test_results_identical_to_bare_serial(self, serial_run,
                                              telemetry_run):
        instrumented = telemetry_run["run"]
        assert len(serial_run.results) == len(instrumented.results)
        for serial, parallel in zip(serial_run.results,
                                    instrumented.results):
            assert serial.stats == parallel.stats
            assert serial.filter_stats == parallel.filter_stats
            assert serial.classification.verdicts == \
                parallel.classification.verdicts
            assert serial.metrics == parallel.metrics

    def test_simulator_end_state_identical(self, serial_run,
                                           telemetry_run):
        serial_sim = serial_run.simulator
        parallel_sim = telemetry_run["run"].simulator
        assert _label_state(serial_sim.internet) == \
            _label_state(parallel_sim.internet)


def _label_state(internet):
    """Label-allocator positions — a cheap end-state fingerprint."""
    state = []
    for asn in sorted(internet.networks):
        network = internet.networks[asn]
        if network.labels is None:
            state.append((asn, None))
            continue
        state.append((asn, tuple(
            (router, alloc._next, alloc.allocated_total)
            for router, alloc in
            sorted(network.labels.allocators.items()))))
    return state


class TestCheckpointSpans:
    def test_spans_stripped_on_save(self, tmp_path):
        from repro.obs import Span
        store = CheckpointStore(tmp_path, SPEC2)
        run = run_study(SPEC2, workers=1)
        result = ShardResult(
            shard_id=0,
            results=run.results[:1],
            metrics_delta={},
            replayed_cycles=0,
            spans=[Span(name="par.worker", start=0.0, end=1.0)],
        )
        store.save(result)
        loaded = store.load(1, 1)
        assert loaded is not None
        assert loaded.spans is None

    def test_older_version_files_rejected(self, tmp_path):
        import pickle
        store = CheckpointStore(tmp_path, SPEC2)
        run = run_study(SPEC2, workers=1)
        result = ShardResult(shard_id=0, results=run.results[:1],
                             metrics_delta={}, replayed_cycles=0)
        path = store.save(result)
        payload = pickle.loads(path.read_bytes())
        assert payload["version"] == CHECKPOINT_VERSION == 5
        payload["version"] = 4
        path.write_bytes(pickle.dumps(payload))
        assert store.load(1, 1) is None
