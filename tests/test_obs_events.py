"""Tests for the flight-recorder primitives (repro.obs.events,
repro.obs.progress) and the Chrome trace exporter."""

import io
import json

import pytest

from repro.obs import (
    Event,
    EventBus,
    FakeClock,
    NullClock,
    ProgressPrinter,
    ProgressTracker,
    Span,
    Tracer,
    emit,
    event_from_dict,
    get_event_bus,
    read_events,
    set_event_bus,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.events import iter_kind
from repro.obs.progress import _format_seconds


class TestEventBus:
    def test_seq_is_monotonic_from_one(self):
        bus = EventBus()
        events = [bus.emit("a"), bus.emit("b"), bus.emit("c")]
        assert [e.seq for e in events] == [1, 2, 3]

    def test_null_clock_means_no_timestamps(self):
        bus = EventBus()
        event = bus.emit("cycle.done", cycle=3)
        assert event.ts is None
        assert "ts" not in event.to_dict()

    def test_real_clock_stamps_events(self):
        clock = FakeClock(100.0)
        bus = EventBus(clock=clock)
        first = bus.emit("a")
        clock.advance(2.5)
        second = bus.emit("b")
        assert first.ts == 100.0
        assert second.ts == 102.5

    def test_reserved_field_names_rejected(self):
        bus = EventBus()
        for key in ("seq", "ts"):
            with pytest.raises(ValueError):
                bus.emit("a", **{key: 1})
        # "kind" is positional-only, so shadowing it is also rejected
        # (as the reserved-key ValueError, not a TypeError).
        with pytest.raises(ValueError):
            bus.emit("a", kind="other")

    def test_fields_flatten_into_the_json_line(self):
        stream = io.StringIO()
        bus = EventBus(sink=stream)
        bus.emit("shard.done", shard=2, traces=99)
        line = json.loads(stream.getvalue())
        assert line == {"seq": 1, "kind": "shard.done", "shard": 2,
                        "traces": 99}

    def test_ring_buffer_keeps_the_tail(self):
        bus = EventBus(keep=3)
        for index in range(5):
            bus.emit("tick", index=index)
        assert [e.fields["index"] for e in bus.events] == [2, 3, 4]
        assert [e.seq for e in bus.events] == [3, 4, 5]

    def test_sink_roundtrip_via_read_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventBus(sink=path) as bus:
            bus.emit("study.start", cycles=4)
            bus.emit("study.done", cycles=4)
        events = read_events(path)
        assert [e.kind for e in events] == ["study.start", "study.done"]
        assert events[0].fields == {"cycles": 4}

    def test_read_events_names_the_malformed_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 1, "kind": "a"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_events(path)

    def test_event_from_dict_splits_fields(self):
        event = event_from_dict({"seq": 7, "kind": "x", "ts": 1.5,
                                 "cycle": 3})
        assert event == Event(seq=7, kind="x", ts=1.5,
                              fields={"cycle": 3})

    def test_iter_kind_filters(self):
        bus = EventBus()
        bus.emit("a")
        bus.emit("b")
        bus.emit("a")
        assert len(list(iter_kind(bus.events, "a"))) == 2

    def test_global_bus_swap_and_emit(self):
        previous = get_event_bus()
        try:
            bus = set_event_bus(EventBus())
            emit("hello", x=1)
            assert bus.events[-1].kind == "hello"
        finally:
            set_event_bus(previous)


class TestProgressTracker:
    def test_heartbeats_accumulate_work(self):
        tracker = ProgressTracker(4)
        tracker.add_shard(0, 2.0)
        tracker.add_shard(1, 2.0)
        tracker.heartbeat(0, cycles_done=1)
        tracker.heartbeat(1, cycles_done=2)
        assert tracker.work_done == 3.0
        assert tracker.fraction == pytest.approx(0.75)

    def test_stale_heartbeat_never_moves_backwards(self):
        tracker = ProgressTracker(4)
        tracker.add_shard(0, 4.0)
        tracker.heartbeat(0, cycles_done=3)
        tracker.heartbeat(0, cycles_done=1)  # late re-delivery
        assert tracker.work_done == 3.0

    def test_abandoned_shard_keeps_the_high_water_mark(self):
        tracker = ProgressTracker(4)
        tracker.add_shard(0, 4.0)
        tracker.heartbeat(0, cycles_done=2)
        tracker.abandon_shard(0)
        tracker.add_shard(1, 2.0)
        tracker.add_shard(2, 2.0)
        assert tracker.work_done == 2.0  # not reset by the retry
        tracker.heartbeat(1, cycles_done=1)
        assert tracker.work_done == 2.0  # redone work only counts past
        tracker.shard_done(1)
        tracker.shard_done(2)
        assert tracker.work_done == 4.0

    def test_block_heartbeats_weigh_fractionally(self):
        tracker = ProgressTracker(1)
        tracker.add_shard(0, 0.5, is_block=True)
        tracker.add_shard(1, 0.5, is_block=True)
        tracker.heartbeat(0, blocks_done=1)
        assert tracker.work_done == 0.5
        tracker.heartbeat(1, blocks_done=1)
        assert tracker.work_done == 1.0

    def test_unknown_shard_heartbeat_is_ignored(self):
        tracker = ProgressTracker(4)
        tracker.heartbeat(99, cycles_done=3)
        assert tracker.work_done == 0.0

    def test_eta_from_fake_clock(self):
        clock = FakeClock()
        tracker = ProgressTracker(4, clock=clock)
        tracker.add_shard(0, 4.0)
        assert tracker.eta_seconds() is None
        clock.advance(10.0)
        tracker.heartbeat(0, cycles_done=1)
        assert tracker.eta_seconds() == pytest.approx(30.0)

    def test_null_clock_gives_no_eta(self):
        tracker = ProgressTracker(4)
        tracker.add_shard(0, 4.0)
        tracker.heartbeat(0, cycles_done=2)
        assert tracker.eta_seconds() is None
        assert "eta --" in tracker.render()

    def test_render_line(self):
        clock = FakeClock()
        tracker = ProgressTracker(4, clock=clock)
        tracker.add_shard(0, 2.0)
        tracker.add_shard(1, 2.0)
        clock.advance(8.0)
        tracker.heartbeat(0, cycles_done=2, traces=500)
        tracker.shard_done(0)
        line = tracker.render()
        assert line == ("cycles 2/4 (50%) | shards 1/2 | "
                        "traces 500 | eta 8s")

    def test_format_seconds(self):
        assert _format_seconds(42) == "42s"
        assert _format_seconds(90) == "1m30s"
        assert _format_seconds(3_700) == "1h01m"

    def test_snapshot_is_json_ready(self):
        clock = FakeClock()
        tracker = ProgressTracker(4, clock=clock)
        tracker.add_shard(0, 2.0)
        tracker.add_shard(1, 2.0)
        clock.advance(10.0)
        tracker.heartbeat(0, cycles_done=2, traces=100)
        tracker.shard_done(0)
        snap = tracker.snapshot()
        assert snap["work_done"] == 2.0
        assert snap["eta"] == pytest.approx(10.0)
        assert snap["shards_done"] == 1
        assert snap["traces"] == 100
        assert [s["shard"] for s in snap["shards"]] == [0, 1]
        json.dumps(snap)  # the /progress endpoint serialises this

    def test_snapshot_without_work_has_null_eta(self):
        snap = ProgressTracker(4).snapshot()
        assert snap["eta"] is None
        assert snap["work_done"] == 0.0
        assert snap["shards"] == []

    def test_tty_printer_overwrites_and_finishes(self):
        stream = _TtyStringIO()
        printer = ProgressPrinter(stream)
        tracker = ProgressTracker(4)
        tracker.add_shard(0, 4.0)
        printer.update(tracker)
        tracker.shard_done(0)
        printer.update(tracker)
        printer.finish()
        output = stream.getvalue()
        assert output.count("\r") == 3  # 2 redraws + final summary
        assert output.endswith("\n")
        assert output.count("\n") == 1  # only finish() ends a line

    def test_non_tty_printer_emits_plain_deduped_lines(self):
        stream = io.StringIO()  # StringIO.isatty() is False
        printer = ProgressPrinter(stream)
        tracker = ProgressTracker(4)
        tracker.add_shard(0, 4.0)
        printer.update(tracker)
        printer.update(tracker)  # unchanged -> no duplicate line
        tracker.shard_done(0)
        printer.update(tracker)
        printer.finish()
        output = stream.getvalue()
        assert "\r" not in output
        lines = output.splitlines()
        assert len(lines) == 2  # deduped; final line already current
        assert lines[-1].startswith("cycles 4/4")
        assert output.endswith("\n")

    def test_non_tty_finish_always_leaves_a_summary(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        tracker = ProgressTracker(4)
        tracker.add_shard(0, 4.0)
        printer.update(tracker)
        tracker.shard_done(0)  # progress since the last update...
        printer.finish()       # ...so finish prints the fresh summary
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[-1].startswith("cycles 4/4")

    def test_finish_without_updates_writes_nothing(self):
        stream = io.StringIO()
        ProgressPrinter(stream).finish()
        assert stream.getvalue() == ""


class _TtyStringIO(io.StringIO):
    """A StringIO that claims to be a terminal."""

    def isatty(self):
        return True


class TestChromeTrace:
    def _tree(self):
        clock = FakeClock(1000.0)
        tracer = Tracer(clock)
        with tracer.span("study", cycles=2):
            clock.advance(1.0)
            with tracer.span("assemble"):
                clock.advance(0.5)
        return tracer

    def test_complete_events_in_microseconds(self):
        payload = to_chrome_trace(self._tree())
        events = [e for e in payload["traceEvents"]
                  if e["ph"] == "X"]
        study = next(e for e in events if e["name"] == "study")
        assert study["ts"] == 0.0  # normalized to the earliest start
        assert study["dur"] == pytest.approx(1.5e6)
        child = next(e for e in events if e["name"] == "assemble")
        assert child["ts"] == pytest.approx(1e6)

    def test_shard_attribute_moves_subtree_to_its_own_track(self):
        tracer = self._tree()
        worker = Span(name="par.worker", attrs={"shard": 3},
                      start=1000.2, end=1000.4,
                      children=[Span(name="sim.cycle", start=1000.2,
                                     end=1000.3)])
        tracer.roots[0].children.append(worker)
        payload = to_chrome_trace(tracer)
        by_name = {e["name"]: e for e in payload["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["study"]["tid"] == 0
        assert by_name["par.worker"]["tid"] == 4
        assert by_name["sim.cycle"]["tid"] == 4  # inherited
        names = {e["tid"]: e["args"]["name"]
                 for e in payload["traceEvents"] if e["ph"] == "M"}
        assert names == {0: "parent", 4: "shard 3"}

    def test_open_span_is_flagged(self):
        tracer = Tracer(FakeClock())
        context = tracer.span("stuck")  # held open: never exited
        context.__enter__()
        payload = to_chrome_trace(tracer)
        (event,) = [e for e in payload["traceEvents"]
                    if e["ph"] == "X"]
        assert event["args"]["open"] is True
        assert event["dur"] == 0.0

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._tree())
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert any(e["name"] == "study"
                   for e in payload["traceEvents"])


class TestGraft:
    def test_graft_under_active_span(self):
        tracer = Tracer(NullClock())
        foreign = [Span(name="par.worker")]
        with tracer.span("study"):
            tracer.graft(foreign, shard=7)
        (root,) = tracer.roots
        (grafted,) = root.children
        assert grafted.name == "par.worker"
        assert grafted.attrs == {"shard": 7}

    def test_graft_without_active_span_adds_roots(self):
        tracer = Tracer(NullClock())
        tracer.graft([Span(name="a"), Span(name="b")])
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_grafted_totals_count_worker_time(self):
        tracer = Tracer(FakeClock())
        worker = Span(name="sim.cycle", start=0.0, end=2.0)
        with tracer.span("study"):
            tracer.graft([worker], shard=0)
        names = {t.name: t.total_s for t in tracer.totals()}
        assert names["sim.cycle"] == 2.0


class TestTracerReset:
    def test_reset_clears_the_stack(self):
        tracer = Tracer(NullClock())
        context = tracer.span("outer")
        context.__enter__()
        tracer.reset()
        assert tracer.active is None
        assert tracer.roots == []
        # The orphaned exit must not raise or touch the new tree.
        context.__exit__(None, None, None)
        with tracer.span("fresh"):
            pass
        assert [r.name for r in tracer.roots] == ["fresh"]

    def test_open_span_to_dict_is_flagged_not_zero(self):
        tracer = Tracer(FakeClock())
        context = tracer.span("stuck")  # held open: never exited
        context.__enter__()
        (data,) = tracer.to_dict()
        assert data["open"] is True
        assert "duration_s" not in data
