"""Tests for the differential oracle and invariant audit."""

from dataclasses import replace
from unittest import mock

import pytest

from repro.cli import main
from repro.core.filters import FilterStats
from repro.obs import (EventBus, get_event_bus, get_registry,
                       set_event_bus)
from repro.par import StudySpec, run_study
from repro.sim.dataplane import DataPlane
from repro.verify import (
    CONFIG_NAMES,
    Divergence,
    VerifyConfig,
    audit_run,
    canonical_cycle,
    check_cycle,
    check_run,
    default_matrix,
    diff_cycles,
    repro_command,
    run_matrix,
    shrink_divergence,
    state_fingerprint,
)
from repro.verify.invariants import (
    cache_accounting,
    filter_drop_counters,
    filter_funnel,
    state_roundtrip,
)

SPEC = StudySpec(scale=0.2, seed=7, cycles=2, snapshots_per_cycle=2)

# The in-process half of the matrix: everything that doesn't spawn a
# worker pool, so most tests stay fast.
_SERIAL_CONFIGS = [config for config in default_matrix()
                   if config.name not in ("workers", "pair-block")]


def _delta(values):
    """A registry-delta payload for one unlabelled counter value."""
    return {"values": [{"labels": {}, "value": values}]}


def _broken_resolve(original):
    """A stale-cache bug: memoized lookups perturb some AS paths."""
    def resolve(self, src_asn, dst_addr):
        origin, as_path, prefix = original(self, src_asn, dst_addr)
        cache = self.route_cache
        if (origin is not None and cache is not None
                and dst_addr % 7 == 0
                and (src_asn, dst_addr >> 8) in cache.routes):
            return origin, as_path[:1] + as_path[1:][::-1], prefix
        return origin, as_path, prefix
    return resolve


@pytest.fixture(scope="module")
def reference_run():
    """One serial study plus its run-level registry delta."""
    registry = get_registry()
    before = registry.snapshot()
    run = run_study(SPEC, workers=1)
    return run, registry.diff(before, registry.snapshot())


class TestInvariantsOnRealRun:
    def test_clean_run_has_no_violations(self, reference_run):
        run, delta = reference_run
        assert audit_run(run, delta) == []

    def test_violations_bump_counter_and_emit(self, reference_run):
        run, delta = reference_run
        bad = replace(
            run.results[0],
            filter_stats=FilterStats(
                extracted=5, after_incomplete=9, after_intra_as=4,
                after_target_as=3, after_transit_diversity=2,
                after_persistence=1),
            metrics={})
        fake = mock.Mock(results=[bad], simulator=run.simulator)
        saved = set_event_bus(EventBus())
        try:
            violations = audit_run(fake, delta)
            events = [event for event in get_event_bus().events
                      if event.kind == "verify.violation"]
        finally:
            set_event_bus(saved)
        assert violations
        assert len(events) == len(violations)
        assert events[0].fields["checker"] == "filter-funnel"


class TestCycleCheckers:
    def test_funnel_widening_fires(self):
        stats = FilterStats(
            extracted=10, after_incomplete=12, after_intra_as=8,
            after_target_as=8, after_transit_diversity=8,
            after_persistence=8)
        result = mock.Mock(filter_stats=stats, iotps={})
        problems = filter_funnel(result)
        assert any("widened" in problem for problem in problems)

    def test_more_iotps_than_survivors_fires(self):
        stats = FilterStats(
            extracted=10, after_incomplete=10, after_intra_as=10,
            after_target_as=10, after_transit_diversity=10,
            after_persistence=1)
        result = mock.Mock(filter_stats=stats,
                           iotps={(1, 2, 3): None, (1, 2, 4): None})
        problems = filter_funnel(result)
        assert any("IOTPs" in problem for problem in problems)

    def test_drop_counter_mismatch_fires(self):
        stats = FilterStats(
            extracted=10, after_incomplete=8, after_intra_as=8,
            after_target_as=8, after_transit_diversity=8,
            after_persistence=8)
        metrics = {"lsps_dropped_total": {"values": [
            {"labels": {"filter": "incomplete"}, "value": 5.0}]}}
        result = mock.Mock(filter_stats=stats, metrics=metrics)
        problems = filter_drop_counters(result)
        assert any("incomplete" in problem for problem in problems)

    def test_drop_counters_accept_empty_metrics_when_no_drops(self):
        stats = FilterStats(
            extracted=10, after_incomplete=10, after_intra_as=10,
            after_target_as=10, after_transit_diversity=10,
            after_persistence=10)
        result = mock.Mock(filter_stats=stats, metrics={})
        assert filter_drop_counters(result) == []

    def test_check_cycle_names_the_checker(self, reference_run):
        run, _ = reference_run
        assert check_cycle(run.results[0]) == []


class TestRunCheckers:
    def test_cache_mismatch_fires(self):
        delta = {"sim_traces_total": _delta(100.0),
                 "route_cache_hits_total": _delta(60.0),
                 "route_cache_misses_total": _delta(30.0)}
        problems = cache_accounting(mock.Mock(), delta)
        assert any("90" in problem for problem in problems)

    def test_unmemoized_run_is_exempt(self):
        delta = {"sim_traces_total": _delta(100.0)}
        assert cache_accounting(mock.Mock(), delta) == []

    def test_negative_cache_counter_fires(self):
        delta = {"hop_cache_hits_total": _delta(-1.0)}
        problems = cache_accounting(mock.Mock(), delta)
        assert any("backwards" in problem for problem in problems)

    def test_state_roundtrip_detects_lossy_restore(self):
        class LossyInternet:
            def __init__(self):
                self.captures = 0

            def capture_state(self):
                self.captures += 1
                return {"captures": self.captures}

            def restore_state(self, state):
                pass

        run = mock.Mock(simulator=mock.Mock(internet=LossyInternet()))
        problems = state_roundtrip(run, {})
        assert any("idempotent" in problem for problem in problems)

    def test_real_internet_roundtrips(self, reference_run):
        run, delta = reference_run
        assert check_run(run, delta) == []


class TestCanonicalDiff:
    def test_identical_runs_diff_clean(self, reference_run):
        run, _ = reference_run
        config = VerifyConfig(name="self")
        assert diff_cycles(run.results, run.results, config) is None

    def test_strips_layout_dependent_metrics(self, reference_run):
        run, _ = reference_run
        canon = canonical_cycle(run.results[0])
        assert not any(name.startswith("route_cache_")
                       for name in canon["metrics"])

    def test_mutation_pins_cycle_and_stage(self, reference_run):
        run, _ = reference_run
        target = run.results[1]
        mutated = replace(
            target,
            filter_stats=replace(target.filter_stats,
                                 after_persistence=
                                 target.filter_stats.after_persistence
                                 + 1))
        candidate = [run.results[0], mutated]
        divergence = diff_cycles(run.results, candidate,
                                 VerifyConfig(name="mutant"))
        assert divergence is not None
        assert divergence.cycle == target.cycle
        assert divergence.stage == "filter_stats"
        assert any("after_persistence" in entry.path
                   for entry in divergence.entries)
        assert "mutant" in divergence.describe()

    def test_missing_cycle_is_cycle_count(self, reference_run):
        run, _ = reference_run
        divergence = diff_cycles(run.results, run.results[:1],
                                 VerifyConfig(name="short"))
        assert divergence is not None
        assert divergence.stage == "cycle-count"

    def test_partial_config_may_cover_a_prefix(self, reference_run):
        run, _ = reference_run
        config = VerifyConfig(name="arch", archive="strict")
        assert diff_cycles(run.results, run.results[:1],
                           config) is None


class TestMatrixSerialConfigs:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        saved = set_event_bus(EventBus())
        try:
            report = run_matrix(
                SPEC, _SERIAL_CONFIGS,
                workdir=tmp_path_factory.mktemp("verify"),
                shrink=False)
            events = get_event_bus().events
        finally:
            set_event_bus(saved)
        return report, events

    def test_all_configs_byte_identical(self, report):
        matrix, _ = report
        assert matrix.clean
        assert [outcome.status for outcome in matrix.outcomes] == \
            ["ok"] * len(_SERIAL_CONFIGS)

    def test_archive_configs_cover_a_prefix(self, report):
        matrix, _ = report
        by_name = {outcome.config.name: outcome
                   for outcome in matrix.outcomes}
        assert by_name["strict-archive"].cycles == 1
        assert by_name["resume"].cycles == SPEC.cycles

    def test_events_cover_lifecycle(self, report):
        _, events = report
        kinds = [event.kind for event in events]
        assert kinds.count("verify.start") == 1
        assert kinds.count("verify.config") == len(_SERIAL_CONFIGS)
        assert kinds.count("verify.done") == 1

    def test_render_mentions_verdict(self, report):
        matrix, _ = report
        text = matrix.render()
        assert "byte-identical" in text
        for config in _SERIAL_CONFIGS:
            assert config.name in text


class TestMatrixWorkerConfigs:
    def test_workers_and_pair_blocks_match_reference(self, tmp_path):
        configs = [config for config in default_matrix(workers=2)
                   if config.name in ("workers", "pair-block")]
        report = run_matrix(SPEC, configs, workdir=tmp_path,
                            shrink=False)
        assert report.clean, report.render()


class TestBrokenMemoDetection:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        spec = StudySpec(scale=0.2, seed=7, cycles=3,
                         snapshots_per_cycle=2)
        configs = [config for config in default_matrix()
                   if config.name == "no-memo"]
        patched = _broken_resolve(DataPlane._resolve_route)
        saved = set_event_bus(EventBus())
        try:
            with mock.patch.object(DataPlane, "_resolve_route",
                                   patched):
                report = run_matrix(
                    spec, configs,
                    workdir=tmp_path_factory.mktemp("broken"),
                    shrink=True)
            events = get_event_bus().events
        finally:
            set_event_bus(saved)
        return report, events

    def test_divergence_detected(self, report):
        matrix, _ = report
        assert not matrix.clean
        assert len(matrix.divergences) == 1
        assert matrix.divergences[0].config == "no-memo"

    def test_shrunk_to_at_most_two_cycles(self, report):
        matrix, _ = report
        outcome = matrix.outcomes[0]
        assert outcome.minimal_spec is not None
        assert outcome.minimal_spec.cycles <= 2
        assert outcome.command is not None
        assert "--configs no-memo" in outcome.command

    def test_divergence_and_minimal_events(self, report):
        _, events = report
        kinds = {event.kind for event in events}
        assert "verify.divergence" in kinds
        assert "verify.minimal" in kinds
        assert "verify.shrink.step" in kinds

    def test_render_carries_repro_command(self, report):
        matrix, _ = report
        text = matrix.render()
        assert "DIVERGED" in text
        assert "repro verify" in text


class TestShrinkOnCleanSpec:
    def test_unreproducible_divergence_keeps_spec(self, tmp_path):
        spec = StudySpec(scale=0.1, seed=7, cycles=1,
                         snapshots_per_cycle=2)
        config = VerifyConfig(name="no-memo", memoize=False)
        phantom = Divergence(config="no-memo", stage="stats", cycle=1)
        result = shrink_divergence(spec, config, phantom, tmp_path)
        assert result.spec == spec
        assert result.trials >= 1


class TestReproCommand:
    def test_round_trips_spec_fields(self):
        command = repro_command(SPEC, VerifyConfig(name="no-memo"))
        assert "--cycles 2" in command
        assert "--scale 0.2" in command
        assert "--seed 7" in command
        assert "--configs no-memo" in command

    def test_worker_config_carries_worker_count(self):
        command = repro_command(
            SPEC, VerifyConfig(name="workers", workers=4))
        assert "--workers 4" in command


class TestEndStateFingerprint:
    def test_same_spec_same_fingerprint(self, reference_run):
        run, _ = reference_run
        again = run_study(SPEC, workers=1)
        assert state_fingerprint(run.simulator.internet) == \
            state_fingerprint(again.simulator.internet)


class TestConfigNames:
    def test_matrix_names_are_stable(self):
        assert CONFIG_NAMES == (
            "workers", "pair-block", "no-memo", "resume",
            "state-cold", "state-warm", "strict-archive",
            "tolerant-archive", "columnar", "columnar+workers")


class TestVerifyCli:
    def test_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["verify"])
        assert args.cycles == 4
        assert args.scale == 0.25
        assert args.configs is None

    def test_rejects_unknown_config(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["verify", "--configs", "warp-drive"])

    def test_rejects_bad_counts(self, capsys):
        assert main(["verify", "--cycles", "0"]) == 2
        assert main(["verify", "--workers", "0"]) == 2
        assert main(["verify", "--snapshots-per-cycle", "0"]) == 2

    def test_clean_subset_exits_zero(self, capsys, tmp_path):
        code = main(["verify", "--cycles", "1", "--scale", "0.2",
                     "--seed", "7", "--snapshots-per-cycle", "2",
                     "--configs", "no-memo", "strict-archive",
                     "--workdir", str(tmp_path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "byte-identical" in output
        assert (tmp_path / "archive-strict").is_dir()

    def test_divergence_exits_one_and_reports(self, capsys, tmp_path):
        events_path = tmp_path / "events.jsonl"
        patched = _broken_resolve(DataPlane._resolve_route)
        with mock.patch.object(DataPlane, "_resolve_route", patched):
            code = main(["verify", "--cycles", "2", "--scale", "0.2",
                         "--seed", "7", "--snapshots-per-cycle", "2",
                         "--configs", "no-memo", "--no-shrink",
                         "--events-out", str(events_path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "DIVERGED" in output
        assert main(["report", str(events_path)]) == 0
        report = capsys.readouterr().out
        assert "differential verification" in report
        assert "no-memo" in report
