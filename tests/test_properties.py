"""Property-based tests over the system's core invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.classification import TunnelClass, classify_iotp
from repro.core.extraction import extract_lsps
from repro.core.model import Iotp, Lsp
from repro.igp.spf import spf_to
from repro.igp.topology import Router, Topology
from repro.mpls.lse import LabelStackEntry
from repro.traces import StopReason, Trace, TraceHop


# -- random topology strategy -------------------------------------------------

@st.composite
def topologies(draw):
    """Connected random topologies with 3..10 routers."""
    count = draw(st.integers(min_value=3, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    topology = Topology(asn=65000)
    for router_id in range(count):
        topology.add_router(Router(router_id, loopback=10_000 + router_id))
    next_addr = [0]

    def pair():
        next_addr[0] += 2
        return 100 + next_addr[0] - 2, 100 + next_addr[0] - 1

    for router_id in range(1, count):
        a, b = pair()
        topology.add_link(rng.randrange(router_id), router_id, a, b,
                          cost=rng.randint(1, 4))
    extra = draw(st.integers(min_value=0, max_value=count))
    for _ in range(extra):
        left = rng.randrange(count)
        right = rng.randrange(count)
        if left != right:
            a, b = pair()
            topology.add_link(left, right, a, b, cost=rng.randint(1, 4))
    return topology


class TestSpfProperties:
    @settings(max_examples=60, deadline=None)
    @given(topologies())
    def test_bellman_consistency(self, topology):
        """dist[r] == dist[next_hop] + cost for every ECMP successor,
        and no neighbor offers anything shorter (Bellman optimality)."""
        destination = 0
        result = spf_to(topology, destination)
        for router_id in topology.routers:
            if router_id == destination:
                assert result.distance[router_id] == 0
                continue
            assert result.reachable(router_id)
            best = result.distance[router_id]
            for next_hop, link in result.next_hops(router_id):
                assert best == result.distance[next_hop] + link.cost
            for neighbor, link in topology.neighbors(router_id):
                assert best <= result.distance[neighbor] + link.cost

    @settings(max_examples=60, deadline=None)
    @given(topologies())
    def test_enumerated_paths_cost_matches_distance(self, topology):
        result = spf_to(topology, 0)
        for router_id in topology.routers:
            if router_id == 0:
                continue
            for path in result.all_paths(router_id, limit=32):
                cost = sum(link.cost for _, link in path)
                assert cost == result.distance[router_id]
                assert path[-1][0] == 0

    @settings(max_examples=60, deadline=None)
    @given(topologies())
    def test_paths_are_distinct_and_counted(self, topology):
        result = spf_to(topology, 0)
        for router_id in topology.routers:
            paths = result.all_paths(router_id, limit=1000)
            keys = {tuple(link.link_id for _, link in path)
                    for path in paths}
            assert len(keys) == len(paths)
            assert result.path_count(router_id) == len(paths)


# -- random IOTP strategy ------------------------------------------------------

@st.composite
def iotps(draw):
    """IOTPs with 1..4 LSPs over a small address/label alphabet.

    Small alphabets force address collisions so common-IP and label
    comparisons actually trigger.
    """
    branch_count = draw(st.integers(min_value=1, max_value=4))
    iotp = Iotp(asn=65001, entry=1, exit=2)
    for index in range(branch_count):
        hops = tuple(
            (draw(st.integers(min_value=10, max_value=15)),
             draw(st.integers(min_value=100, max_value=104)))
            for _ in range(draw(st.integers(min_value=1, max_value=4)))
        )
        iotp.add(Lsp(entry=1, exit=2, hops=hops, complete=True,
                     monitor="m", dst=index, asn=65001),
                 dst_asn=index)
    return iotp


class TestClassificationProperties:
    @settings(max_examples=200, deadline=None)
    @given(iotps())
    def test_verdict_is_consistent_with_definition(self, iotp):
        verdict = classify_iotp(iotp)
        common = iotp.common_addresses()
        if iotp.width == 1:
            assert verdict.tunnel_class is TunnelClass.MONO_LSP
        elif not common:
            assert verdict.tunnel_class is TunnelClass.UNCLASSIFIED
        elif any(len(iotp.labels_at(a)) > 1 for a in common):
            assert verdict.tunnel_class is TunnelClass.MULTI_FEC
        else:
            assert verdict.tunnel_class is TunnelClass.MONO_FEC
            assert verdict.subclass is not None

    @settings(max_examples=200, deadline=None)
    @given(iotps())
    def test_metrics_bounds(self, iotp):
        verdict = classify_iotp(iotp)
        assert verdict.width == iotp.width >= 1
        assert 0 <= verdict.symmetry < max(1, verdict.length + 1)
        lengths = [lsp.length for lsp in iotp.lsps.values()]
        assert verdict.length == max(lengths)
        assert verdict.symmetry == max(lengths) - min(lengths)

    @settings(max_examples=120, deadline=None)
    @given(iotps())
    def test_php_heuristic_only_touches_unclassified(self, iotp):
        plain = classify_iotp(iotp, php_heuristic=False)
        resolved = classify_iotp(iotp, php_heuristic=True)
        if plain.tunnel_class is not TunnelClass.UNCLASSIFIED:
            assert resolved.tunnel_class is plain.tunnel_class
        else:
            assert resolved.tunnel_class in (TunnelClass.MONO_FEC,
                                             TunnelClass.MULTI_FEC)


# -- random trace strategy ------------------------------------------------------

@st.composite
def traces(draw):
    """Traces mixing plain, labeled and anonymous hops."""
    hop_count = draw(st.integers(min_value=1, max_value=14))
    hops = []
    for ttl in range(1, hop_count + 1):
        kind = draw(st.sampled_from(["plain", "label", "anon"]))
        if kind == "anon":
            hops.append(TraceHop(probe_ttl=ttl, address=None))
        elif kind == "label":
            label = draw(st.integers(min_value=16, max_value=2**20 - 1))
            hops.append(TraceHop(
                probe_ttl=ttl, address=1000 + ttl, rtt_ms=1.0,
                quoted_stack=(LabelStackEntry(label, bottom=True,
                                              ttl=1),),
            ))
        else:
            hops.append(TraceHop(probe_ttl=ttl, address=1000 + ttl,
                                 rtt_ms=1.0))
    return Trace(monitor="m", src=1, dst=2, timestamp=0.0,
                 stop_reason=StopReason.COMPLETED, hops=hops)


class TestExtractionProperties:
    @settings(max_examples=200, deadline=None)
    @given(traces())
    def test_every_labeled_hop_lands_in_exactly_one_lsp(self, trace):
        lsps = extract_lsps(trace)
        extracted = [hop for lsp in lsps for hop in lsp.hops]
        labeled = [(hop.address, hop.labels[0]) for hop in trace.hops
                   if hop.has_labels]
        assert sorted(extracted) == sorted(labeled)

    @settings(max_examples=200, deadline=None)
    @given(traces())
    def test_complete_lsps_have_context(self, trace):
        for lsp in extract_lsps(trace):
            if lsp.complete:
                assert lsp.entry is not None
                assert lsp.exit is not None
                assert lsp.hops
            assert lsp.entry is None or lsp.entry not in \
                {address for address, _ in lsp.hops}

    @settings(max_examples=200, deadline=None)
    @given(traces())
    def test_extraction_is_deterministic(self, trace):
        first = [lsp.signature for lsp in extract_lsps(trace)]
        second = [lsp.signature for lsp in extract_lsps(trace)]
        assert first == second
