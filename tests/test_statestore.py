"""Warm-start state snapshot tests (repro.par.statestore, DESIGN §10).

Four layers, inside out:

* the **closed-form allocator advance** — proven exactly equivalent to
  the allocate/release loop it replaced, across every vendor profile
  and through label-space wrap-around;
* **capture/restore** — a restored control plane is
  fingerprint-identical to the captured one (across a pickle, as the
  worker path ships it), a restored-then-replayed simulator matches a
  cold replay, and probing over restored state yields identical traces;
* the **StateStore** — nearest-snapshot semantics, plus the same trust
  model as the checkpoint store: corrupt, foreign-spec and
  wrong-version snapshots are rejected (never restored) and the search
  degrades to older snapshots, then to a cold replay;
* **whole studies** — serial and parallel runs with a state store are
  byte-identical to cold runs (results, checkpoints, end state), and an
  interrupted ``--state-dir`` study resumes warm.
"""

import dataclasses
import pickle
import random
import shutil

import pytest

from repro.core.pipeline import run_study
from repro.mpls.lfib import LabelAllocator, LabelAllocatorError
from repro.mpls.vendor import PROFILES, get_profile
from repro.obs import get_registry
from repro.par import (
    CheckpointStore,
    StateStore,
    StudySpec,
    build_study,
    spec_hash,
    state_spec_hash,
)
from repro.par.faults import RAISE, FaultInjected, FaultPlan, ShardFault

SPEC = StudySpec(scale=0.25, seed=7, cycles=6, snapshots_per_cycle=2)


def _counter_total(name, **labels):
    metric = get_registry().get(name)
    if metric is None:
        return 0
    if labels:
        return metric.value(**labels)
    return sum(value for _, value in metric.labelled_values())


def _fingerprint(internet) -> bytes:
    return pickle.dumps(internet.capture_state())


def _assert_identical(expected, actual):
    assert [r.cycle for r in actual.results] == \
        [r.cycle for r in expected.results]
    for left, right in zip(expected.results, actual.results):
        assert left.stats == right.stats
        assert left.filter_stats == right.filter_stats
        assert left.classification.verdicts == \
            right.classification.verdicts
        assert left.metrics == right.metrics
    assert _fingerprint(expected.simulator.internet) == \
        _fingerprint(actual.simulator.internet)


# -- closed-form allocator advance ------------------------------------------


def _allocator_state(allocator):
    return (allocator._next, allocator.allocated_total,
            tuple(sorted(allocator._in_use)))


def _loop_reference(allocator, count):
    """The O(count) allocate/release loop ``advance`` replaces."""
    for _ in range(count):
        allocator.release(allocator.allocate())


def _tiny_profile(label_min=16, label_max=27):
    """A 12-label space so wrap-around happens within a few calls."""
    return dataclasses.replace(get_profile("cisco"),
                               label_min=label_min, label_max=label_max)


class TestClosedFormAdvance:
    @pytest.mark.parametrize("vendor", sorted(PROFILES))
    def test_matches_loop_across_vendor_profiles(self, vendor):
        profile = get_profile(vendor)
        rng = random.Random(hash(vendor) & 0xFFFF)
        for trial in range(25):
            closed = LabelAllocator(profile,
                                    start_offset=rng.randrange(5000))
            held = [closed.allocate()
                    for _ in range(rng.randrange(0, 12))]
            for label in rng.sample(held, k=len(held) // 3):
                closed.release(label)
            reference = LabelAllocator(profile)
            reference.restore(closed.capture())
            count = rng.randrange(1, 400)
            closed.advance(count)
            _loop_reference(reference, count)
            assert _allocator_state(closed) == \
                _allocator_state(reference), (vendor, trial, count)

    def test_matches_loop_through_wraparound(self):
        profile = _tiny_profile()
        space = profile.label_space()
        rng = random.Random(0x11AB)
        for trial in range(150):
            closed = LabelAllocator(profile,
                                    start_offset=rng.randrange(40))
            held = [closed.allocate()
                    for _ in range(rng.randrange(0, space - 1))]
            for label in rng.sample(held,
                                    k=rng.randrange(0, len(held) + 1)):
                closed.release(label)
            reference = LabelAllocator(profile)
            reference.restore(closed.capture())
            # Up to 4x the label space: several full wraps of the
            # free-label cycle.
            count = rng.randrange(1, 4 * space)
            closed.advance(count)
            _loop_reference(reference, count)
            assert _allocator_state(closed) == \
                _allocator_state(reference), (trial, count)

    def test_exhausted_space_raises(self):
        allocator = LabelAllocator(_tiny_profile())
        for _ in range(allocator.profile.label_space()):
            allocator.allocate()
        with pytest.raises(LabelAllocatorError):
            allocator.advance(1)

    def test_nonpositive_count_is_a_noop(self):
        allocator = LabelAllocator(_tiny_profile(), start_offset=3)
        allocator.allocate()
        before = _allocator_state(allocator)
        allocator.advance(0)
        allocator.advance(-5)
        assert _allocator_state(allocator) == before


# -- capture/restore ---------------------------------------------------------


@pytest.fixture(scope="module")
def warmed():
    """A simulator advanced through 4 of SPEC's cycles."""
    simulator, _ = build_study(SPEC)
    simulator.fast_forward(1, 4)
    return simulator


class TestCaptureRestore:
    def test_round_trip_is_fingerprint_identical(self, warmed):
        # The worker path ships snapshots through pickle; restoring
        # the unpickled state must reproduce the capture exactly.
        state = pickle.loads(pickle.dumps(
            warmed.internet.capture_state()))
        fresh, _ = build_study(SPEC)
        fresh.internet.restore_state(state)
        assert _fingerprint(fresh.internet) == \
            _fingerprint(warmed.internet)

    def test_restore_plus_tail_matches_cold_replay(self, warmed):
        state = pickle.loads(pickle.dumps(
            warmed.internet.capture_state()))
        restored, _ = build_study(SPEC)
        restored.internet.restore_state(state)
        restored.fast_forward(5, SPEC.cycles)
        cold, _ = build_study(SPEC)
        cold.fast_forward(1, SPEC.cycles)
        assert _fingerprint(restored.internet) == \
            _fingerprint(cold.internet)

    def test_probes_over_restored_state_are_identical(self, warmed):
        state = pickle.loads(pickle.dumps(
            warmed.internet.capture_state()))
        restored, _ = build_study(SPEC)
        restored.internet.restore_state(state)
        cold, _ = build_study(SPEC)
        cold.fast_forward(1, 4)
        warm_data = restored.run_cycle(5)
        cold_data = cold.run_cycle(5)
        assert pickle.dumps(warm_data.snapshots) == \
            pickle.dumps(cold_data.snapshots)

    def test_foreign_shape_is_rejected(self, warmed):
        state = warmed.internet.capture_state()
        other, _ = build_study(dataclasses.replace(SPEC, scale=0.35))
        with pytest.raises(ValueError):
            other.internet.restore_state(state)

    def test_foreign_version_is_rejected(self, warmed):
        state = dict(warmed.internet.capture_state())
        state["version"] = 99
        fresh, _ = build_study(SPEC)
        with pytest.raises(ValueError):
            fresh.internet.restore_state(state)


class TestSyncMemoization:
    def _mpls_network(self, simulator):
        for asn in sorted(simulator.internet.networks):
            network = simulator.internet.networks[asn]
            if network.labels is not None and network._te_active:
                return network
        pytest.skip("scenario has no TE-active AS")

    def test_unchanged_policy_skips_reconciliation(self, warmed):
        network = self._mpls_network(warmed)
        before_sessions = network.rsvp.capture_sessions()
        before_labels = network.labels.capture()
        signature = network._te_signature
        assert signature is not None
        network.apply_policy(network.policy)
        assert network._te_signature == signature
        assert network.rsvp.capture_sessions() == before_sessions
        assert network.labels.capture() == before_labels

    def test_changed_signature_still_reconciles(self, warmed):
        network = self._mpls_network(warmed)
        policy = network.policy
        changed = dataclasses.replace(
            policy, te_pair_fraction=policy.te_pair_fraction / 2)
        active_before = dict(network._te_active)
        network.apply_policy(changed)
        assert network._te_signature == (
            changed.te_pair_fraction, changed.te_tunnels_per_pair)
        assert network._te_active != active_before
        # Restore the original configuration for the other tests.
        network.apply_policy(policy)
        assert network._te_active == active_before

    def test_disable_clears_signatures(self, warmed):
        state = warmed.internet.capture_state()
        network = self._mpls_network(warmed)
        policy = network.policy
        network.apply_policy(dataclasses.replace(policy, enabled=False))
        assert network._te_signature is None
        assert network._sr_signature is None
        warmed.internet.restore_state(state)


# -- the store ---------------------------------------------------------------


class TestStateStore:
    def _seeded(self, tmp_path, cycles=(2, 4)):
        simulator, _ = build_study(SPEC)
        store = StateStore(tmp_path, SPEC)
        cursor = 0
        for cycle in cycles:
            simulator.fast_forward(cursor + 1, cycle)
            cursor = cycle
            store.save(cycle, simulator.internet.capture_state())
        return store

    def test_save_load_round_trip(self, tmp_path):
        store = self._seeded(tmp_path)
        assert store.cycles() == [2, 4]
        assert store.has(2) and not store.has(3)
        state = store.load(2)
        simulator, _ = build_study(SPEC)
        simulator.internet.restore_state(state)
        cold, _ = build_study(SPEC)
        cold.fast_forward(1, 2)
        assert _fingerprint(simulator.internet) == \
            _fingerprint(cold.internet)

    def test_load_nearest_prefers_newest(self, tmp_path):
        store = self._seeded(tmp_path)
        cycle, _state = store.load_nearest(5)
        assert cycle == 4
        cycle, _state = store.load_nearest(3)
        assert cycle == 2

    def test_load_nearest_respects_after(self, tmp_path):
        store = self._seeded(tmp_path)
        assert store.load_nearest(5, after=4) is None
        cycle, _state = store.load_nearest(4, after=2)
        assert cycle == 4

    def test_fruitless_search_counts_a_miss(self, tmp_path):
        store = self._seeded(tmp_path)
        before = _counter_total("state_snapshot_misses_total")
        assert store.load_nearest(1) is None
        assert _counter_total("state_snapshot_misses_total") == \
            before + 1

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        store = self._seeded(tmp_path)
        store.path_for(4).write_bytes(b"not a snapshot at all")
        before = _counter_total("state_snapshot_rejected_total",
                                reason="corrupt")
        cycle, state = store.load_nearest(5)
        assert cycle == 2 and state is not None
        assert _counter_total("state_snapshot_rejected_total",
                              reason="corrupt") == before + 1

    def test_foreign_spec_snapshot_is_rejected(self, tmp_path):
        store = self._seeded(tmp_path)
        other_spec = dataclasses.replace(SPEC, seed=8)
        assert state_spec_hash(SPEC) != state_spec_hash(other_spec)
        # Smuggle SPEC's snapshot into the other spec's directory —
        # the embedded hash check must still reject it.
        target = StateStore(tmp_path, other_spec)
        target.directory.mkdir(parents=True, exist_ok=True)
        shutil.copy(store.path_for(2), target.path_for(2))
        before = _counter_total("state_snapshot_rejected_total",
                                reason="spec_mismatch")
        assert target.load(2) is None
        assert _counter_total("state_snapshot_rejected_total",
                              reason="spec_mismatch") == before + 1

    def test_older_version_snapshot_is_rejected(self, tmp_path):
        store = self._seeded(tmp_path)
        path = store.path_for(2)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = 0
        path.write_bytes(pickle.dumps(payload))
        before = _counter_total("state_snapshot_rejected_total",
                                reason="version")
        assert store.load(2) is None
        assert _counter_total("state_snapshot_rejected_total",
                              reason="version") == before + 1

    def test_state_hash_is_not_the_checkpoint_hash(self):
        # The two stores version independently; sharing a directory
        # must never alias their files.
        assert state_spec_hash(SPEC) != spec_hash(SPEC)


# -- whole studies -----------------------------------------------------------


@pytest.fixture(scope="module")
def cold_run():
    return run_study(SPEC, workers=1)


class TestWarmStudies:
    def test_serial_warm_identical_to_cold(self, cold_run, tmp_path):
        warm = run_study(SPEC, workers=1, state_dir=tmp_path,
                         snapshot_stride=2)
        _assert_identical(cold_run, warm)
        assert StateStore(tmp_path, SPEC).cycles() == [2, 4, 6]

    def test_parallel_warm_identical_to_cold(self, cold_run, tmp_path):
        before = _counter_total("state_snapshot_hits_total")
        warm = run_study(SPEC, workers=3, state_dir=tmp_path,
                         snapshot_stride=2)
        _assert_identical(cold_run, warm)
        # The parent seeds the store before dispatch, so even this
        # first run's late shards restore instead of replaying.
        assert _counter_total("state_snapshot_hits_total") > before
        late = [s for s in warm.shards if s.results[0].cycle > 2]
        assert late and all(
            s.replayed_cycles < s.results[0].cycle - 1 for s in late)

    def test_checkpoints_byte_identical_warm_vs_cold(self, tmp_path):
        run_study(SPEC, workers=1, checkpoint_dir=tmp_path / "cold")
        run_study(SPEC, workers=1, checkpoint_dir=tmp_path / "warm",
                  state_dir=tmp_path / "state", snapshot_stride=2)
        cold_store = CheckpointStore(tmp_path / "cold", SPEC)
        warm_store = CheckpointStore(tmp_path / "warm", SPEC)
        for cycle in range(1, SPEC.cycles + 1):
            assert cold_store.path_for(cycle, cycle).read_bytes() == \
                warm_store.path_for(cycle, cycle).read_bytes()

    def test_interrupted_serial_study_resumes_warm(self, cold_run,
                                                   tmp_path):
        plan = FaultPlan({5: ShardFault(kind=RAISE, attempts=(0,))})
        with pytest.raises(FaultInjected):
            run_study(SPEC, workers=1,
                      checkpoint_dir=tmp_path / "ckpt",
                      state_dir=tmp_path / "state", snapshot_stride=2,
                      fault_plan=plan)
        assert StateStore(tmp_path / "state", SPEC).cycles() == [2, 4]
        before_hits = _counter_total("state_snapshot_hits_total")
        resumed = run_study(SPEC, workers=1,
                            checkpoint_dir=tmp_path / "ckpt",
                            state_dir=tmp_path / "state",
                            snapshot_stride=2)
        # Cycles 1-4 replay from checkpoints without touching the
        # simulator; the jump to probing cycle 5 restores the cycle-4
        # snapshot instead of replaying cycles 1-4.
        assert _counter_total("state_snapshot_hits_total") > \
            before_hits
        _assert_identical(cold_run, resumed)

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            run_study(SPEC, workers=1, snapshot_stride=0)
