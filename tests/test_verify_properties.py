"""Property-based tests for the verify invariant checkers.

Two directions, both randomized: checkers stay silent on arbitrary
*valid* results (no false positives over the whole input space), and
every checker fires when its invariant is deliberately broken (no
false negatives on the violation classes it claims to catch).
"""

from unittest import mock

from hypothesis import given, settings, strategies as st

from repro.core.classification import (
    ClassificationResult,
    IotpVerdict,
    TunnelClass,
)
from repro.core.filters import FilterStats
from repro.verify.invariants import (
    SHARE_EPSILON,
    classification_reconciliation,
    filter_drop_counters,
    filter_funnel,
)

_CLASSES = list(TunnelClass)


@st.composite
def monotone_filter_stats(draw):
    """A valid funnel: six non-increasing survivor counts."""
    counts = sorted(
        draw(st.lists(st.integers(min_value=0, max_value=10_000),
                      min_size=6, max_size=6)),
        reverse=True)
    return FilterStats(
        extracted=counts[0], after_incomplete=counts[1],
        after_intra_as=counts[2], after_target_as=counts[3],
        after_transit_diversity=counts[4],
        after_persistence=counts[5])


@st.composite
def widened_filter_stats(draw):
    """An invalid funnel: one stage gained survivors."""
    stats = draw(monotone_filter_stats())
    stage = draw(st.sampled_from(
        ["after_incomplete", "after_intra_as", "after_target_as",
         "after_transit_diversity", "after_persistence"]))
    order = ["extracted", "after_incomplete", "after_intra_as",
             "after_target_as", "after_transit_diversity",
             "after_persistence"]
    previous = order[order.index(stage) - 1]
    bump = draw(st.integers(min_value=1, max_value=100))
    return FilterStats(**{
        name: (getattr(stats, previous) + bump if name == stage
               else getattr(stats, name))
        for name in order
    })


@st.composite
def classifications(draw):
    """A ClassificationResult over random verdicts."""
    classes = draw(st.lists(st.sampled_from(_CLASSES), max_size=64))
    result = ClassificationResult()
    for index, tunnel_class in enumerate(classes):
        result.add(IotpVerdict(key=(65001, 0, index),
                               tunnel_class=tunnel_class))
    return result


def _cycle(filter_stats=None, classification=None, metrics=None,
           iotps=None):
    return mock.Mock(
        cycle=1, filter_stats=filter_stats,
        classification=classification,
        metrics=metrics if metrics is not None else {},
        iotps=iotps if iotps is not None else {})


class TestFunnelMonotonicity:
    @settings(max_examples=80, deadline=None)
    @given(monotone_filter_stats())
    def test_valid_funnels_pass(self, stats):
        assert filter_funnel(_cycle(filter_stats=stats)) == []

    @settings(max_examples=80, deadline=None)
    @given(widened_filter_stats())
    def test_widened_funnels_fire(self, stats):
        problems = filter_funnel(_cycle(filter_stats=stats))
        assert any("widened" in problem for problem in problems)

    @settings(max_examples=40, deadline=None)
    @given(monotone_filter_stats(),
           st.integers(min_value=1, max_value=50))
    def test_excess_iotps_fire(self, stats, excess):
        iotps = {(65001, 0, index): None
                 for index in range(stats.after_persistence + excess)}
        problems = filter_funnel(_cycle(filter_stats=stats,
                                        iotps=iotps))
        assert any("IOTPs" in problem for problem in problems)


class TestShareReconciliation:
    @settings(max_examples=80, deadline=None)
    @given(classifications())
    def test_real_shares_always_reconcile(self, classification):
        cycle = _cycle(classification=classification)
        assert classification_reconciliation(cycle) == []
        shares = classification.shares()
        if classification.verdicts:
            assert abs(sum(shares.values()) - 1.0) <= SHARE_EPSILON

    @settings(max_examples=40, deadline=None)
    @given(classifications().filter(lambda c: len(c.verdicts) > 0),
           st.floats(min_value=0.01, max_value=0.5))
    def test_perturbed_shares_fire(self, classification, skew):
        honest = classification.shares()
        crooked = dict(honest)
        crooked[_CLASSES[0]] = honest[_CLASSES[0]] + skew
        broken = mock.Mock(
            verdicts=classification.verdicts,
            counts=classification.counts,
            shares=lambda: crooked)
        problems = classification_reconciliation(
            _cycle(classification=broken))
        assert problems

    @settings(max_examples=40, deadline=None)
    @given(classifications().filter(lambda c: len(c.verdicts) > 0),
           st.integers(min_value=1, max_value=10))
    def test_miscounted_totals_fire(self, classification, extra):
        honest = classification.counts()
        crooked = dict(honest)
        crooked[_CLASSES[0]] = honest[_CLASSES[0]] + extra
        broken = mock.Mock(
            verdicts=classification.verdicts,
            counts=lambda: crooked,
            shares=classification.shares)
        problems = classification_reconciliation(
            _cycle(classification=broken))
        assert any("counts sum" in problem for problem in problems)


class TestDropCounters:
    @settings(max_examples=60, deadline=None)
    @given(monotone_filter_stats())
    def test_consistent_counters_pass(self, stats):
        funnel = [stats.extracted, stats.after_incomplete,
                  stats.after_intra_as, stats.after_target_as,
                  stats.after_transit_diversity,
                  stats.after_persistence]
        names = ["incomplete", "intra_as", "target_as",
                 "transit_diversity", "persistence"]
        metrics = {"lsps_dropped_total": {"values": [
            {"labels": {"filter": name},
             "value": float(funnel[index] - funnel[index + 1])}
            for index, name in enumerate(names)
        ]}}
        cycle = _cycle(filter_stats=stats, metrics=metrics)
        assert filter_drop_counters(cycle) == []

    @settings(max_examples=60, deadline=None)
    @given(monotone_filter_stats(),
           st.sampled_from(["incomplete", "intra_as", "target_as",
                            "transit_diversity", "persistence"]),
           st.integers(min_value=1, max_value=100))
    def test_skewed_counter_fires(self, stats, victim, skew):
        funnel = [stats.extracted, stats.after_incomplete,
                  stats.after_intra_as, stats.after_target_as,
                  stats.after_transit_diversity,
                  stats.after_persistence]
        names = ["incomplete", "intra_as", "target_as",
                 "transit_diversity", "persistence"]
        metrics = {"lsps_dropped_total": {"values": [
            {"labels": {"filter": name},
             "value": float(funnel[index] - funnel[index + 1]
                            + (skew if name == victim else 0))}
            for index, name in enumerate(names)
        ]}}
        cycle = _cycle(filter_stats=stats, metrics=metrics)
        problems = filter_drop_counters(cycle)
        assert any(victim in problem for problem in problems)
