"""Unit tests for universe construction (config, topology, addressing)."""

import pytest

from repro.bgp.asgraph import Tier
from repro.net.ip import Prefix, int_to_ip, ip_to_int
from repro.sim.config import AsSpec, MplsPolicy, UniverseSpec
from repro.sim.dataplane import DataPlane
from repro.sim.network import (
    Internet,
    destination_prefix,
    infra_block,
    loopback_address,
)
from repro.sim.scenarios import build_universe, paper_scenario


def tiny_universe():
    ases = [
        AsSpec(100, "T1", Tier.TIER1, router_count=8, border_count=3,
               ecmp_breadth=2),
        AsSpec(200, "T2", Tier.TIER1, router_count=8, border_count=3),
        AsSpec(300, "TR", Tier.TRANSIT, router_count=6, border_count=2),
        AsSpec(501, "S1", Tier.STUB, router_count=3, border_count=1,
               prefix_count=2),
        AsSpec(502, "S2", Tier.STUB, router_count=3, border_count=1,
               prefix_count=2),
    ]
    return UniverseSpec(
        ases=ases,
        c2p_edges=[(300, 100), (300, 200), (501, 300), (502, 200)],
        p2p_edges=[(100, 200)],
        monitor_ases=[501],
        seed=7,
    )


class TestConfigValidation:
    def test_policy_fraction_bounds(self):
        with pytest.raises(ValueError):
            MplsPolicy(te_pair_fraction=1.5)
        with pytest.raises(ValueError):
            MplsPolicy(mpls_pair_fraction=-0.1)

    def test_policy_negative_tunnels(self):
        with pytest.raises(ValueError):
            MplsPolicy(te_tunnels_per_pair=-1)

    def test_uses_te(self):
        assert MplsPolicy(enabled=True, te_pair_fraction=0.5,
                          te_tunnels_per_pair=2).uses_te
        assert not MplsPolicy(enabled=True).uses_te
        assert not MplsPolicy(enabled=False, te_pair_fraction=0.5,
                              te_tunnels_per_pair=2).uses_te

    def test_as_spec_bounds(self):
        with pytest.raises(ValueError):
            AsSpec(1, router_count=0)
        with pytest.raises(ValueError):
            AsSpec(1, router_count=4, border_count=5)
        with pytest.raises(ValueError):
            AsSpec(1, ecmp_breadth=0)
        with pytest.raises(ValueError):
            AsSpec(1, parallel_link_fraction=1.5)

    def test_universe_validation(self):
        spec = tiny_universe()
        spec.validate()
        spec.c2p_edges.append((999, 100))
        with pytest.raises(ValueError):
            spec.validate()

    def test_universe_duplicate_asn(self):
        spec = tiny_universe()
        spec.ases.append(AsSpec(100))
        with pytest.raises(ValueError):
            spec.validate()

    def test_spec_of(self):
        spec = tiny_universe()
        assert spec.spec_of(300).name == "TR"
        with pytest.raises(KeyError):
            spec.spec_of(12345)


class TestAddressingPlan:
    def test_blocks_disjoint(self):
        assert infra_block(0).last < infra_block(1).first
        assert destination_prefix(0, 255).last \
            < destination_prefix(1, 0).first

    def test_loopback_inside_infra_block(self):
        assert loopback_address(3, 7) in infra_block(3)

    def test_every_hop_address_resolves(self):
        internet = Internet(tiny_universe())
        for network in internet.networks.values():
            for address in network.topology.interface_addresses():
                asn = internet.ip2as.lookup_single(address)
                assert asn != -1, int_to_ip(address)

    def test_infra_addresses_map_to_owner(self):
        internet = Internet(tiny_universe())
        for network in internet.networks.values():
            if network.spec.foreign_address_fraction:
                continue
            for router in network.topology.routers.values():
                assert internet.ip2as.lookup_single(router.loopback) \
                    == network.asn


class TestInternetConstruction:
    def test_builds_and_validates(self):
        internet = Internet(tiny_universe())
        assert len(internet.networks) == 5
        internet.graph.validate()

    def test_deterministic(self):
        first = Internet(tiny_universe())
        second = Internet(tiny_universe())
        for asn in first.networks:
            links_a = first.networks[asn].topology.links
            links_b = second.networks[asn].topology.links
            assert {(l.router_a, l.router_b, l.addr_a, l.addr_b, l.cost)
                    for l in links_a.values()} == \
                   {(l.router_a, l.router_b, l.addr_a, l.addr_b, l.cost)
                    for l in links_b.values()}

    def test_interas_links_symmetric(self):
        internet = Internet(tiny_universe())
        for asn, network in internet.networks.items():
            for neighbor, links in network.interas.items():
                reverse = internet.networks[neighbor].interas[asn]
                assert len(links) == len(reverse)
                for (_, local_addr, _, _, remote_addr) in links:
                    assert any(r[1] == remote_addr and r[4] == local_addr
                               for r in reverse)

    def test_destination_addresses(self):
        internet = Internet(tiny_universe())
        dests = internet.destination_addresses()
        # 2 prefixes each for 100,200,300(? default 1) ...
        by_asn = {}
        for addr, asn in dests:
            by_asn.setdefault(asn, []).append(addr)
        assert len(by_asn[501]) == 2
        assert len(by_asn[502]) == 2

    def test_egress_towards_is_deterministic(self):
        internet = Internet(tiny_universe())
        prefix = Prefix.parse("50.3.0.0/24")
        first = internet.egress_towards(100, 200, prefix)
        second = internet.egress_towards(100, 200, prefix)
        assert first == second

    def test_egress_towards_unknown_neighbor(self):
        internet = Internet(tiny_universe())
        with pytest.raises(KeyError):
            internet.egress_towards(501, 502, Prefix.parse("50.0.0.0/24"))


class TestMplsLifecycle:
    def test_enable_builds_control_planes(self):
        internet = Internet(tiny_universe())
        network = internet.network(100)
        network.apply_policy(MplsPolicy(enabled=True, ldp=True))
        assert network.ldp is not None
        assert network.ldp.established_fecs

    def test_disable_forgets_labels(self):
        internet = Internet(tiny_universe())
        network = internet.network(100)
        network.apply_policy(MplsPolicy(enabled=True, ldp=True))
        network.apply_policy(MplsPolicy(enabled=False))
        assert network.labels is None
        assert network.ldp is None

    def test_te_sync_grows_and_shrinks(self):
        internet = Internet(tiny_universe())
        network = internet.network(100)
        network.apply_policy(MplsPolicy(
            enabled=True, te_pair_fraction=1.0, te_tunnels_per_pair=2))
        full = len(network.rsvp.sessions)
        assert full == 2 * len(network._te_pair_order)
        network.apply_policy(MplsPolicy(
            enabled=True, te_pair_fraction=0.5, te_tunnels_per_pair=2))
        assert len(network.rsvp.sessions) < full
        network.apply_policy(MplsPolicy(
            enabled=True, te_pair_fraction=0.0, te_tunnels_per_pair=0))
        assert network.rsvp.sessions == []

    def test_te_pair_set_is_monotone(self):
        internet = Internet(tiny_universe())
        network = internet.network(100)
        network.apply_policy(MplsPolicy(
            enabled=True, te_pair_fraction=0.3, te_tunnels_per_pair=1))
        small = set(network._te_active)
        network.apply_policy(MplsPolicy(
            enabled=True, te_pair_fraction=0.8, te_tunnels_per_pair=1))
        assert small <= set(network._te_active)

    def test_ldp_pair_active_monotone(self):
        internet = Internet(tiny_universe())
        network = internet.network(100)
        network.apply_policy(MplsPolicy(enabled=True,
                                        mpls_pair_fraction=0.4))
        active_small = {
            (i, e) for i in range(3) for e in range(3) if i != e
            and network.ldp_pair_active(i, e)
        }
        network.apply_policy(MplsPolicy(enabled=True,
                                        mpls_pair_fraction=0.9))
        active_big = {
            (i, e) for i in range(3) for e in range(3) if i != e
            and network.ldp_pair_active(i, e)
        }
        assert active_small <= active_big

    def test_tick_reoptimizes_dynamic_as(self):
        internet = Internet(tiny_universe())
        network = internet.network(100)
        network.apply_policy(MplsPolicy(
            enabled=True, te_pair_fraction=1.0, te_tunnels_per_pair=1,
            te_reoptimize_per_cycle=True))
        before = {s.fec.instance for s in network.rsvp.sessions}
        network.tick()
        after = {s.fec.instance for s in network.rsvp.sessions}
        assert before == {0}
        assert after == {1}

    def test_churn_advances_allocators(self):
        internet = Internet(tiny_universe())
        network = internet.network(100)
        network.apply_policy(MplsPolicy(enabled=True, ldp=True))
        allocator = network.labels.allocator(0)
        before = allocator.allocated_total
        network.churn_labels(10)
        assert allocator.allocated_total == before + 10


class TestPaperUniverse:
    def test_builds_and_validates(self):
        scenario = paper_scenario(scale=0.4)
        internet = Internet(scenario.universe)
        internet.graph.validate()
        for network in internet.networks.values():
            network.topology.validate()

    def test_foreign_quirk_present(self):
        scenario = paper_scenario(scale=1.0)
        internet = Internet(scenario.universe)
        quirky = internet.network(65103)
        assert quirky.foreign_links
        link = quirky.topology.links[quirky.foreign_links[0]]
        owner = internet.ip2as.lookup_single(link.addr_a)
        assert owner != 65103
        assert owner >= 64512

    def test_scale_shrinks_routers(self):
        big = build_universe(scale=1.0)
        small = build_universe(scale=0.4)
        assert small.spec_of(7018).router_count \
            < big.spec_of(7018).router_count


class TestSegmentCacheCounters:
    """The internet-wide segment cache tallies hits/misses exactly."""

    def test_base_hit_after_miss(self):
        internet = Internet(tiny_universe())
        cache = internet.segment_cache
        network = internet.network(100)
        first = cache.base_segments(network, 0, 7)
        second = cache.base_segments(network, 0, 7)
        assert first is second
        assert (cache.base_misses, cache.base_hits) == (1, 1)

    def test_degraded_entries_keyed_by_flapped_set(self):
        internet = Internet(tiny_universe())
        cache = internet.segment_cache
        network = internet.network(100)
        links = sorted(network.topology.links)
        one = frozenset(links[:1])
        two = frozenset(links[:2])
        # Two eras whose flap draws overlap on the same AS hit the
        # same entry; a different excluded set is its own entry.
        cache.degraded_segments(network, 0, 7, one)
        cache.degraded_segments(network, 0, 7, one)
        cache.degraded_segments(network, 0, 7, two)
        assert cache.degraded_misses == 2
        assert cache.degraded_hits == 1

    def test_dataplanes_of_different_eras_share_the_cache(self):
        internet = Internet(tiny_universe())
        cache = internet.segment_cache
        first_era = DataPlane(internet, era=1)
        second_era = DataPlane(internet, era=2)
        assert first_era._cache is cache
        assert second_era._cache is cache
        network = internet.network(100)
        first_era._segments(network, 0, 7)
        hits_before = cache.base_hits
        second_era._segments(network, 0, 7)
        assert cache.base_hits == hits_before + 1
