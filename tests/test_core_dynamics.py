"""Unit tests for the label-dynamics analysis (Fig 17 machinery)."""

import pytest

from repro.core.dynamics import (
    label_series,
    rank_by_churn,
    step_durations,
    summarize_all,
    summarize_series,
)
from repro.mpls.lse import LabelStackEntry
from repro.net.ip import Prefix, ip_to_int
from repro.net.ip2as import Ip2AsMapper
from repro.traces import StopReason, Trace, TraceHop

ASN = 1273


def mapper():
    m = Ip2AsMapper()
    m.add(Prefix.parse("10.4.0.0/16"), ASN)
    m.add(Prefix.parse("10.9.0.0/16"), 65000)
    return m


def labelled_hop(ttl, address, label):
    return TraceHop(probe_ttl=ttl, address=address, rtt_ms=1.0,
                    quoted_stack=(LabelStackEntry(label, bottom=True,
                                                  ttl=1),))


def probe(timestamp, labels_by_addr):
    hops = [TraceHop(probe_ttl=1, address=ip_to_int("10.9.0.1"),
                     rtt_ms=0.5)]
    for index, (address, label) in enumerate(labels_by_addr.items()):
        hops.append(labelled_hop(index + 2, ip_to_int(address), label))
    return Trace(monitor="strasbourg", src=1, dst=2,
                 timestamp=timestamp, stop_reason=StopReason.COMPLETED,
                 hops=hops)


LSR1 = "10.4.16.1"
LSR2 = "10.4.16.3"


class TestLabelSeries:
    def test_series_extraction(self):
        traces = [
            probe(0.0, {LSR1: 300_000, LSR2: 300_500}),
            probe(120.0, {LSR1: 300_000, LSR2: 301_000}),
        ]
        series = label_series(traces, mapper(), ASN)
        assert series[ip_to_int(LSR1)] == [(0.0, 300_000),
                                           (120.0, 300_000)]
        assert series[ip_to_int(LSR2)] == [(0.0, 300_500),
                                           (120.0, 301_000)]

    def test_foreign_as_hops_excluded(self):
        traces = [probe(0.0, {LSR1: 300_000, "10.9.0.7": 17})]
        series = label_series(traces, mapper(), ASN)
        assert set(series) == {ip_to_int(LSR1)}

    def test_series_sorted_by_time(self):
        traces = [probe(120.0, {LSR1: 2}), probe(0.0, {LSR1: 1})]
        series = label_series(traces, mapper(), ASN)
        assert series[ip_to_int(LSR1)] == [(0.0, 1), (120.0, 2)]


class TestSummaries:
    def test_stable_series(self):
        summary = summarize_series([(0, 5), (1, 5), (2, 5)])
        assert summary.change_points == 0
        assert summary.wraps == 0
        assert summary.distinct_labels == 1
        assert summary.changes_per_sample == 0.0

    def test_sawtooth(self):
        # Climb, wrap, climb: the Fig 17 shape.
        samples = [(0, 100), (1, 200), (2, 300), (3, 50), (4, 150)]
        summary = summarize_series(samples)
        assert summary.change_points == 4
        assert summary.wraps == 1
        assert summary.mean_step == pytest.approx(100.0)
        assert summary.min_label == 50
        assert summary.max_label == 300

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_series([])

    def test_single_sample(self):
        summary = summarize_series([(0, 42)])
        assert summary.samples == 1
        assert summary.changes_per_sample == 0.0

    def test_summarize_all(self):
        series = {1: [(0, 5)], 2: [(0, 9), (1, 10)], 3: []}
        summaries = summarize_all(series)
        assert set(summaries) == {1, 2}

    def test_rank_by_churn_busier_first(self):
        quiet = [(t, 100 + 10 * (t // 5)) for t in range(20)]
        busy = [(t, 100 + 50 * t) for t in range(20)]
        summaries = summarize_all({1: quiet, 2: busy})
        ranked = rank_by_churn(summaries)
        assert [address for address, _ in ranked] == [2, 1]


class TestStepDurations:
    def test_durations(self):
        samples = [(0.0, 1), (10.0, 1), (20.0, 2), (25.0, 2), (45.0, 3)]
        assert step_durations(samples) == [20.0, 25.0]

    def test_no_changes(self):
        assert step_durations([(0.0, 1), (5.0, 1)]) == []

    def test_empty(self):
        assert step_durations([]) == []
