"""Tests for internal-destination LDP and miscellaneous data-plane
behaviours not covered elsewhere."""

import pytest

from repro.sim.config import MplsPolicy
from repro.sim.dataplane import DataPlane
from repro.traces import Trace

from test_sim_dataplane import (
    DST_AS,
    SRC_AS,
    TRANSIT,
    a_destination,
    build,
    path_for,
)


class TestInternalLdp:
    """Cisco's label-everything default: destinations *inside* the MPLS
    AS also ride LSPs (the TargetAS filter's food, §3.1)."""

    def test_internal_destination_rides_lsp(self):
        internet = build(MplsPolicy(enabled=True, ldp=True,
                                    ldp_internal=True),
                         transit_routers=10)
        dst = a_destination(internet, asn=TRANSIT)
        hops = path_for(internet, dst)
        labelled = [hop for hop in hops if hop.labels]
        assert labelled
        assert all(hop.asn == TRANSIT for hop in labelled)

    def test_internal_ldp_off_plain_ip(self):
        internet = build(MplsPolicy(enabled=True, ldp=True,
                                    ldp_internal=False),
                         transit_routers=10)
        dst = a_destination(internet, asn=TRANSIT)
        hops = path_for(internet, dst)
        assert all(not hop.labels for hop in hops)

    def test_transit_traffic_unaffected_by_internal_flag(self):
        with_flag = build(MplsPolicy(enabled=True, ldp=True,
                                     ldp_internal=True))
        without = build(MplsPolicy(enabled=True, ldp=True,
                                   ldp_internal=False))
        dst_a = a_destination(with_flag)
        dst_b = a_destination(without)
        labels_a = [h.labels for h in path_for(with_flag, dst_a)
                    if h.labels]
        labels_b = [h.labels for h in path_for(without, dst_b)
                    if h.labels]
        assert labels_a == labels_b


class TestQttlEvidence:
    def test_explicit_tunnel_hops_carry_climbing_qttl(self):
        internet = build(MplsPolicy(enabled=True, ldp=True),
                         transit_routers=10)
        hops = path_for(internet, a_destination(internet))
        qttls = [hop.quoted_ttl for hop in hops if hop.labels]
        assert qttls
        assert qttls[0] == 2
        assert qttls == sorted(qttls)

    def test_plain_hops_quote_ttl_one(self):
        internet = build()
        hops = path_for(internet, a_destination(internet))
        assert all(hop.quoted_ttl == 1 for hop in hops)

    def test_implicit_tunnel_qttl_without_labels_in_trace(self):
        from repro.sim.monitors import build_monitors
        from repro.sim.traceroute import TracerouteEngine

        internet = build(MplsPolicy(enabled=True, ldp=True),
                         transit_vendor="legacy", transit_routers=10)
        monitor = build_monitors(internet, per_as=1)[0]
        engine = TracerouteEngine(DataPlane(internet), loss_rate=0.0)
        trace = engine.trace(monitor, a_destination(internet))
        assert not trace.has_mpls  # no RFC 4950
        qttl_hops = [hop for hop in trace.hops if hop.quoted_ttl >= 2]
        assert qttl_hops  # but the qTTL signature betrays the tunnel


class TestTraceRendering:
    def test_str_includes_stack_fields(self):
        from repro.sim.monitors import build_monitors
        from repro.sim.traceroute import TracerouteEngine

        internet = build(MplsPolicy(enabled=True, ldp=True))
        monitor = build_monitors(internet, per_as=1)[0]
        engine = TracerouteEngine(DataPlane(internet), loss_rate=0.0)
        trace = engine.trace(monitor, a_destination(internet))
        text = str(trace)
        assert "traceroute from" in text
        assert "[MPLS: Label=" in text
        assert "ms" in text

    def test_str_anonymous_hop(self):
        from repro.traces import StopReason, TraceHop

        trace = Trace(monitor="m", src=1, dst=2, timestamp=0.0,
                      stop_reason=StopReason.GAP_LIMIT,
                      hops=[TraceHop(probe_ttl=1, address=None)])
        assert "*" in str(trace)
