"""Unit tests for the Routeviews-style IP-to-AS mapper."""

import io

import pytest

from repro.net.ip import Prefix, ip_to_int
from repro.net.ip2as import Ip2AsMapper, UNKNOWN_AS


def build_mapper():
    mapper = Ip2AsMapper()
    mapper.add(Prefix.parse("10.0.0.0/8"), 65001)
    mapper.add(Prefix.parse("10.1.0.0/16"), 65002)
    mapper.add(Prefix.parse("192.0.2.0/24"), 65003)
    return mapper


class TestLookup:
    def test_longest_match(self):
        mapper = build_mapper()
        assert mapper.lookup_str("10.1.2.3") == 65002
        assert mapper.lookup_str("10.2.0.1") == 65001
        assert mapper.lookup_str("192.0.2.9") == 65003

    def test_unrouted(self):
        mapper = build_mapper()
        assert mapper.lookup_str("8.8.8.8") is None
        assert mapper.lookup_single(ip_to_int("8.8.8.8")) == UNKNOWN_AS

    def test_moas_merging(self):
        mapper = Ip2AsMapper()
        mapper.add(Prefix.parse("10.0.0.0/8"), 65001)
        mapper.add(Prefix.parse("10.0.0.0/8"), 65005)
        assert mapper.lookup_str("10.0.0.1") == (65001, 65005)
        assert mapper.lookup_single(ip_to_int("10.0.0.1")) == 65001

    def test_moas_duplicate_add_stays_single(self):
        mapper = Ip2AsMapper()
        mapper.add(Prefix.parse("10.0.0.0/8"), 65001)
        mapper.add(Prefix.parse("10.0.0.0/8"), 65001)
        assert mapper.lookup_str("10.0.0.1") == 65001

    def test_moas_tuple_add(self):
        mapper = Ip2AsMapper()
        mapper.add(Prefix.parse("10.0.0.0/8"), (65001, 65002))
        assert mapper.lookup_str("10.0.0.1") == (65001, 65002)


class TestCodec:
    def test_round_trip(self):
        mapper = build_mapper()
        mapper.add(Prefix.parse("198.51.100.0/24"), (65010, 65011))
        buffer = io.StringIO()
        mapper.dump(buffer)
        buffer.seek(0)
        loaded = Ip2AsMapper.load(buffer)
        assert dict(loaded.items()) == dict(mapper.items())

    def test_load_skips_comments_and_blanks(self):
        text = "# comment\n\n10.0.0.0\t8\t65001\n"
        loaded = Ip2AsMapper.load(io.StringIO(text))
        assert loaded.lookup_str("10.0.0.1") == 65001

    def test_load_parses_moas_underscore(self):
        loaded = Ip2AsMapper.load(io.StringIO("10.0.0.0\t8\t65001_65002\n"))
        assert loaded.lookup_str("10.0.0.1") == (65001, 65002)

    def test_load_rejects_bad_field_count(self):
        with pytest.raises(ValueError, match="line 1"):
            Ip2AsMapper.load(io.StringIO("10.0.0.0 8\n"))

    def test_from_pairs(self):
        mapper = Ip2AsMapper.from_pairs([
            (Prefix.parse("10.0.0.0/8"), 65001),
        ])
        assert len(mapper) == 1


class TestLookupMany:
    def test_matches_lookup_single(self):
        mapper = build_mapper()
        addresses = [ip_to_int("10.1.2.3"), ip_to_int("10.2.0.1"),
                     ip_to_int("8.8.8.8"), ip_to_int("192.0.2.9"),
                     ip_to_int("10.1.2.3")]
        assert mapper.lookup_many(addresses) == \
            [mapper.lookup_single(a) for a in addresses]

    def test_empty_batch(self):
        assert build_mapper().lookup_many([]) == []

    def test_block_memo_counts_hits_and_misses(self):
        from repro.net.ip2as import _LOOKUP_HITS, _LOOKUP_MISSES
        mapper = build_mapper()
        block = [ip_to_int("10.1.2.1") + i for i in range(10)]
        hits = _LOOKUP_HITS.value()
        misses = _LOOKUP_MISSES.value()
        mapper.lookup_many(block)
        # Ten addresses in one /24: one radix walk, nine memo hits.
        assert _LOOKUP_MISSES.value() - misses == 1
        assert _LOOKUP_HITS.value() - hits == 9

    def test_fine_prefixes_disable_the_block_memo(self):
        # A /32 inside a /24 must not be flattened to its block's
        # answer: with prefixes longer than /24 in the table the memo
        # degrades to exact-address keys.
        mapper = build_mapper()
        mapper.add(Prefix.parse("10.1.2.3/32"), 65009)
        assert mapper.lookup_many(
            [ip_to_int("10.1.2.3"), ip_to_int("10.1.2.4")]
        ) == [65009, 65002]
