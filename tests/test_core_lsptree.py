"""Tests for the LSP-tree (egress-rooted) analysis — §5 future work."""

import pytest

from repro.core.lsptree import (
    LspTree,
    TreeClass,
    analyze_trees,
    classify_tree,
    group_into_trees,
)
from repro.core.model import Lsp

ASN = 65001
EXIT = 9000


def lsp(entry, hops, dst=1):
    return Lsp(entry=entry, exit=EXIT, hops=tuple(hops), complete=True,
               monitor="m", dst=dst, asn=ASN)


class TestGrouping:
    def test_branches_from_different_ingresses_merge(self):
        """The whole point of the tree view: IOTPs keyed on (entry,
        exit) keep these LSPs apart, the tree joins them."""
        first = lsp(100, [(10, 500), (30, 300)])
        second = lsp(200, [(20, 600), (30, 300)])
        trees = group_into_trees([(first, 1), (second, 2)])
        assert len(trees) == 1
        tree = trees[(ASN, EXIT)]
        assert tree.branch_count == 2
        assert tree.ingress_count == 2
        assert tree.dst_asns == {1, 2}

    def test_unmapped_rejected(self):
        bad = Lsp(entry=1, exit=None, hops=((10, 1),), complete=False,
                  monitor="m", dst=1, asn=ASN)
        with pytest.raises(ValueError):
            group_into_trees([(bad, 1)])

    def test_distinct_egresses_distinct_trees(self):
        first = lsp(100, [(10, 500)])
        second = Lsp(entry=100, exit=EXIT + 1, hops=((10, 500),),
                     complete=True, monitor="m", dst=2, asn=ASN)
        trees = group_into_trees([(first, 1), (second, 2)])
        assert len(trees) == 2


class TestTreeClassification:
    def test_single_branch(self):
        trees = group_into_trees([(lsp(100, [(10, 500)]), 1)])
        assert classify_tree(trees[(ASN, EXIT)]) \
            is TreeClass.SINGLE_BRANCH

    def test_consistent_ldp_tree(self):
        """Branches from two ingresses share the convergence LSR's
        label: the LDP LSP-tree signature."""
        first = lsp(100, [(10, 500), (30, 300)])
        second = lsp(200, [(20, 600), (30, 300)])
        trees = group_into_trees([(first, 1), (second, 2)])
        assert classify_tree(trees[(ASN, EXIT)]) is TreeClass.CONSISTENT

    def test_inconsistent_te_tree(self):
        first = lsp(100, [(10, 500), (30, 300)])
        second = lsp(200, [(20, 600), (30, 301)])
        trees = group_into_trees([(first, 1), (second, 2)])
        assert classify_tree(trees[(ASN, EXIT)]) \
            is TreeClass.INCONSISTENT

    def test_disjoint_tree(self):
        first = lsp(100, [(10, 500)])
        second = lsp(200, [(20, 600)])
        trees = group_into_trees([(first, 1), (second, 2)])
        assert classify_tree(trees[(ASN, EXIT)]) is TreeClass.DISJOINT


class TestReport:
    def test_analyze_counts(self):
        consistent = [
            (lsp(100, [(10, 500), (30, 300)]), 1),
            (lsp(200, [(20, 600), (30, 300)]), 2),
        ]
        lone = [(Lsp(entry=1, exit=EXIT + 5, hops=((40, 700),),
                     complete=True, monitor="m", dst=3, asn=ASN), 3)]
        report = analyze_trees(group_into_trees(consistent + lone))
        assert report.tree_count == 2
        assert report.counts[TreeClass.CONSISTENT] == 1
        assert report.counts[TreeClass.SINGLE_BRANCH] == 1
        assert report.share(TreeClass.CONSISTENT) == 0.5
        assert report.classified_lsps == 2

    def test_empty_report(self):
        report = analyze_trees({})
        assert report.tree_count == 0
        assert report.share(TreeClass.CONSISTENT) == 0.0


class TestOnSimulatedData:
    @pytest.fixture(scope="class")
    def filtered(self):
        from repro.core import LprPipeline
        from repro.core.extraction import extract_all
        from repro.core.filters import drop_incomplete, intra_as, \
            target_as
        from repro.sim import ArkSimulator, paper_scenario

        simulator = ArkSimulator(paper_scenario(scale=0.7, seed=21))
        data = simulator.run_cycle(40)
        ip2as = simulator.internet.ip2as
        lsps = target_as(
            intra_as(drop_incomplete(extract_all(data.traces)), ip2as),
            ip2as)
        return ip2as, lsps

    def test_trees_classify_more_lsps_than_iotps(self, filtered):
        """§5's motivation: indexing by egress only lets LPR reason
        about strictly more of the collected LSPs."""
        from repro.core.model import group_into_iotps

        ip2as, lsps = filtered
        pairs = [(lsp, ip2as.lookup_single(lsp.dst)) for lsp in lsps]
        trees = group_into_trees(pairs)
        iotps = group_into_iotps(pairs)
        assert len(trees) <= len(iotps)
        multi_branch_tree_lsps = sum(
            t.branch_count for t in trees.values()
            if t.branch_count >= 2)
        multi_branch_iotp_lsps = sum(
            i.width for i in iotps.values() if i.width >= 2)
        assert multi_branch_tree_lsps >= multi_branch_iotp_lsps

    def test_ldp_heavy_as_trees_mostly_consistent(self, filtered):
        """Trees in the LDP-dominated Tata must be mostly consistent
        (its 4% RSVP-TE share allows the odd inconsistent one)."""
        from repro.sim.scenarios import TATA

        ip2as, lsps = filtered
        pairs = [(lsp, ip2as.lookup_single(lsp.dst))
                 for lsp in lsps if lsp.asn == TATA]
        trees = group_into_trees(pairs)
        report = analyze_trees(trees)
        assert report.tree_count > 0
        assert report.mean_ingresses >= 1.0
        assert report.counts[TreeClass.CONSISTENT] \
            > report.counts[TreeClass.INCONSISTENT]
