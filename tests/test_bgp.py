"""Unit tests for the AS graph and valley-free routing."""

import pytest

from repro.bgp.asgraph import AsGraph, AsGraphError, AsNode, Relationship, \
    Tier
from repro.bgp.routing import BgpRouting


def small_internet():
    """Two tier-1s, two transits, three stubs.

            T1a ===== T1b          (=== peering)
           /    \\       \\
        TRa      TRb      S3       (/ \\ provider->customer)
        /  \\       \\
      S1    S2       S2 (multihomed)
    """
    graph = AsGraph()
    graph.add_as(AsNode(100, "T1a", Tier.TIER1))
    graph.add_as(AsNode(200, "T1b", Tier.TIER1))
    graph.add_as(AsNode(300, "TRa", Tier.TRANSIT))
    graph.add_as(AsNode(400, "TRb", Tier.TRANSIT))
    graph.add_as(AsNode(501, "S1", Tier.STUB))
    graph.add_as(AsNode(502, "S2", Tier.STUB))
    graph.add_as(AsNode(503, "S3", Tier.STUB))
    graph.add_p2p(100, 200)
    graph.add_c2p(300, 100)
    graph.add_c2p(400, 100)
    graph.add_c2p(400, 200)
    graph.add_c2p(503, 200)
    graph.add_c2p(501, 300)
    graph.add_c2p(502, 300)
    graph.add_c2p(502, 400)
    return graph


class TestAsGraph:
    def test_duplicate_asn_rejected(self):
        graph = AsGraph()
        graph.add_as(AsNode(1))
        with pytest.raises(AsGraphError):
            graph.add_as(AsNode(1))

    def test_edges_need_known_ases(self):
        graph = AsGraph()
        graph.add_as(AsNode(1))
        with pytest.raises(AsGraphError):
            graph.add_c2p(1, 2)
        with pytest.raises(AsGraphError):
            graph.add_p2p(1, 2)

    def test_self_edges_rejected(self):
        graph = AsGraph()
        graph.add_as(AsNode(1))
        with pytest.raises(AsGraphError):
            graph.add_c2p(1, 1)

    def test_relationships_are_symmetric_views(self):
        graph = small_internet()
        assert graph.relationship(300, 100) is Relationship.PROVIDER
        assert graph.relationship(100, 300) is Relationship.CUSTOMER
        assert graph.relationship(100, 200) is Relationship.PEER
        assert graph.relationship(501, 502) is None

    def test_customers_providers_peers(self):
        graph = small_internet()
        assert graph.customers(300) == [501, 502]
        assert graph.providers(502) == [300, 400]
        assert graph.peers(100) == [200]

    def test_customer_cone(self):
        graph = small_internet()
        assert graph.customer_cone(300) == {300, 501, 502}
        assert graph.customer_cone(100) == {100, 300, 400, 501, 502}
        assert graph.customer_cone(501) == {501}

    def test_validate_ok(self):
        small_internet().validate()

    def test_validate_rejects_no_tier1(self):
        graph = AsGraph()
        graph.add_as(AsNode(1, tier=Tier.STUB))
        with pytest.raises(AsGraphError):
            graph.validate()

    def test_validate_rejects_tier1_with_provider(self):
        graph = AsGraph()
        graph.add_as(AsNode(1, tier=Tier.TIER1))
        graph.add_as(AsNode(2, tier=Tier.TIER1))
        graph.add_c2p(1, 2)
        with pytest.raises(AsGraphError):
            graph.validate()

    def test_validate_rejects_orphan(self):
        graph = small_internet()
        graph.add_as(AsNode(999, tier=Tier.STUB))
        with pytest.raises(AsGraphError):
            graph.validate()

    def test_default_name(self):
        assert AsNode(42).name == "AS42"


class TestValleyFreeRouting:
    def test_self_path(self):
        routing = BgpRouting(small_internet())
        assert routing.as_path(501, 501) == [501]

    def test_customer_route_up(self):
        routing = BgpRouting(small_internet())
        # 300 reaches its customer 501 directly.
        assert routing.as_path(300, 501) == [300, 501]

    def test_stub_to_stub_same_transit(self):
        routing = BgpRouting(small_internet())
        assert routing.as_path(501, 502) == [501, 300, 502]

    def test_path_across_peering(self):
        routing = BgpRouting(small_internet())
        # 501 -> 300 -> 100 ~ 200 -> 503 (up, peer, down).
        assert routing.as_path(501, 503) == [501, 300, 100, 200, 503]

    def test_customer_preferred_over_peer(self):
        """100 must reach 502 via customer 300/400, never via peer 200."""
        routing = BgpRouting(small_internet())
        path = routing.as_path(100, 502)
        assert path is not None
        assert path[1] in (300, 400)

    def test_multihomed_stub_prefers_shorter(self):
        routing = BgpRouting(small_internet())
        # From 503: 503 -> 200 -> 400 -> 502 (provider, then customers).
        assert routing.as_path(503, 502) == [503, 200, 400, 502]

    def test_valley_free_no_transit_through_stub(self):
        """501 and 502 share provider 300; 502's other provider 400 must
        not route to 501 through its customer 502 (a valley)."""
        routing = BgpRouting(small_internet())
        path = routing.as_path(400, 501)
        assert path is not None
        assert 502 not in path

    def test_all_pairs_reachable(self):
        graph = small_internet()
        routing = BgpRouting(graph)
        for src in graph.nodes:
            for dst in graph.nodes:
                assert routing.reachable(src, dst), (src, dst)

    def test_paths_are_valley_free(self):
        graph = small_internet()
        routing = BgpRouting(graph)
        for src in graph.nodes:
            for dst in graph.nodes:
                if src == dst:
                    continue
                path = routing.as_path(src, dst)
                phases = [graph.relationship(path[i], path[i + 1])
                          for i in range(len(path) - 1)]
                # Once we go across (peer) or down (customer), we must
                # never go up (provider) again; at most one peer step.
                descended = False
                peer_steps = 0
                for rel in phases:
                    if rel is Relationship.PROVIDER:
                        assert not descended, (path, phases)
                    elif rel is Relationship.PEER:
                        peer_steps += 1
                        descended = True
                    else:
                        descended = True
                assert peer_steps <= 1, (path, phases)

    def test_next_as(self):
        routing = BgpRouting(small_internet())
        assert routing.next_as(501, 503) == 300
        assert routing.next_as(503, 503) is None

    def test_unknown_destination_raises(self):
        routing = BgpRouting(small_internet())
        with pytest.raises(KeyError):
            routing.table_for(31337)

    def test_invalidate_recomputes(self):
        graph = small_internet()
        routing = BgpRouting(graph)
        assert routing.as_path(501, 503) is not None
        graph.add_as(AsNode(600, tier=Tier.STUB))
        graph.add_c2p(600, 300)
        routing.invalidate()
        assert routing.as_path(600, 503) == [600, 300, 100, 200, 503]

    def test_tie_break_is_deterministic(self):
        """502 is multihomed to 300 and 400 with equal path length to 100;
        the hashed tie-break must pick one and always the same one."""
        first = BgpRouting(small_internet()).as_path(502, 100)
        second = BgpRouting(small_internet()).as_path(502, 100)
        assert first in ([502, 300, 100], [502, 400, 100])
        assert first == second

    def test_tie_break_spreads_destinations(self):
        """Different destinations should not all funnel through the same
        equally-good next hop (the hash depends on the destination)."""
        graph = small_internet()
        # Give 100 many customers so 502 sees many equal-length choices.
        for asn in range(900, 930):
            graph.add_as(AsNode(asn, tier=Tier.STUB))
            graph.add_c2p(asn, 100)
        routing = BgpRouting(graph)
        next_hops = {routing.next_as(502, dst) for dst in range(900, 930)}
        assert next_hops == {300, 400}
