"""Unit tests for label allocation and the LFIB."""

import pytest

from repro.mpls.fec import PrefixFec, TunnelFec
from repro.mpls.lfib import (
    LabelAllocator,
    LabelAllocatorError,
    LabelManager,
    Lfib,
    LfibAction,
    LfibEntry,
)
from repro.mpls.vendor import CISCO, JUNIPER, VendorProfile, \
    LdpAllocationPolicy
from repro.net.ip import Prefix


def tiny_profile(span=4):
    return VendorProfile(
        name="tiny",
        label_min=100,
        label_max=100 + span - 1,
        ldp_policy=LdpAllocationPolicy.ALL_PREFIXES,
        php_default=True,
        ttl_propagate_default=True,
        rfc4950=True,
        reoptimize_interval=0,
    )


class TestLabelAllocator:
    def test_sequential_from_vendor_min(self):
        allocator = LabelAllocator(CISCO)
        assert allocator.allocate() == CISCO.label_min
        assert allocator.allocate() == CISCO.label_min + 1

    def test_juniper_range(self):
        allocator = LabelAllocator(JUNIPER)
        assert allocator.allocate() == 300_000

    def test_wrap_around(self):
        allocator = LabelAllocator(tiny_profile(span=4))
        first = [allocator.allocate() for _ in range(4)]
        assert first == [100, 101, 102, 103]
        for label in first:
            allocator.release(label)
        # Counter continues past the max and wraps to the minimum.
        assert allocator.allocate() == 100

    def test_skips_labels_in_use(self):
        allocator = LabelAllocator(tiny_profile(span=4))
        labels = [allocator.allocate() for _ in range(4)]
        allocator.release(101)
        assert allocator.allocate() == 101

    def test_exhaustion_raises(self):
        allocator = LabelAllocator(tiny_profile(span=2))
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(LabelAllocatorError):
            allocator.allocate()

    def test_counters(self):
        allocator = LabelAllocator(tiny_profile(span=4))
        allocator.allocate()
        label = allocator.allocate()
        allocator.release(label)
        assert allocator.in_use == 1
        assert allocator.allocated_total == 2


class TestLfib:
    def test_bind_and_lookup(self):
        lfib = Lfib(router_id=1)
        fec = PrefixFec(Prefix.parse("10.0.0.1/32"))
        lfib.bind(fec, 500)
        assert lfib.label_for(fec) == 500
        assert lfib.choices(500) == []

    def test_add_entry_and_choices(self):
        lfib = Lfib(router_id=1)
        entry = LfibEntry(LfibAction.SWAP, out_label=7, next_hop=2,
                          link_id=0)
        lfib.add_entry(500, entry)
        assert lfib.choices(500) == [entry]

    def test_unbind(self):
        lfib = Lfib(router_id=1)
        fec = TunnelFec(1, 2, 0)
        lfib.bind(fec, 42)
        assert lfib.unbind(fec) == 42
        assert lfib.label_for(fec) is None
        assert lfib.unbind(fec) is None

    def test_missing_label_has_no_choices(self):
        assert Lfib(router_id=1).choices(999) == []


class TestLabelManager:
    def test_allocate_for_is_idempotent(self):
        manager = LabelManager({0: "cisco"})
        fec = PrefixFec(Prefix.parse("10.0.0.1/32"))
        first = manager.allocate_for(0, fec)
        second = manager.allocate_for(0, fec)
        assert first == second
        assert manager.allocator(0).in_use == 1

    def test_independent_routers(self):
        manager = LabelManager({0: "cisco", 1: "juniper"},
                               desynchronize=False)
        fec = PrefixFec(Prefix.parse("10.0.0.1/32"))
        assert manager.allocate_for(0, fec) == CISCO.label_min
        assert manager.allocate_for(1, fec) == JUNIPER.label_min

    def test_desynchronized_routers_start_apart(self):
        manager = LabelManager({0: "cisco", 1: "cisco", 2: "cisco"})
        fec = PrefixFec(Prefix.parse("10.0.0.1/32"))
        labels = {manager.allocate_for(r, fec) for r in (0, 1, 2)}
        assert len(labels) == 3  # distinct routers, distinct labels

    def test_desynchronized_is_deterministic(self):
        first = LabelManager({0: "cisco"})
        second = LabelManager({0: "cisco"})
        fec = PrefixFec(Prefix.parse("10.0.0.1/32"))
        assert first.allocate_for(0, fec) == second.allocate_for(0, fec)

    def test_labels_stay_in_vendor_range(self):
        manager = LabelManager({r: "juniper" for r in range(20)})
        fec = PrefixFec(Prefix.parse("10.0.0.1/32"))
        for router in range(20):
            label = manager.allocate_for(router, fec)
            assert JUNIPER.label_min <= label <= JUNIPER.label_max

    def test_release_for(self):
        manager = LabelManager({0: "cisco"})
        fec = PrefixFec(Prefix.parse("10.0.0.1/32"))
        manager.allocate_for(0, fec)
        manager.release_for(0, fec)
        assert manager.allocator(0).in_use == 0
        assert manager.lfib(0).label_for(fec) is None
