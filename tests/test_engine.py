"""Columnar engine tests (DESIGN §12).

Three layers of defence around the byte-identity contract:

* unit tests for the interner (dense first-seen ids, round-trip) and
  the CSR encoder's edge cases (empty cycle, single-hop trace,
  anonymous hops, opaque vs explicit stacks);
* a hypothesis property: random trace batches — anonymous holes,
  opaque hops, label churn across follow-up snapshots — must produce
  identical ``FilterStats``, IOTP keys, verdicts and dynamic-AS tags
  through both engines;
* the oracle drill: a fault injected into the columnar kernel only
  (a skewed persistence threshold) must be *caught* by the
  differential matrix and *shrunk* to a <= 2-cycle reproduction.
"""

from unittest import mock

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import ENGINES, LprPipeline
from repro.engine import Interner, NO_VALUE, encode_snapshot
from repro.engine import kernels
from repro.mpls.lse import LabelStackEntry
from repro.net.ip import Prefix
from repro.net.ip2as import Ip2AsMapper
from repro.par import StudySpec
from repro.traces import StopReason, Trace, TraceHop
from repro.verify.differential import (
    canonical_cycle,
    default_matrix,
    run_matrix,
)


def make_trace(hops, monitor="m1", dst=0x0A01FF01):
    return Trace(monitor=monitor, src=1, dst=dst, timestamp=0.0,
                 stop_reason=StopReason.COMPLETED, hops=list(hops))


def plain(ttl, address):
    return TraceHop(probe_ttl=ttl, address=address, rtt_ms=1.0)


def anonymous(ttl):
    return TraceHop(probe_ttl=ttl, address=None)


def labeled(ttl, address, label, lse_ttl=1):
    stack = (LabelStackEntry(label, bottom=True, ttl=lse_ttl),)
    return TraceHop(probe_ttl=ttl, address=address, rtt_ms=1.0,
                    quoted_stack=stack)


class TestInterner:
    def test_ids_are_dense_first_seen(self):
        interner = Interner()
        assert interner.address_id(0x0A000001) == 0
        assert interner.address_id(0x0A000002) == 1
        assert interner.address_id(0x0A000001) == 0
        assert interner.monitor_id("ams") == 0
        assert interner.monitor_id("sjc") == 1
        assert interner.monitor_id("ams") == 0

    def test_round_trip_through_value_tables(self):
        interner = Interner()
        run = ((interner.address_id(7), 100),
               (interner.address_id(8), 200))
        rid = interner.run_id(run)
        sid = interner.signature_id(0, 1, rid)
        assert interner.run_values[rid] == run
        assert interner.signature_values[sid] == (0, 1, rid)
        assert interner.address_values[0] == 7
        assert interner.run_id(run) == rid
        assert interner.signature_id(0, 1, rid) == sid

    def test_distinct_signatures_get_distinct_ids(self):
        interner = Interner()
        rid = interner.run_id(((0, 100),))
        assert interner.signature_id(1, 2, rid) != \
            interner.signature_id(1, 3, rid)


class TestEncoder:
    def test_empty_cycle(self):
        encoded = encode_snapshot([], Interner())
        assert encoded.trace_count == 0
        assert encoded.offsets == [0]
        assert encoded.hop_count == 0
        assert encoded.monitors == []
        assert encoded.dsts == []

    def test_single_hop_trace(self):
        encoded = encode_snapshot([make_trace([plain(1, 42)])],
                                  Interner())
        assert encoded.trace_count == 1
        assert encoded.offsets == [0, 1]
        assert list(encoded.hop_address) == [encoded.interner
                                             .address_id(42)]
        assert bytes(encoded.hop_labeled) == b"\x00"
        assert bytes(encoded.hop_explicit) == b"\x00"

    def test_anonymous_hop_is_no_value(self):
        encoded = encode_snapshot(
            [make_trace([plain(1, 42), anonymous(2), plain(3, 43)])],
            Interner())
        assert encoded.hop_address[1] == NO_VALUE

    def test_opaque_stack_is_labeled_but_not_explicit(self):
        encoded = encode_snapshot(
            [make_trace([labeled(1, 42, 300, lse_ttl=255),
                         labeled(2, 43, 301, lse_ttl=2)])],
            Interner())
        assert bytes(encoded.hop_labeled) == b"\x01\x01"
        assert bytes(encoded.hop_explicit) == b"\x00\x01"
        assert encoded.hop_label == [300, 301]

    def test_offsets_partition_the_hop_rows(self):
        traces = [make_trace([plain(1, 1)]),
                  make_trace([plain(1, 2), plain(2, 3)]),
                  make_trace([])]
        encoded = encode_snapshot(traces, Interner())
        assert encoded.offsets == [0, 1, 3, 3]
        assert encoded.hop_count == 3

    def test_follow_up_shares_the_interner(self):
        interner = Interner()
        first = encode_snapshot([make_trace([plain(1, 42)])], interner)
        second = encode_snapshot([make_trace([plain(1, 42)])], interner)
        assert list(first.hop_address) == list(second.hop_address)
        assert len(interner.address_values) >= 1


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            LprPipeline(Ip2AsMapper(), engine="vectorized")

    def test_engines_constant_lists_both(self):
        assert ENGINES == ("object", "columnar")

    def test_spec_carries_engine(self):
        assert StudySpec(scale=0.1, seed=1, cycles=1).engine == "object"
        spec = StudySpec(scale=0.1, seed=1, cycles=1,
                         engine="columnar")
        assert spec.engine == "columnar"


# -- property: random batches through both engines ----------------------------

# Three routed /16 blocks plus deliberately unrouted space, so the
# TargetAS / IntraAS filters exercise their UNKNOWN_AS branches.
_BLOCKS = (0x0A010000, 0x0A020000, 0x0A030000)
_UNROUTED = 0x0B000000


def _mapper():
    return Ip2AsMapper.from_pairs(
        (Prefix(block, 16), 65001 + index)
        for index, block in enumerate(_BLOCKS))


@st.composite
def addresses(draw):
    block = draw(st.sampled_from(_BLOCKS + (_UNROUTED,)))
    return block + draw(st.integers(min_value=1, max_value=24))


@st.composite
def hops(draw, ttl):
    kind = draw(st.sampled_from(
        ("plain", "plain", "anonymous", "explicit", "explicit",
         "opaque")))
    if kind == "anonymous":
        return anonymous(ttl)
    address = draw(addresses())
    if kind == "plain":
        return plain(ttl, address)
    label = draw(st.integers(min_value=100, max_value=103))
    lse_ttl = 255 if kind == "opaque" else draw(
        st.integers(min_value=1, max_value=2))
    return labeled(ttl, address, label, lse_ttl=lse_ttl)


@st.composite
def traces(draw):
    length = draw(st.integers(min_value=1, max_value=8))
    return make_trace([draw(hops(ttl)) for ttl in range(1, length + 1)],
                      monitor=draw(st.sampled_from(("m1", "m2"))),
                      dst=draw(addresses()))


@st.composite
def cycles(draw):
    snapshot_count = draw(st.integers(min_value=1, max_value=3))
    return [draw(st.lists(traces(), min_size=0, max_size=6))
            for _ in range(snapshot_count)]


class TestEngineEquivalenceProperty:
    @settings(max_examples=80, deadline=None)
    @given(cycles(), st.booleans())
    def test_engines_agree_on_random_batches(self, snapshots, php):
        mapper = _mapper()
        results = {}
        for engine in ENGINES:
            pipeline = LprPipeline(mapper, persistence_window=2,
                                   php_heuristic=php, engine=engine)
            results[engine] = pipeline.process_snapshots(1, snapshots)
        reference, candidate = results["object"], results["columnar"]

        assert reference.stats == candidate.stats
        assert reference.filter_stats == candidate.filter_stats
        assert set(reference.iotps) == set(candidate.iotps)
        for key, iotp in reference.iotps.items():
            other = candidate.iotps[key]
            assert iotp.lsps == other.lsps
            assert iotp.dst_asns == other.dst_asns
            assert iotp.dynamic == other.dynamic
        assert reference.classification.verdicts == \
            candidate.classification.verdicts
        assert {v.key: v.dynamic
                for v in reference.classification.verdicts.values()} \
            == {v.key: v.dynamic
                for v in candidate.classification.verdicts.values()}
        assert canonical_cycle(reference) == canonical_cycle(candidate)


# -- the oracle drill: an injected kernel fault must be caught ----------------

class TestInjectedKernelFault:
    """A columnar-only persistence skew diverges, is caught, and
    shrinks to at most two cycles (the acceptance drill for DESIGN
    §11 + §12: the oracle guards the kernels, the shrinker makes the
    failure debuggable)."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        spec = StudySpec(scale=0.2, seed=7, cycles=3,
                         snapshots_per_cycle=2)
        configs = [config for config in default_matrix()
                   if config.name == "columnar"]
        original = kernels.analyze_snapshots

        def skewed(cycle, snapshots, ip2as, *, persistence_window,
                   reinject_threshold, php_heuristic):
            return original(cycle, snapshots, ip2as,
                            persistence_window=persistence_window,
                            reinject_threshold=1.1,
                            php_heuristic=php_heuristic)

        with mock.patch.object(kernels, "analyze_snapshots", skewed):
            return run_matrix(
                spec, configs,
                workdir=tmp_path_factory.mktemp("kernel-fault"),
                shrink=True)

    def test_divergence_detected(self, report):
        assert not report.clean
        assert len(report.divergences) == 1
        assert report.divergences[0].config == "columnar"

    def test_shrunk_to_at_most_two_cycles(self, report):
        outcome = report.outcomes[0]
        assert outcome.minimal_spec is not None
        assert outcome.minimal_spec.cycles <= 2
        assert outcome.command is not None
        assert "--configs columnar" in outcome.command


class TestColumnarMatrixConfigs:
    def test_columnar_configs_match_reference(self, tmp_path):
        spec = StudySpec(scale=0.2, seed=7, cycles=2,
                         snapshots_per_cycle=2)
        configs = [config for config in default_matrix(workers=2)
                   if config.name in ("columnar", "columnar+workers")]
        report = run_matrix(spec, configs, workdir=tmp_path,
                            shrink=False)
        assert report.clean, report.render()
