"""Tests for the live telemetry plane (DESIGN §13).

Covers the pure parts with unit tests — endpoint parsing, the health
monitor, the stall watchdog, resource sampling/folding, the transport-
free ``TelemetryServer.respond`` router — plus hypothesis properties
for heartbeat robustness (shuffled/duplicated beats must keep the
progress tracker monotone and the resource gauges order-independent),
one real-socket scrape, and the end-to-end watchdog drill: a worker
hung via the §8 fault hooks must flip ``/healthz`` to 503, emit
``shard.stalled`` then ``shard.recovered``, and the whole monitored run
must stay byte-identical to a bare serial one.
"""

import json
import pickle
import threading
import time
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    EventBus,
    FakeClock,
    HealthMonitor,
    MetricsRegistry,
    ProgressTracker,
    StallWatchdog,
    TelemetryServer,
    absorb_resources,
    get_event_bus,
    parse_endpoint,
    sample_resources,
    set_event_bus,
)
from repro.obs.live import JSON_CONTENT_TYPE
from repro.obs.resources import CPU_GAUGE, GC_GAUGE, RSS_GAUGE
from repro.par import StudySpec
from repro.par.faults import HANG, FaultPlan, ShardFault
from repro.par.runner import run_study


class TestParseEndpoint:
    def test_bare_port_binds_loopback(self):
        assert parse_endpoint("9090") == ("127.0.0.1", 9090)

    def test_host_and_port(self):
        assert parse_endpoint("0.0.0.0:9464") == ("0.0.0.0", 9464)

    def test_port_zero_is_ephemeral(self):
        assert parse_endpoint("127.0.0.1:0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("text", ["", "host:", "host:abc",
                                      "notaport", "1.2.3.4:-1",
                                      "1.2.3.4:70000"])
    def test_bad_endpoints_raise(self, text):
        with pytest.raises(ValueError):
            parse_endpoint(text)


class TestHealthMonitor:
    def test_healthy_by_default_without_timeout(self):
        health = HealthMonitor(clock=FakeClock())
        assert health.healthy
        assert health.status()["status"] == "ok"

    def test_stall_and_clear(self):
        health = HealthMonitor(clock=FakeClock())
        health.stall(3)
        assert not health.healthy
        assert health.status()["stalled_shards"] == ["3"]
        health.clear(3)
        assert health.healthy

    def test_staleness_against_timeout(self):
        clock = FakeClock()
        health = HealthMonitor(stall_timeout=10.0, clock=clock)
        assert health.healthy
        clock.advance(11.0)
        assert not health.healthy  # no beat for > timeout
        health.beat()
        assert health.healthy

    def test_finish_freezes_healthy(self):
        clock = FakeClock()
        health = HealthMonitor(stall_timeout=1.0, clock=clock)
        health.stall(0)
        health.finish()
        clock.advance(1000.0)
        assert health.healthy  # done runs are not "stale"
        assert health.status()["finished"] is True

    def test_status_counts_beats(self):
        health = HealthMonitor(clock=FakeClock())
        health.beat()
        health.beat()
        assert health.status()["beats"] == 2

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            HealthMonitor(stall_timeout=0)


class TestStallWatchdog:
    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            StallWatchdog(0)

    def test_queued_shard_never_stalls(self):
        clock = FakeClock()
        watchdog = StallWatchdog(1.0, clock=clock)
        watchdog.watch(0)  # registered but never beat: still queued
        clock.advance(100.0)
        assert watchdog.check() == []

    def test_deadline_arms_at_first_beat(self):
        clock = FakeClock()
        watchdog = StallWatchdog(1.0, clock=clock)
        watchdog.watch(0)
        watchdog.beat(0)
        clock.advance(0.5)
        assert watchdog.check() == []
        clock.advance(1.0)
        assert watchdog.check() == [0]
        assert watchdog.stalled == {0}
        assert watchdog.check() == []  # reported once, not repeatedly

    def test_late_beat_recovers(self):
        clock = FakeClock()
        watchdog = StallWatchdog(1.0, clock=clock)
        watchdog.watch(0)
        watchdog.beat(0)
        clock.advance(2.0)
        assert watchdog.check() == [0]
        assert watchdog.beat(0) is True  # recovery signalled once
        assert watchdog.stalled == frozenset()
        assert watchdog.beat(0) is False

    def test_clear_reports_whether_flagged(self):
        clock = FakeClock()
        watchdog = StallWatchdog(1.0, clock=clock)
        watchdog.watch(0)
        watchdog.watch(1)
        watchdog.beat(0)
        clock.advance(2.0)
        watchdog.check()
        assert watchdog.clear(0) is True
        assert watchdog.clear(1) is False
        clock.advance(10.0)
        assert watchdog.check() == []  # cleared shards are forgotten

    def test_unwatched_beat_is_ignored(self):
        watchdog = StallWatchdog(1.0, clock=FakeClock())
        assert watchdog.beat(99) is False
        assert watchdog.check() == []


class TestResourceSampling:
    def test_sample_shape(self):
        sample = sample_resources()
        assert sample["rss_bytes"] > 0
        assert sample["cpu_user_s"] >= 0.0
        assert sample["cpu_sys_s"] >= 0.0
        assert all(count >= 0 for count in sample["gc_collections"])

    def test_absorb_sets_labelled_gauges(self):
        registry = MetricsRegistry()
        absorb_resources(7, {"rss_bytes": 1000, "cpu_user_s": 2.0,
                             "cpu_sys_s": 0.5,
                             "gc_collections": [4, 2, 1]},
                         registry)
        assert registry.gauge(RSS_GAUGE).value(shard="7") == 1000
        assert registry.gauge(CPU_GAUGE).value(
            shard="7", mode="user") == 2.0
        assert registry.gauge(CPU_GAUGE).value(
            shard="7", mode="sys") == 0.5
        assert registry.gauge(GC_GAUGE).value(
            shard="7", gen="2") == 1

    def test_fold_is_monotone(self):
        registry = MetricsRegistry()
        absorb_resources(0, {"rss_bytes": 2000}, registry)
        absorb_resources(0, {"rss_bytes": 1000}, registry)  # stale
        assert registry.gauge(RSS_GAUGE).value(shard="0") == 2000

    def test_duplicate_absorption_is_idempotent(self):
        sample = {"rss_bytes": 5000, "cpu_user_s": 1.5,
                  "cpu_sys_s": 0.25, "gc_collections": [9]}
        once = MetricsRegistry()
        absorb_resources(0, sample, once)
        thrice = MetricsRegistry()
        for _ in range(3):
            absorb_resources(0, sample, thrice)
        assert once.snapshot() == thrice.snapshot()


# A small pool of shard heartbeats the robustness properties permute:
# 3 shards x 2 cycles each, totals 6 cycles.
_BEAT = st.tuples(st.sampled_from([0, 1, 2]),
                  st.integers(min_value=0, max_value=2),
                  st.integers(min_value=0, max_value=500))


class TestHeartbeatRobustness:
    """Shuffled, duplicated, out-of-order heartbeats must not corrupt
    the tracker or the resource gauges (DESIGN §13)."""

    @staticmethod
    def _tracker():
        tracker = ProgressTracker(6)
        for shard in (0, 1, 2):
            tracker.add_shard(shard, 2.0)
        return tracker

    @given(beats=st.lists(_BEAT, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_tracker_is_monotone_and_order_independent(self, beats):
        tracker = self._tracker()
        seen = 0.0
        for shard, cycles_done, traces in beats:
            tracker.heartbeat(shard, cycles_done=cycles_done,
                              traces=traces)
            assert tracker.work_done >= seen  # never moves backwards
            seen = tracker.work_done

        # Any delivery order folds to the same final state.
        replay = self._tracker()
        for shard, cycles_done, traces in sorted(beats):
            replay.heartbeat(shard, cycles_done=cycles_done,
                             traces=traces)
        assert replay.work_done == tracker.work_done
        assert replay.snapshot()["shards"] == \
            tracker.snapshot()["shards"]

    @given(beats=st.lists(_BEAT, min_size=1, max_size=40),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_resource_gauges_are_order_independent(self, beats, data):
        samples = [(shard, {"rss_bytes": cycles * 1000 + traces,
                            "cpu_user_s": float(cycles),
                            "cpu_sys_s": 0.0,
                            "gc_collections": [traces]})
                   for shard, cycles, traces in beats]
        shuffled = data.draw(st.permutations(samples))

        ordered, permuted = MetricsRegistry(), MetricsRegistry()
        for shard, sample in samples:
            absorb_resources(shard, sample, ordered)
        for shard, sample in shuffled:
            # Duplicates on top of permutation: absorb twice.
            absorb_resources(shard, sample, permuted)
            absorb_resources(shard, sample, permuted)
        assert ordered.snapshot() == permuted.snapshot()


class TestTelemetryServerRouting:
    """Transport-free checks against TelemetryServer.respond."""

    def build(self):
        registry = MetricsRegistry()
        registry.counter("par_shards_total",
                         "Shards dispatched").inc(4)
        bus = EventBus()
        for cycle in range(5):
            bus.emit("cycle.done", cycle=cycle + 1)
        health = HealthMonitor(clock=FakeClock())
        return TelemetryServer(registry=registry, bus=bus,
                               health=health)

    def test_metrics_serves_prometheus_text(self):
        status, content_type, body = self.build().respond("/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE par_shards_total counter" in text
        assert "par_shards_total 4" in text

    def test_healthz_flips_with_the_monitor(self):
        server = self.build()
        status, content_type, body = server.respond("/healthz")
        assert (status, content_type) == (200, JSON_CONTENT_TYPE)
        assert json.loads(body)["status"] == "ok"
        server.health.stall(2)
        status, _, body = server.respond("/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "stalled"
        assert payload["stalled_shards"] == ["2"]

    def test_progress_without_tracker(self):
        status, _, body = self.build().respond("/progress")
        assert status == 200
        assert json.loads(body) == {"active": False, "eta": None}

    def test_progress_serves_tracker_snapshot(self):
        server = self.build()
        clock = FakeClock()
        tracker = ProgressTracker(4, clock=clock)
        tracker.add_shard(0, 4.0)
        clock.advance(10.0)
        tracker.heartbeat(0, cycles_done=2, traces=42)
        server.on_progress(tracker)
        status, _, body = server.respond("/progress")
        payload = json.loads(body)
        assert status == 200
        assert payload["work_done"] == 2.0
        assert payload["eta"] == pytest.approx(10.0)
        assert payload["traces"] == 42
        assert server.health.status()["beats"] == 1

    def test_events_tail(self):
        status, _, body = self.build().respond("/events?n=2")
        payload = json.loads(body)
        assert status == 200
        assert payload["count"] == 2
        assert [e["seq"] for e in payload["events"]] == [4, 5]

    def test_events_default_tail_and_bad_n(self):
        server = self.build()
        _, _, body = server.respond("/events")
        assert json.loads(body)["count"] == 5
        status, _, _ = server.respond("/events?n=wat")
        assert status == 400

    def test_unknown_path_404s(self):
        status, _, _ = self.build().respond("/nope")
        assert status == 404

    def test_trailing_slash_routes(self):
        status, _, _ = self.build().respond("/healthz/")
        assert status == 200

    def test_real_socket_round_trip(self):
        with self.build() as server:
            assert server.port != 0  # ephemeral port was bound
            with urllib.request.urlopen(f"{server.url}/metrics",
                                        timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == \
                    PROMETHEUS_CONTENT_TYPE
                assert b"par_shards_total 4" in response.read()


SPEC = StudySpec(scale=0.05, seed=2015, cycles=2,
                 snapshots_per_cycle=2)


@pytest.fixture(scope="module")
def drill():
    """One parallel run with a hung worker under full telemetry.

    Shard of cycle 1 goes silent for 1.5 s against a 0.4 s deadline,
    then resumes; a poller thread watches /healthz throughout.
    """
    saved_bus = get_event_bus()
    bus = EventBus()
    set_event_bus(bus)
    health = HealthMonitor()
    server = TelemetryServer(health=health)
    codes = []
    done = threading.Event()

    def poll():
        while not done.is_set():
            codes.append(server.respond("/healthz")[0])
            time.sleep(0.02)

    poller = threading.Thread(target=poll, daemon=True)
    poller.start()
    try:
        run = run_study(
            SPEC, workers=2,
            fault_plan=FaultPlan({1: ShardFault(
                kind=HANG, hang_seconds=1.5)}),
            stall_timeout=0.4,
            resources=True,
            health=health)
    finally:
        done.set()
        poller.join(timeout=5)
        set_event_bus(saved_bus)
    bare = run_study(SPEC)
    return {"run": run, "bare": bare, "codes": codes,
            "events": list(bus.events), "server": server}


class TestWatchdogDrill:
    def test_stall_then_recovery_events(self, drill):
        kinds = [event.kind for event in drill["events"]]
        assert "shard.stalled" in kinds
        assert "shard.recovered" in kinds
        assert kinds.index("shard.stalled") < \
            kinds.index("shard.recovered")
        assert kinds[-1] == "study.done"
        stalled = [e for e in drill["events"]
                   if e.kind == "shard.stalled"]
        assert stalled[0].fields["timeout"] == 0.4

    def test_healthz_went_503_and_recovered(self, drill):
        assert 503 in drill["codes"]  # mid-run stall was visible
        assert drill["codes"][0] == 200
        status, _, body = drill["server"].respond("/healthz")
        assert status == 200  # healthy again after the run
        assert json.loads(body)["finished"] is True

    def test_worker_resources_events_flow(self, drill):
        samples = [e for e in drill["events"]
                   if e.kind == "worker.resources"]
        shards = {e.fields["shard"] for e in samples}
        assert {0, 1, "parent"} <= shards
        assert all(e.fields["rss_bytes"] > 0 for e in samples)

    def test_monitored_run_is_identical_to_bare(self, drill):
        # Equality over every field, including per-cycle metrics deltas
        # — no worker_* gauge or stall counter may leak in.  (Byte-level
        # identity is asserted on checkpoint files below: pickle bytes
        # of in-memory results differ across process boundaries only by
        # memoised object sharing, not content.)
        run, bare = drill["run"], drill["bare"]
        assert len(run.results) == len(bare.results)
        for mine, ref in zip(run.results, bare.results):
            assert mine == ref
            assert list(mine.metrics) == list(ref.metrics)


class TestSerialTelemetryIdentity:
    def test_checkpoints_byte_identical_with_telemetry_on(self, tmp_path):
        bare_dir = tmp_path / "bare"
        live_dir = tmp_path / "live"
        bare = run_study(SPEC, checkpoint_dir=bare_dir)
        health = HealthMonitor()
        live = run_study(SPEC, checkpoint_dir=live_dir,
                         resources=True, health=health)
        for mine, ref in zip(live.results, bare.results):
            assert pickle.dumps(mine) == pickle.dumps(ref)
        bare_files = sorted(p.relative_to(bare_dir)
                            for p in bare_dir.rglob("*.ckpt"))
        live_files = sorted(p.relative_to(live_dir)
                            for p in live_dir.rglob("*.ckpt"))
        assert bare_files == live_files and bare_files
        for name in bare_files:
            assert (live_dir / name).read_bytes() == \
                (bare_dir / name).read_bytes()
        assert health.healthy
