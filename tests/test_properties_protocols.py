"""Property-based tests over the protocol engines (BGP, LDP, RSVP-TE)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.asgraph import AsGraph, AsNode, Relationship, Tier
from repro.bgp.routing import BgpRouting
from repro.igp.spf import SpfTable, spf_to
from repro.igp.topology import Router, Topology
from repro.mpls.ldp import LdpEngine
from repro.mpls.lfib import LabelManager
from repro.mpls.rsvpte import RsvpTeEngine


# -- random AS graph strategy --------------------------------------------------

@st.composite
def as_graphs(draw):
    """Random valid hierarchies: a tier-1 clique, transits, stubs."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    tier1_count = draw(st.integers(min_value=1, max_value=3))
    transit_count = draw(st.integers(min_value=0, max_value=4))
    stub_count = draw(st.integers(min_value=1, max_value=6))
    rng = random.Random(seed)

    graph = AsGraph()
    tier1s = [100 + i for i in range(tier1_count)]
    transits = [200 + i for i in range(transit_count)]
    stubs = [300 + i for i in range(stub_count)]
    for asn in tier1s:
        graph.add_as(AsNode(asn, tier=Tier.TIER1))
    for asn in transits:
        graph.add_as(AsNode(asn, tier=Tier.TRANSIT))
    for asn in stubs:
        graph.add_as(AsNode(asn, tier=Tier.STUB))
    for i, left in enumerate(tier1s):
        for right in tier1s[i + 1:]:
            graph.add_p2p(left, right)
    for asn in transits:
        graph.add_c2p(asn, rng.choice(tier1s))
        if rng.random() < 0.5 and tier1_count > 1:
            graph.add_c2p(asn, rng.choice(tier1s))
    for asn in stubs:
        providers = transits + tier1s
        graph.add_c2p(asn, rng.choice(providers))
        if rng.random() < 0.3:
            backup = rng.choice(providers)
            if graph.relationship(asn, backup) is None:
                graph.add_c2p(asn, backup)
    # Occasional transit-transit peering.
    if len(transits) >= 2 and rng.random() < 0.5:
        left, right = rng.sample(transits, 2)
        if graph.relationship(left, right) is None:
            graph.add_p2p(left, right)
    graph.validate()
    return graph


class TestBgpProperties:
    @settings(max_examples=50, deadline=None)
    @given(as_graphs())
    def test_all_paths_valley_free(self, graph):
        routing = BgpRouting(graph)
        for src in graph.nodes:
            for dst in graph.nodes:
                if src == dst:
                    continue
                path = routing.as_path(src, dst)
                if path is None:
                    continue
                descended = False
                peer_steps = 0
                for left, right in zip(path, path[1:]):
                    rel = graph.relationship(left, right)
                    if rel is Relationship.PROVIDER:
                        assert not descended, path
                    elif rel is Relationship.PEER:
                        peer_steps += 1
                        descended = True
                    else:
                        descended = True
                assert peer_steps <= 1, path

    @settings(max_examples=50, deadline=None)
    @given(as_graphs())
    def test_everything_reachable_in_valid_hierarchy(self, graph):
        """With a full tier-1 clique at the top, any two ASes have a
        valley-free path."""
        routing = BgpRouting(graph)
        for src in graph.nodes:
            for dst in graph.nodes:
                assert routing.reachable(src, dst), (src, dst)

    @settings(max_examples=50, deadline=None)
    @given(as_graphs())
    def test_next_hop_consistency(self, graph):
        """Following next_as step by step yields as_path."""
        routing = BgpRouting(graph)
        nodes = sorted(graph.nodes)
        for src in nodes[:4]:
            for dst in nodes[-4:]:
                path = routing.as_path(src, dst)
                if path is None or len(path) < 2:
                    continue
                walked = [src]
                current = src
                while current != dst:
                    current = routing.next_as(current, dst)
                    walked.append(current)
                assert walked == path


# -- random topologies for label engines ----------------------------------------

def random_topology(seed, count=8, borders=3, extra=6):
    rng = random.Random(seed)
    topology = Topology(asn=65000)
    for router_id in range(count):
        topology.add_router(Router(
            router_id, loopback=50_000 + router_id,
            vendor=rng.choice(["cisco", "juniper"]),
            is_border=router_id < borders,
        ))
    addr = [100]

    def pair():
        addr[0] += 2
        return addr[0] - 2, addr[0] - 1

    for router_id in range(1, count):
        a, b = pair()
        topology.add_link(rng.randrange(router_id), router_id, a, b,
                          cost=rng.randint(1, 3))
    for _ in range(extra):
        left, right = rng.randrange(count), rng.randrange(count)
        if left != right:
            a, b = pair()
            topology.add_link(left, right, a, b, cost=rng.randint(1, 3))
    return topology


def manager_for(topology):
    return LabelManager({
        router_id: router.vendor
        for router_id, router in topology.routers.items()
    })


class TestLdpProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_router_scope_invariant(self, seed):
        """One label per (router, FEC), and swap entries always point
        at the downstream router's own binding."""
        topology = random_topology(seed)
        labels = manager_for(topology)
        engine = LdpEngine(topology, SpfTable(topology), labels)
        fecs = engine.establish_transit_fecs()
        for fec in fecs:
            egress = engine.egress_of(fec)
            for router_id in topology.routers:
                lfib = labels.lfib(router_id)
                label = lfib.label_for(fec)
                if label is None:
                    continue
                for entry in lfib.choices(label):
                    if entry.out_label is not None:
                        downstream = labels.lfib(entry.next_hop)
                        assert entry.out_label \
                            == downstream.label_for(fec)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_lsp_walk_terminates_at_egress(self, seed):
        """Following LFIB entries from any ingress reaches the egress
        in finitely many swaps (no loops, no dead ends)."""
        topology = random_topology(seed)
        labels = manager_for(topology)
        engine = LdpEngine(topology, SpfTable(topology), labels)
        for fec in engine.establish_transit_fecs():
            egress = engine.egress_of(fec)
            for ingress in (r.router_id
                            for r in topology.border_routers()):
                if ingress == egress:
                    continue
                choices = engine.ingress_push_choices(ingress, fec)
                for label, next_hop, _ in choices:
                    current, current_label = next_hop, label
                    for _ in range(len(topology.routers) + 1):
                        if current == egress or current_label is None:
                            break
                        entries = labels.lfib(current) \
                            .choices(current_label)
                        assert entries, (current, current_label)
                        entry = entries[0]
                        current, current_label = (entry.next_hop,
                                                  entry.out_label)
                    assert current == egress


class TestRsvpProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16),
           st.integers(min_value=1, max_value=4))
    def test_session_labels_unique_per_router(self, seed, tunnels):
        """No two sessions share a label at any router."""
        topology = random_topology(seed)
        labels = manager_for(topology)
        engine = RsvpTeEngine(topology, SpfTable(topology), labels)
        borders = sorted(r.router_id for r in topology.border_routers())
        for tunnel_id in range(tunnels):
            engine.signal(borders[0], borders[-1], tunnel_id)
        per_router = {}
        for session in engine.sessions:
            for router, label in session.labels.items():
                key = (router, label)
                assert key not in per_router, key
                per_router[key] = session.fec
