"""Tests for alias inference and router-level IOTPs (§5 extensions)."""

import pytest

from repro.core.alias import (
    AliasResolver,
    UnionFind,
    infer_aliases,
    router_level_iotps,
)
from repro.core.model import Iotp, Lsp

ASN = 65001


def lsp(entry, exit_, hops, dst=9999):
    return Lsp(entry=entry, exit=exit_, hops=tuple(hops), complete=True,
               monitor="m", dst=dst, asn=ASN)


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        assert uf.find(1) == 1
        assert uf.groups() == []

    def test_union_and_find(self):
        uf = UnionFind()
        uf.union(3, 1)
        uf.union(1, 2)
        assert uf.find(3) == uf.find(2) == 1  # smallest root wins
        assert uf.groups() == [{1, 2, 3}]

    def test_separate_groups(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(10, 20)
        assert uf.find(1) != uf.find(10)
        assert len(uf.groups()) == 2


class TestAliasResolver:
    def test_resolution(self):
        resolver = AliasResolver()
        resolver.add_alias_pair(5, 9)
        assert resolver.are_aliases(5, 9)
        assert not resolver.are_aliases(5, 7)
        assert resolver.resolve(9) == resolver.resolve(5)

    def test_unknown_address_resolves_to_itself(self):
        assert AliasResolver().resolve(42) == 42


class TestInferAliases:
    def test_predecessors_of_shared_address_are_aliases(self):
        """Two LSPs converge on address 30: their penultimate hops must
        be interfaces of the same upstream router."""
        lsps = [
            lsp(1, 99, [(10, 100), (30, 300)]),
            lsp(1, 99, [(20, 200), (30, 300)]),
        ]
        resolver = infer_aliases(lsps)
        assert resolver.are_aliases(10, 20)

    def test_exit_predecessors_merge(self):
        """Both LSPs end at exit 99: their last LSRs are aliases."""
        lsps = [
            lsp(1, 99, [(10, 100), (11, 200)]),
            lsp(1, 99, [(20, 300), (21, 400)]),
        ]
        resolver = infer_aliases(lsps)
        assert resolver.are_aliases(11, 21)
        assert not resolver.are_aliases(10, 20)

    def test_no_shared_addresses_no_aliases(self):
        lsps = [
            lsp(1, 99, [(10, 100)]),
            lsp(2, 98, [(20, 200)]),
        ]
        assert infer_aliases(lsps).alias_sets() == []

    def test_transitive_merging(self):
        lsps = [
            lsp(1, 99, [(10, 100), (30, 300)]),
            lsp(1, 99, [(20, 200), (30, 300)]),
            lsp(1, 99, [(21, 200), (30, 300)]),
        ]
        resolver = infer_aliases(lsps)
        assert resolver.are_aliases(10, 21)


class TestRouterLevelIotps:
    def build_split_iotps(self):
        """Two IP-level IOTPs whose entries are aliases (same LER)."""
        first = Iotp(asn=ASN, entry=11, exit=99)
        first.add(lsp(11, 99, [(10, 100)]), dst_asn=1)
        second = Iotp(asn=ASN, entry=12, exit=99)
        second.add(lsp(12, 99, [(10, 101)]), dst_asn=2)
        return {first.key: first, second.key: second}

    def test_merging_reduces_count(self):
        iotps = self.build_split_iotps()
        resolver = AliasResolver()
        resolver.add_alias_pair(11, 12)
        merged = router_level_iotps(iotps, resolver)
        assert len(merged) == 1
        iotp = next(iter(merged.values()))
        assert iotp.width == 2
        assert iotp.dst_asns == {1, 2}

    def test_no_aliases_no_merging(self):
        iotps = self.build_split_iotps()
        merged = router_level_iotps(iotps, AliasResolver())
        assert len(merged) == 2

    def test_dynamic_tag_survives_merge(self):
        iotps = self.build_split_iotps()
        next(iter(iotps.values())).dynamic = True
        resolver = AliasResolver()
        resolver.add_alias_pair(11, 12)
        merged = router_level_iotps(iotps, resolver)
        assert next(iter(merged.values())).dynamic

    def test_merged_key_uses_canonical_addresses(self):
        iotps = self.build_split_iotps()
        resolver = AliasResolver()
        resolver.add_alias_pair(11, 12)
        merged = router_level_iotps(iotps, resolver)
        (asn, entry, exit_), = merged.keys()
        assert asn == ASN
        assert entry == resolver.resolve(11) == resolver.resolve(12)

    def test_classification_after_merge(self):
        """Merging two Mono-LSP IOTPs can reveal Multi-FEC: the same
        convergence, seen at the router level."""
        from repro.core.classification import TunnelClass, classify

        first = Iotp(asn=ASN, entry=11, exit=99)
        first.add(lsp(11, 99, [(10, 100), (30, 300)]), dst_asn=1)
        second = Iotp(asn=ASN, entry=12, exit=99)
        second.add(lsp(12, 99, [(10, 100), (30, 301)]), dst_asn=2)
        iotps = {first.key: first, second.key: second}

        ip_level = classify(iotps)
        assert all(v.tunnel_class is TunnelClass.MONO_LSP
                   for v in ip_level.verdicts.values())

        resolver = AliasResolver()
        resolver.add_alias_pair(11, 12)
        merged = classify(router_level_iotps(iotps, resolver))
        (verdict,) = merged.verdicts.values()
        assert verdict.tunnel_class is TunnelClass.MULTI_FEC
