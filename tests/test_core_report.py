"""Tests for the per-AS usage report."""

import pytest

from repro.core import LprPipeline, TunnelClass
from repro.core.report import (
    profile_all,
    profile_as,
    render_profile,
    render_report,
)
from repro.sim import ArkSimulator, paper_scenario
from repro.sim.scenarios import TATA, TELIA, VODAFONE


@pytest.fixture(scope="module")
def cycle_result():
    simulator = ArkSimulator(paper_scenario(scale=0.6, seed=4))
    pipeline = LprPipeline(simulator.internet.ip2as)
    return pipeline.process_cycle(simulator.run_cycle(40))


class TestProfileAs:
    def test_tata_profile(self, cycle_result):
        profile = profile_as(cycle_result, TATA)
        assert profile.iotp_count > 0
        assert profile.lsp_count >= profile.iotp_count
        assert profile.dominant_class is not None
        assert profile.dst_as_fanout >= 2.0  # TransitDiversity floor
        assert 0 < profile.mean_length < 10
        assert abs(sum(profile.class_shares.values()) - 1.0) < 1e-9

    def test_vodafone_dynamic_flag(self, cycle_result):
        profile = profile_as(cycle_result, VODAFONE)
        if profile.iotp_count:
            assert profile.dynamic
            assert profile.class_shares[TunnelClass.MULTI_FEC] > 0

    def test_mpls_free_as(self, cycle_result):
        profile = profile_as(cycle_result, TELIA)
        assert profile.iotp_count == 0
        assert profile.dominant_class is None
        assert "no explicit MPLS" in profile.headline()


class TestRendering:
    def test_render_profile_sections(self, cycle_result):
        text = render_profile(profile_as(cycle_result, TATA), "Tata")
        assert "AS6453 (Tata)" in text
        assert "classes:" in text
        assert "geometry:" in text

    def test_render_empty_profile(self, cycle_result):
        text = render_profile(profile_as(cycle_result, TELIA))
        assert "no explicit MPLS" in text
        assert "classes:" not in text

    def test_headline_mentions_dynamic(self, cycle_result):
        profile = profile_as(cycle_result, VODAFONE)
        if profile.iotp_count:
            assert "dynamic" in profile.headline()


class TestFullReport:
    def test_profiles_ordered_busiest_first(self, cycle_result):
        profiles = profile_all(cycle_result)
        counts = [profile.iotp_count for profile in profiles]
        assert counts == sorted(counts, reverse=True)
        assert all(profile.iotp_count > 0 for profile in profiles)

    def test_render_report_with_limit(self, cycle_result):
        text = render_report(cycle_result, limit=2)
        assert text.count("classes:") <= 2
        assert "cycle 40:" in text

    def test_render_report_names(self, cycle_result):
        text = render_report(cycle_result, names={TATA: "Tata"})
        assert "(Tata)" in text
