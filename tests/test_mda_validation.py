"""Tests for MDA probing and the §5 LPR-vs-MDA cross-validation."""

import pytest

from repro.core import LprPipeline, TunnelClass
from repro.core.validation import validate_classification
from repro.sim import ArkSimulator, MplsPolicy, Scenario
from repro.sim.dataplane import DataPlane
from repro.sim.mda import MdaProber, probes_to_rule_out
from repro.sim.monitors import build_monitors

from test_integration import ISP, isp_universe


class TestStoppingRule:
    def test_published_sequence(self):
        """The classic 95%-confidence MDA probe counts."""
        assert [probes_to_rule_out(k) for k in (1, 2, 3, 4, 5)] \
            == [6, 11, 16, 21, 27]

    def test_stricter_alpha_needs_more_probes(self):
        assert probes_to_rule_out(1, alpha=0.01) \
            > probes_to_rule_out(1, alpha=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            probes_to_rule_out(0)
        with pytest.raises(ValueError):
            probes_to_rule_out(1, alpha=0.0)


def run_isp(policy, **universe_kwargs):
    scenario = Scenario(
        universe=isp_universe(**universe_kwargs),
        planner=lambda cycle: {ISP: policy},
        cycles=3,
    )
    simulator = ArkSimulator(scenario, monitors_per_as=4)
    pipeline = LprPipeline(simulator.internet.ip2as)
    result = pipeline.process_cycle(simulator.run_cycle(2))
    return simulator, result


class TestMdaProber:
    def test_single_path_network_discovers_one_path(self):
        simulator, _ = run_isp(MplsPolicy(enabled=False), ecmp=1)
        monitor = build_monitors(simulator.internet, per_as=1)[0]
        prober = MdaProber(DataPlane(simulator.internet), monitor)
        result = prober.discover(simulator.destinations[0])
        assert len(result.paths) == 1
        assert result.max_width == 1
        # Stopping rule: the discovery probe plus the 6 confirmation
        # probes the k=1 -> k=2 hypothesis test requires.
        assert result.flows_used == 7

    def test_ecmp_network_discovers_multiple_paths(self):
        simulator, _ = run_isp(MplsPolicy(enabled=False), ecmp=3,
                               routers=24)
        monitor = build_monitors(simulator.internet, per_as=1)[0]
        prober = MdaProber(DataPlane(simulator.internet), monitor)
        widths = []
        for dst in simulator.destinations[:10]:
            result = prober.discover(dst)
            widths.append(len(result.paths))
        assert max(widths) >= 2

    def test_unreachable_destination(self):
        simulator, _ = run_isp(MplsPolicy(enabled=False))
        monitor = build_monitors(simulator.internet, per_as=1)[0]
        prober = MdaProber(DataPlane(simulator.internet), monitor)
        result = prober.discover(0x7F000001)
        assert result.paths == set()

    def test_flow_budget_respected(self):
        simulator, _ = run_isp(MplsPolicy(enabled=False), ecmp=3,
                               routers=24)
        monitor = build_monitors(simulator.internet, per_as=1)[0]
        prober = MdaProber(DataPlane(simulator.internet), monitor,
                           max_flows=4)
        result = prober.discover(simulator.destinations[0])
        assert result.flows_used <= 4

    def test_width_between_projects_paths(self):
        from repro.sim.mda import MdaResult

        result = MdaResult(dst=1)
        result.paths = {(1, 10, 20, 99), (1, 11, 20, 99), (1, 10, 21, 5)}
        assert result.width_between({10, 11, 20}) == 3
        assert result.width_between({20}) == 1
        assert result.width_between({12345}) == 0


class TestCrossValidation:
    def _validate(self, policy, **universe_kwargs):
        simulator, result = run_isp(policy, **universe_kwargs)
        monitors = {m.name: m
                    for m in build_monitors(simulator.internet,
                                            per_as=4)}
        report = validate_classification(
            DataPlane(simulator.internet), monitors,
            result.iotps, result.classification,
        )
        return result, report

    def test_mono_fec_visible_to_mda(self):
        """LDP ECMP diversity responds to flow variation (§5 claim 1)."""
        result, report = self._validate(
            MplsPolicy(enabled=True, ldp=True), ecmp=3, routers=24)
        checked = [v for v in report.checked
                   if v.tunnel_class is TunnelClass.MONO_FEC]
        assert checked
        assert report.agreement_rate(TunnelClass.MONO_FEC) >= 0.75

    def test_multi_fec_invisible_to_mda(self):
        """TE diversity does not respond to flow variation (claim 2)."""
        policy = MplsPolicy(enabled=True, ldp=False, ldp_internal=False,
                            te_pair_fraction=1.0, te_tunnels_per_pair=3)
        result, report = self._validate(policy, ecmp=1)
        checked = [v for v in report.checked
                   if v.tunnel_class is TunnelClass.MULTI_FEC]
        assert checked
        assert report.agreement_rate(TunnelClass.MULTI_FEC) >= 0.75

    def test_report_counts(self):
        result, report = self._validate(
            MplsPolicy(enabled=True, ldp=True), ecmp=3, routers=24)
        counts = report.counts()
        for agreeing, total in counts.values():
            assert 0 <= agreeing <= total
        assert len(report) == sum(t for _, t in counts.values())

    def test_mono_lsp_not_checked(self):
        result, report = self._validate(
            MplsPolicy(enabled=True, ldp=True), ecmp=1)
        assert all(v.tunnel_class is not TunnelClass.MONO_LSP
                   for v in report.checked)
