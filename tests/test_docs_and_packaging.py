"""Consistency checks between the documentation and the code.

DESIGN.md promises an implementation and a benchmark for every paper
artifact; these tests keep those promises honest as the repository
evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import ALL_ARTIFACTS

REPO = Path(__file__).resolve().parent.parent


class TestDocs:
    def test_design_lists_every_artifact(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for artifact in ALL_ARTIFACTS:
            token = artifact.replace("fig", "Fig ").replace(
                "table", "Table ")
            assert token.rstrip("ab") in design or artifact in design, \
                artifact

    def test_experiments_covers_every_artifact(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text(
            encoding="utf-8")
        for artifact in ("Fig 5a", "Fig 5b", "Table 1", "Fig 6",
                         "Fig 7", "Fig 8", "Fig 9", "Fig 13",
                         "Fig 16", "Fig 17", "Table 2"):
            assert artifact in experiments, artifact

    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for line in readme.splitlines():
            if "`examples/" in line:
                name = line.split("`examples/")[1].split("`")[0]
                assert (REPO / "examples" / name).exists(), name

    def test_every_paper_bench_exists(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("test_*.py")}
        expected = {
            "test_fig5_deployment.py", "test_table1_filtering.py",
            "test_fig6_persistence.py", "test_fig7_length.py",
            "test_fig8_width.py", "test_fig9_symmetry.py",
            "test_fig10_vodafone.py", "test_fig11_att.py",
            "test_fig12_tata.py", "test_fig13_tata_split.py",
            "test_fig14_ntt.py", "test_fig15_level3.py",
            "test_fig16_level3_april.py", "test_fig17_label_dynamics.py",
            "test_table2_ip_stats.py", "test_validation_study.py",
            "test_ablations.py", "test_lpr_throughput.py",
        }
        assert expected <= benches


class TestPackaging:
    def test_version_exposed(self):
        assert repro.__version__

    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0
        assert "simulate" in completed.stdout
        assert "classify" in completed.stdout

    def test_public_api_importable(self):
        from repro import StopReason, Trace, TraceHop  # noqa: F401
        from repro.analysis import run_longitudinal_study  # noqa: F401
        from repro.core import LprPipeline, classify  # noqa: F401
        from repro.mpls import LdpEngine, RsvpTeEngine  # noqa: F401
        from repro.sim import ArkSimulator, paper_scenario  # noqa: F401
        from repro.warts import read_archive  # noqa: F401
