"""Unit tests for the data plane: forwarding, labels, PHP, visibility."""

import pytest

from repro.mpls.vendor import get_profile
from repro.net.ip import Prefix
from repro.obs import get_registry
from repro.sim.config import AsSpec, MplsPolicy, UniverseSpec
from repro.sim.dataplane import DataPlane, UnreachableError
from repro.sim.network import Internet
from repro.bgp.asgraph import Tier

SRC_AS = 65301
TRANSIT = 65000
DST_AS = 65201
OTHER_DST_AS = 65202


def linear_universe(transit_vendor="cisco", transit_routers=8,
                    ecmp=1, multi_link=False):
    """monitor network -> transit -> two destination stubs.

    With ``multi_link`` the destination stubs connect to the transit at
    two PoPs each, enabling egress-churn tests.
    """
    ases = [
        AsSpec(TRANSIT, "TR", Tier.TIER1, router_count=transit_routers,
               border_count=3, vendor=transit_vendor,
               ecmp_breadth=ecmp),
        # The source network is transit-tier so its uplink lands on one
        # of TR's core borders while the destination stubs share TR's
        # access border — guaranteeing a border-to-border LSP.
        AsSpec(SRC_AS, "SRC", Tier.TRANSIT, router_count=3,
               border_count=1, prefix_count=1),
        AsSpec(DST_AS, "D1", Tier.STUB, router_count=3, border_count=2,
               prefix_count=2),
        AsSpec(OTHER_DST_AS, "D2", Tier.STUB, router_count=3,
               border_count=2, prefix_count=2),
    ]
    repeat = 2 if multi_link else 1
    return UniverseSpec(
        ases=ases,
        c2p_edges=[(SRC_AS, TRANSIT)]
        + [(DST_AS, TRANSIT)] * repeat
        + [(OTHER_DST_AS, TRANSIT)] * repeat,
        p2p_edges=[],
        monitor_ases=[SRC_AS],
        seed=11,
    )


def build(policy=None, **kwargs):
    internet = Internet(linear_universe(**kwargs))
    if policy is not None:
        internet.network(TRANSIT).apply_policy(policy)
    return internet


def a_destination(internet, asn=DST_AS):
    for address, owner in internet.destination_addresses():
        if owner == asn:
            return address
    raise AssertionError(f"no destination in AS{asn}")


def path_for(internet, dst):
    src_net = internet.network(SRC_AS)
    dataplane = DataPlane(internet)
    return dataplane.forward_path(SRC_AS, 1, 99, dst)


class TestPlainForwarding:
    def test_path_reaches_destination(self):
        internet = build()
        dst = a_destination(internet)
        hops = path_for(internet, dst)
        assert hops[-1].address == dst
        assert hops[-1].router_id == -1

    def test_no_labels_without_mpls(self):
        internet = build()
        hops = path_for(internet, a_destination(internet))
        assert all(not hop.labels for hop in hops)

    def test_as_sequence_is_bgp_path(self):
        internet = build()
        hops = path_for(internet, a_destination(internet))
        asns = []
        for hop in hops:
            if not asns or asns[-1] != hop.asn:
                asns.append(hop.asn)
        assert asns == [SRC_AS, TRANSIT, DST_AS]

    def test_unreachable_raises(self):
        internet = build()
        with pytest.raises(UnreachableError):
            DataPlane(internet).forward_path(SRC_AS, 1, 99,
                                             Prefix.parse(
                                                 "203.0.113.0/24").first)

    def test_same_flow_same_path(self):
        internet = build(ecmp=2)
        dst = a_destination(internet)
        assert path_for(internet, dst) == path_for(internet, dst)


class TestLdpForwarding:
    def test_transit_shows_labels(self):
        internet = build(MplsPolicy(enabled=True, ldp=True))
        hops = path_for(internet, a_destination(internet))
        labelled = [h for h in hops if h.labels]
        assert labelled
        assert all(h.asn == TRANSIT for h in labelled)

    def test_labels_match_ldp_bindings(self):
        internet = build(MplsPolicy(enabled=True, ldp=True))
        network = internet.network(TRANSIT)
        hops = path_for(internet, a_destination(internet))
        for hop in hops:
            if hop.labels:
                lfib = network.labels.lfib(hop.router_id)
                assert hop.labels[0] in {
                    lfib.label_for(fec)
                    for fec in network.ldp.established_fecs
                }

    def test_php_hides_egress_label(self):
        """The hop after the labelled run (the egress LER) is unlabeled,
        and it is a border router of the transit AS."""
        internet = build(MplsPolicy(enabled=True, ldp=True))
        hops = path_for(internet, a_destination(internet))
        last_labelled = max(
            index for index, hop in enumerate(hops) if hop.labels)
        exit_hop = hops[last_labelled + 1]
        assert exit_hop.asn == TRANSIT
        assert not exit_hop.labels
        network = internet.network(TRANSIT)
        assert network.topology.routers[exit_hop.router_id].is_border

    def test_pair_gating_disables_tunnel(self):
        internet = build(MplsPolicy(enabled=True, ldp=True,
                                    mpls_pair_fraction=0.0))
        hops = path_for(internet, a_destination(internet))
        assert all(not hop.labels for hop in hops)

    def test_vendor_label_range(self):
        internet = build(MplsPolicy(enabled=True, ldp=True),
                         transit_vendor="juniper")
        profile = get_profile("juniper")
        hops = path_for(internet, a_destination(internet))
        for hop in hops:
            if hop.labels:
                assert profile.label_min <= hop.labels[0] \
                    <= profile.label_max


class TestTeForwarding:
    def test_te_labels_differ_from_ldp(self):
        policy = MplsPolicy(enabled=True, ldp=True,
                            te_pair_fraction=1.0, te_tunnels_per_pair=2)
        internet = build(policy)
        network = internet.network(TRANSIT)
        hops = path_for(internet, a_destination(internet))
        labelled = [h for h in hops if h.labels]
        assert labelled
        session_labels = {
            label for session in network.rsvp.sessions
            for label in session.labels.values()
        }
        assert all(h.labels[0] in session_labels for h in labelled)

    def test_destinations_spread_over_tunnels(self):
        policy = MplsPolicy(enabled=True, ldp=False,
                            te_pair_fraction=1.0, te_tunnels_per_pair=4)
        internet = build(policy)
        network = internet.network(TRANSIT)
        picked = set()
        for prefix_index in range(64):
            prefix = Prefix(0x32000000 + (prefix_index << 8), 24)
            session = network.te_tunnel_for(0, 1, prefix)
            if session is not None:
                picked.add(session.fec.tunnel_id)
        assert len(picked) >= 2


class TestVisibilityModes:
    def test_no_ttl_propagate_compresses_to_opaque_hop(self):
        """Without ttl-propagate the LSRs vanish; with RFC 4950 the one
        revealing hop quotes an LSE whose TTL betrays the hidden length
        (the *opaque* tunnel of the revelation taxonomy)."""
        policy = MplsPolicy(enabled=True, ldp=True, ttl_propagate=False)
        internet = build(policy, transit_routers=10)
        transparent = path_for(internet, a_destination(internet))
        internet2 = build(MplsPolicy(enabled=True, ldp=True),
                          transit_routers=10)
        explicit = path_for(internet2, a_destination(internet2))
        assert len(transparent) < len(explicit)
        labelled = [hop for hop in transparent if hop.labels]
        assert len(labelled) <= 1
        for hop in labelled:
            assert hop.lse_ttl > 200  # near-255: never propagated

    def test_no_ttl_propagate_no_rfc4950_fully_invisible(self):
        policy = MplsPolicy(enabled=True, ldp=True, ttl_propagate=False)
        internet = build(policy, transit_routers=10,
                         transit_vendor="legacy")
        hops = path_for(internet, a_destination(internet))
        assert all(not hop.quotes_labels or not hop.labels
                   for hop in hops)

    def test_legacy_vendor_no_rfc4950(self):
        """Implicit tunnels: LSRs visible, labels never quoted."""
        internet = build(MplsPolicy(enabled=True, ldp=True),
                         transit_vendor="legacy")
        hops = path_for(internet, a_destination(internet))
        transit_hops = [h for h in hops if h.asn == TRANSIT]
        assert transit_hops
        assert all(not h.quotes_labels for h in transit_hops)


class TestRoutingNoise:
    def test_egress_churn_changes_some_paths(self):
        internet = build(multi_link=True)
        dst_addrs = [address for address, _ in
                     internet.destination_addresses()][:8]
        calm = DataPlane(internet, era=0, egress_noise=0.0)
        base = [calm.forward_path(SRC_AS, 1, 99, dst)
                for dst in dst_addrs]
        differences = 0
        for era in range(1, 6):
            stormy = DataPlane(internet, era=era, egress_noise=0.3)
            differences += sum(
                1 for dst, reference in zip(dst_addrs, base)
                if stormy.forward_path(SRC_AS, 1, 99, dst) != reference
            )
        assert differences > 0

    def test_egress_churn_noop_on_single_links(self):
        internet = build(multi_link=False)
        dst = a_destination(internet)
        calm = DataPlane(internet, era=0, egress_noise=0.0)
        stormy = DataPlane(internet, era=5, egress_noise=0.9)
        assert calm.forward_path(SRC_AS, 1, 99, dst) \
            == stormy.forward_path(SRC_AS, 1, 99, dst)

    def test_invalid_egress_noise(self):
        internet = build()
        with pytest.raises(ValueError):
            DataPlane(internet, egress_noise=1.0)

    def test_flap_reroutes_when_alternative_exists(self):
        """A flapped link with an equal-cost alternative reroutes; the
        same flap pattern never disconnects (fallback to intact DAG)."""
        internet = build(ecmp=2, transit_routers=14)
        dst_addrs = [address for address, _ in
                     internet.destination_addresses()][:8]
        calm = DataPlane(internet, era=0, flap_rate=0.0)
        base = [calm.forward_path(SRC_AS, 1, 99, dst)
                for dst in dst_addrs]
        for era in range(1, 8):
            stormy = DataPlane(internet, era=era, flap_rate=0.15)
            for dst in dst_addrs:
                hops = stormy.forward_path(SRC_AS, 1, 99, dst)
                assert hops[-1].address == dst  # still delivered

    def test_flap_rate_zero_is_stable(self):
        internet = build(ecmp=2)
        dst = a_destination(internet)
        first = DataPlane(internet, era=1, flap_rate=0.0)
        second = DataPlane(internet, era=2, flap_rate=0.0)
        assert first.forward_path(SRC_AS, 1, 99, dst) \
            == second.forward_path(SRC_AS, 1, 99, dst)

    def test_flapped_links_deterministic_per_era(self):
        internet = build()
        first = DataPlane(internet, era=7, flap_rate=0.3)
        second = DataPlane(internet, era=7, flap_rate=0.3)
        assert first.flapped_links(TRANSIT) \
            == second.flapped_links(TRANSIT)

    def test_invalid_flap_rate(self):
        internet = build()
        with pytest.raises(ValueError):
            DataPlane(internet, flap_rate=1.5)


class TestMemoization:
    """The per-era route/hop caches are exact and fully observable."""

    def test_memoized_paths_match_uncached(self):
        internet = build(MplsPolicy(enabled=True, ldp=True), ecmp=2)
        cached = DataPlane(internet)
        uncached = DataPlane(internet, memoize=False)
        assert uncached.route_cache is None
        for asn in (DST_AS, OTHER_DST_AS):
            dst = a_destination(internet, asn)
            for flow_id in range(4):
                assert cached.forward_path(
                    SRC_AS, 1, 99, dst, flow_id) == \
                    uncached.forward_path(SRC_AS, 1, 99, dst, flow_id)

    def test_route_cache_counts_once_per_forward(self):
        internet = build()
        dataplane = DataPlane(internet)
        dst = a_destination(internet)
        dataplane.forward_path(SRC_AS, 1, 99, dst)
        dataplane.forward_path(SRC_AS, 1, 99, dst, flow_id=1)
        cache = dataplane.route_cache
        assert (cache.misses, cache.hits) == (1, 1)

    def test_unreachable_is_memoized_with_identical_error(self):
        internet = build()
        dataplane = DataPlane(internet)
        dst = Prefix.parse("203.0.113.0/24").first
        messages = []
        for _ in range(2):
            with pytest.raises(UnreachableError) as err:
                dataplane.forward_path(SRC_AS, 1, 99, dst)
            messages.append(str(err.value))
        assert messages[0] == messages[1]
        # The negative entry is cached too: one miss, then a hit.
        cache = dataplane.route_cache
        assert (cache.misses, cache.hits) == (1, 1)

    def test_hop_observations_are_shared_flyweights(self):
        internet = build(MplsPolicy(enabled=True, ldp=True))
        dataplane = DataPlane(internet)
        dst = a_destination(internet)
        first = dataplane.forward_path(SRC_AS, 1, 99, dst)
        second = dataplane.forward_path(SRC_AS, 1, 99, dst)
        assert first == second
        # Hops materialized by _walk_as come back as cached immutable
        # tuples, so repeated traces share the same HopObs objects.
        assert any(a is b for a, b in zip(first, second))
        assert dataplane.hop_cache_hits > 0
        assert dataplane.hop_cache_misses > 0

    def test_flush_publishes_deltas_once(self):
        registry = get_registry()
        internet = build()
        dataplane = DataPlane(internet)
        dst = a_destination(internet)
        dataplane.forward_path(SRC_AS, 1, 99, dst)
        before = registry.snapshot()
        dataplane.flush_cache_metrics()
        dataplane.flush_cache_metrics()  # no new activity: no-op
        delta = registry.diff(before, registry.snapshot())

        def total(name):
            return sum(entry["value"]
                       for entry in delta.get(name, {}).get("values",
                                                            []))

        assert total("route_cache_misses_total") == 1
        assert total("route_cache_hits_total") == 0
