"""Tests for the parallel study runner (repro.par).

The headline contract: a sharded run is byte-identical to a serial
one — same per-cycle results, same regenerated artifacts, same merged
metrics, same end-of-campaign simulator state — and the per-shard
metrics deltas reconcile exactly with serial totals.
"""

import json

import pytest

from repro.analysis import LongitudinalStudy, Study, regenerate
from repro.cli import main
from repro.core.pipeline import run_study
from repro.obs import MetricsRegistry, get_registry
from repro.par import (
    CheckpointStore,
    Shard,
    StudySpec,
    build_study,
    plan_shards,
    shard_cycles,
)

SPEC = StudySpec(scale=0.25, seed=7, cycles=4, snapshots_per_cycle=2)
SPEC1 = StudySpec(scale=0.25, seed=7, cycles=1, snapshots_per_cycle=2)


@pytest.fixture(scope="module")
def serial_run():
    return run_study(SPEC, workers=1)


@pytest.fixture(scope="module")
def parallel_run():
    return run_study(SPEC, workers=2)


@pytest.fixture(scope="module")
def serial_one():
    return run_study(SPEC1, workers=1)


class TestShardCycles:
    def test_even_split(self):
        assert shard_cycles(1, 8, 2) == [
            Shard(shard_id=0, first=1, last=4),
            Shard(shard_id=1, first=5, last=8),
        ]

    def test_remainder_goes_to_earlier_shards(self):
        assert shard_cycles(1, 8, 3) == [
            Shard(shard_id=0, first=1, last=3),
            Shard(shard_id=1, first=4, last=6),
            Shard(shard_id=2, first=7, last=8),
        ]

    def test_more_shards_than_cycles(self):
        shards = shard_cycles(1, 2, 5)
        assert len(shards) == 2
        assert all(len(shard) == 1 for shard in shards)

    def test_blocks_are_contiguous_and_cover_the_range(self):
        for count in range(1, 7):
            shards = shard_cycles(3, 17, count)
            cycles = [c for shard in shards for c in shard.cycles]
            assert cycles == list(range(3, 18))

    def test_empty_range(self):
        assert shard_cycles(5, 4, 3) == []

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_cycles(1, 8, 0)

    def test_shard_len_and_cycles(self):
        shard = Shard(shard_id=0, first=4, last=6)
        assert len(shard) == 3
        assert list(shard.cycles) == [4, 5, 6]


class TestByteIdentity:
    def test_results_ordered_by_cycle(self, parallel_run):
        assert [r.cycle for r in parallel_run.results] == [1, 2, 3, 4]

    def test_cycle_results_identical(self, serial_run, parallel_run):
        for serial, parallel in zip(serial_run.results,
                                    parallel_run.results):
            assert serial.stats == parallel.stats
            assert serial.filter_stats == parallel.filter_stats
            assert serial.classification.verdicts == \
                parallel.classification.verdicts
            assert serial.iotps.keys() == parallel.iotps.keys()

    def test_cycle_metrics_deltas_identical(self, serial_run,
                                            parallel_run):
        for serial, parallel in zip(serial_run.results,
                                    parallel_run.results):
            assert serial.metrics == parallel.metrics

    def test_merged_metrics_identical(self, serial_run, parallel_run):
        merged_serial = MetricsRegistry.merge(
            r.metrics for r in serial_run.results)
        merged_parallel = MetricsRegistry.merge(
            r.metrics for r in parallel_run.results)
        assert merged_serial == merged_parallel

    @pytest.mark.parametrize("artifact", [
        "table1", "table2", "fig5a", "fig5b", "fig7", "fig13",
    ])
    def test_artifacts_byte_identical(self, serial_run, parallel_run,
                                      artifact):
        serial = _study(serial_run)
        parallel = _study(parallel_run)
        assert str(regenerate(serial, artifact)) == \
            str(regenerate(parallel, artifact))

    def test_post_study_artifact_byte_identical(self, serial_run,
                                                parallel_run):
        # Fig 6 re-runs a cycle on top of the campaign's end state, so
        # it only matches when the parallel parent simulator was
        # fast-forwarded to the same control-plane state.
        assert str(regenerate(_study(serial_run), "fig6")) == \
            str(regenerate(_study(parallel_run), "fig6"))

    def test_simulator_end_state_identical(self, serial_run,
                                           parallel_run):
        assert _state_fingerprint(serial_run.simulator.internet) == \
            _state_fingerprint(parallel_run.simulator.internet)


class TestShardReconciliation:
    def test_shard_accounting(self, parallel_run):
        assert [s.shard_id for s in parallel_run.shards] == [0, 1]
        assert sum(len(s.results) for s in parallel_run.shards) == \
            SPEC.cycles
        # Shard 0 starts at cycle 1 (no replay); shard 1 replays
        # everything before its first cycle.
        assert parallel_run.shards[0].replayed_cycles == 0
        assert parallel_run.shards[1].replayed_cycles == 2

    def test_dropped_lsp_deltas_sum_to_serial_totals(self, serial_run,
                                                     parallel_run):
        serial_drops = _summed_drops(
            r.metrics for r in serial_run.results)
        shard_drops = _summed_drops(
            s.metrics_delta for s in parallel_run.shards)
        assert shard_drops == serial_drops
        assert shard_drops  # the study drops LSPs in every filter run

    def test_serial_run_has_no_shards(self, serial_run):
        assert serial_run.shards == []


class TestPlanShards:
    def test_few_workers_delegates_to_shard_cycles(self):
        assert plan_shards(1, 8, 3) == shard_cycles(1, 8, 3)
        assert plan_shards(1, 4, 4) == shard_cycles(1, 4, 4)

    def test_surplus_workers_split_cycles_into_blocks(self):
        shards = plan_shards(1, 2, 5)
        assert [(s.first, s.block) for s in shards] == [
            (1, (0, 3)), (1, (1, 3)), (1, (2, 3)),
            (2, (0, 2)), (2, (1, 2)),
        ]
        assert [s.shard_id for s in shards] == list(range(5))

    def test_single_cycle_takes_every_worker(self):
        shards = plan_shards(1, 1, 4)
        assert [(s.first, s.last, s.block) for s in shards] == \
            [(1, 1, (index, 4)) for index in range(4)]

    def test_exact_fit_gets_no_blocks(self):
        assert all(s.block is None for s in plan_shards(1, 3, 3))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            plan_shards(1, 4, 0)

    def test_empty_range(self):
        assert plan_shards(5, 4, 3) == []


class TestOversubscription:
    """workers >= cycles: every cycle becomes its own unit, and surplus
    workers split cycles into pair blocks — output stays byte-identical
    either way."""

    def test_workers_equal_cycles(self, serial_run):
        run = run_study(SPEC, workers=SPEC.cycles)
        assert len(run.shards) == SPEC.cycles
        assert all(s.block is None for s in run.shards)
        assert all(len(s.results) == 1 for s in run.shards)
        for serial, parallel in zip(serial_run.results, run.results):
            assert serial.stats == parallel.stats
            assert serial.metrics == parallel.metrics

    def test_workers_exceed_cycles(self, serial_run):
        run = run_study(SPEC, workers=SPEC.cycles * 2)
        # plan_shards keeps sharding inside the cycles: 8 workers over
        # 4 cycles = 2 pair blocks per cycle, reassembled in pair order.
        assert [s.block for s in run.shards] == [
            (cycle, index, 2)
            for cycle in range(1, SPEC.cycles + 1)
            for index in range(2)
        ]
        assert [r.cycle for r in run.results] == \
            [r.cycle for r in serial_run.results]
        for serial, parallel in zip(serial_run.results, run.results):
            assert serial.stats == parallel.stats
            assert serial.filter_stats == parallel.filter_stats
            assert serial.classification.verdicts == \
                parallel.classification.verdicts
            assert serial.metrics == parallel.metrics

    def test_shard_cycles_never_returns_empty_shards(self):
        for workers in range(1, 12):
            shards = shard_cycles(1, SPEC.cycles, workers)
            assert all(len(shard) >= 1 for shard in shards)
            assert len(shards) == min(workers, SPEC.cycles)


class TestIntraCycle:
    """A 1-cycle study sharded over 4 workers: pair blocks reassemble
    into byte-identical results, metrics, artifacts and checkpoints."""

    @pytest.fixture(scope="class")
    def blocked_run(self):
        return run_study(SPEC1, workers=4)

    def test_shards_are_pair_blocks(self, blocked_run):
        assert [s.block for s in blocked_run.shards] == \
            [(1, index, 4) for index in range(4)]
        assert all(s.results == [] for s in blocked_run.shards)

    def test_results_byte_identical(self, serial_one, blocked_run):
        serial, = serial_one.results
        parallel, = blocked_run.results
        assert serial.stats == parallel.stats
        assert serial.filter_stats == parallel.filter_stats
        assert serial.iotps.keys() == parallel.iotps.keys()
        assert serial.classification.verdicts == \
            parallel.classification.verdicts
        assert serial.metrics == parallel.metrics

    def test_simulator_end_state_identical(self, serial_one,
                                           blocked_run):
        assert _state_fingerprint(serial_one.simulator.internet) == \
            _state_fingerprint(blocked_run.simulator.internet)

    @pytest.mark.parametrize("artifact", ["table1", "fig7"])
    def test_artifacts_byte_identical(self, serial_one, blocked_run,
                                      artifact):
        assert str(regenerate(_study(serial_one), artifact)) == \
            str(regenerate(_study(blocked_run), artifact))

    def test_checkpoints_byte_identical_across_layouts(self, tmp_path):
        run_study(SPEC1, workers=1, checkpoint_dir=tmp_path / "serial")
        run_study(SPEC1, workers=4,
                  checkpoint_dir=tmp_path / "parallel")
        serial_store = CheckpointStore(tmp_path / "serial", SPEC1)
        parallel_store = CheckpointStore(tmp_path / "parallel", SPEC1)
        # The assembled cycle is checkpointed under the serial key, and
        # stripping the layout-dependent cache counters makes the two
        # files byte-for-byte equal.
        assert serial_store.path_for(1, 1).read_bytes() == \
            parallel_store.path_for(1, 1).read_bytes()
        for index in range(4):
            assert parallel_store.path_for(1, 1, (index, 4)).exists()

    def test_serial_checkpoints_seed_parallel_resume(self, serial_one,
                                                     tmp_path):
        run_study(SPEC1, workers=1, checkpoint_dir=tmp_path)
        resumed = run_study(SPEC1, workers=4, checkpoint_dir=tmp_path)
        # Every pair block was satisfied by the one cycle-level
        # checkpoint the serial run wrote.
        assert [s.block for s in resumed.shards] == [None]
        serial, = serial_one.results
        restored, = resumed.results
        assert serial.stats == restored.stats
        assert serial.metrics == restored.metrics

    def test_partial_block_resume(self, serial_one, tmp_path):
        run_study(SPEC1, workers=4, checkpoint_dir=tmp_path)
        store = CheckpointStore(tmp_path, SPEC1)
        store.path_for(1, 1).unlink()
        store.path_for(1, 1, (2, 4)).unlink()
        resumed = run_study(SPEC1, workers=4, checkpoint_dir=tmp_path)
        serial, = serial_one.results
        restored, = resumed.results
        assert serial.stats == restored.stats
        assert serial.filter_stats == restored.filter_stats
        assert serial.metrics == restored.metrics


class TestCacheReconciliation:
    """The memoization counters reconcile with the probe stream."""

    def test_route_cache_counters_match_traces(self):
        registry = get_registry()
        before = registry.snapshot()
        run_study(SPEC1, workers=1)
        delta = registry.diff(before, registry.snapshot())
        traces = _total(delta, "sim_traces_total")
        assert traces > 0
        # Every trace resolves its route exactly once — a hit or a miss.
        assert _total(delta, "route_cache_hits_total") + \
            _total(delta, "route_cache_misses_total") == traces
        assert _total(delta, "hop_cache_hits_total") > 0
        assert _total(delta, "hop_cache_misses_total") > 0
        assert _total(delta, "quoted_stack_cache_hits_total") > 0


class TestFastForward:
    def test_fast_forward_matches_run_cycles(self):
        probed, _ = build_study(SPEC)
        for cycle in (1, 2):
            probed.run_cycle(cycle)
        replayed, _ = build_study(SPEC)
        replayed.fast_forward(1, 2)
        assert _state_fingerprint(probed.internet) == \
            _state_fingerprint(replayed.internet)

    def test_empty_fast_forward_is_a_no_op(self):
        simulator, _ = build_study(SPEC)
        before = _state_fingerprint(simulator.internet)
        simulator.fast_forward(1, 0)
        assert _state_fingerprint(simulator.internet) == before


class TestCliWorkers:
    def test_workers_flag_accepted(self, capsys):
        code = main(["study", "--cycles", "2", "--scale", "0.25",
                     "--workers", "2", "--artifacts", "table1"])
        assert code == 0
        assert "== table1 ==" in capsys.readouterr().out

    def test_workers_must_be_positive(self, capsys):
        code = main(["study", "--cycles", "2", "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_metrics_out_exports_cache_counters(self, tmp_path,
                                                capsys):
        out = tmp_path / "metrics.json"
        code = main(["--metrics-out", str(out), "study", "--cycles",
                     "1", "--scale", "0.25", "--workers", "2",
                     "--artifacts", "table1"])
        assert code == 0
        capsys.readouterr()
        metrics = json.loads(out.read_text())["metrics"]
        for name in ("route_cache_hits_total",
                     "route_cache_misses_total",
                     "hop_cache_hits_total", "hop_cache_misses_total",
                     "quoted_stack_cache_hits_total",
                     "quoted_stack_cache_misses_total",
                     "par_pair_blocks_total"):
            assert name in metrics, name


def _study(run):
    return Study(simulator=run.simulator, pipeline=run.pipeline,
                 longitudinal=LongitudinalStudy(run.results))


def _state_fingerprint(internet):
    """Every label allocator's position + every TE session's labels."""
    state = []
    for asn in sorted(internet.networks):
        network = internet.networks[asn]
        if network.labels is None:
            state.append((asn, None))
            continue
        allocators = tuple(
            (router, alloc._next, alloc.allocated_total,
             tuple(sorted(alloc._in_use)))
            for router, alloc in sorted(network.labels.allocators.items())
        )
        sessions = tuple(sorted(
            (str(session.fec), tuple(sorted(session.labels.items())))
            for session in network.rsvp._sessions.values()
        )) if network.rsvp else ()
        state.append((asn, allocators, sessions))
    return state


def _total(delta, name):
    """Summed value of one metric across a registry delta's labels."""
    return sum(entry["value"]
               for entry in delta.get(name, {}).get("values", []))


def _summed_drops(deltas):
    """Per-filter lsps_dropped_total totals across an iterable of
    registry deltas."""
    totals = {}
    for delta in deltas:
        for entry in delta.get("lsps_dropped_total", {}).get("values", []):
            key = entry["labels"]["filter"]
            totals[key] = totals.get(key, 0) + entry["value"]
    return totals
