"""Tests for the parallel study runner (repro.par).

The headline contract: a sharded run is byte-identical to a serial
one — same per-cycle results, same regenerated artifacts, same merged
metrics, same end-of-campaign simulator state — and the per-shard
metrics deltas reconcile exactly with serial totals.
"""

import pytest

from repro.analysis import LongitudinalStudy, Study, regenerate
from repro.cli import main
from repro.core.pipeline import run_study
from repro.obs import MetricsRegistry
from repro.par import Shard, StudySpec, build_study, shard_cycles

SPEC = StudySpec(scale=0.25, seed=7, cycles=4, snapshots_per_cycle=2)


@pytest.fixture(scope="module")
def serial_run():
    return run_study(SPEC, workers=1)


@pytest.fixture(scope="module")
def parallel_run():
    return run_study(SPEC, workers=2)


class TestShardCycles:
    def test_even_split(self):
        assert shard_cycles(1, 8, 2) == [
            Shard(shard_id=0, first=1, last=4),
            Shard(shard_id=1, first=5, last=8),
        ]

    def test_remainder_goes_to_earlier_shards(self):
        assert shard_cycles(1, 8, 3) == [
            Shard(shard_id=0, first=1, last=3),
            Shard(shard_id=1, first=4, last=6),
            Shard(shard_id=2, first=7, last=8),
        ]

    def test_more_shards_than_cycles(self):
        shards = shard_cycles(1, 2, 5)
        assert len(shards) == 2
        assert all(len(shard) == 1 for shard in shards)

    def test_blocks_are_contiguous_and_cover_the_range(self):
        for count in range(1, 7):
            shards = shard_cycles(3, 17, count)
            cycles = [c for shard in shards for c in shard.cycles]
            assert cycles == list(range(3, 18))

    def test_empty_range(self):
        assert shard_cycles(5, 4, 3) == []

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_cycles(1, 8, 0)

    def test_shard_len_and_cycles(self):
        shard = Shard(shard_id=0, first=4, last=6)
        assert len(shard) == 3
        assert list(shard.cycles) == [4, 5, 6]


class TestByteIdentity:
    def test_results_ordered_by_cycle(self, parallel_run):
        assert [r.cycle for r in parallel_run.results] == [1, 2, 3, 4]

    def test_cycle_results_identical(self, serial_run, parallel_run):
        for serial, parallel in zip(serial_run.results,
                                    parallel_run.results):
            assert serial.stats == parallel.stats
            assert serial.filter_stats == parallel.filter_stats
            assert serial.classification.verdicts == \
                parallel.classification.verdicts
            assert serial.iotps.keys() == parallel.iotps.keys()

    def test_cycle_metrics_deltas_identical(self, serial_run,
                                            parallel_run):
        for serial, parallel in zip(serial_run.results,
                                    parallel_run.results):
            assert serial.metrics == parallel.metrics

    def test_merged_metrics_identical(self, serial_run, parallel_run):
        merged_serial = MetricsRegistry.merge(
            r.metrics for r in serial_run.results)
        merged_parallel = MetricsRegistry.merge(
            r.metrics for r in parallel_run.results)
        assert merged_serial == merged_parallel

    @pytest.mark.parametrize("artifact", [
        "table1", "table2", "fig5a", "fig5b", "fig7", "fig13",
    ])
    def test_artifacts_byte_identical(self, serial_run, parallel_run,
                                      artifact):
        serial = _study(serial_run)
        parallel = _study(parallel_run)
        assert str(regenerate(serial, artifact)) == \
            str(regenerate(parallel, artifact))

    def test_post_study_artifact_byte_identical(self, serial_run,
                                                parallel_run):
        # Fig 6 re-runs a cycle on top of the campaign's end state, so
        # it only matches when the parallel parent simulator was
        # fast-forwarded to the same control-plane state.
        assert str(regenerate(_study(serial_run), "fig6")) == \
            str(regenerate(_study(parallel_run), "fig6"))

    def test_simulator_end_state_identical(self, serial_run,
                                           parallel_run):
        assert _state_fingerprint(serial_run.simulator.internet) == \
            _state_fingerprint(parallel_run.simulator.internet)


class TestShardReconciliation:
    def test_shard_accounting(self, parallel_run):
        assert [s.shard_id for s in parallel_run.shards] == [0, 1]
        assert sum(len(s.results) for s in parallel_run.shards) == \
            SPEC.cycles
        # Shard 0 starts at cycle 1 (no replay); shard 1 replays
        # everything before its first cycle.
        assert parallel_run.shards[0].replayed_cycles == 0
        assert parallel_run.shards[1].replayed_cycles == 2

    def test_dropped_lsp_deltas_sum_to_serial_totals(self, serial_run,
                                                     parallel_run):
        serial_drops = _summed_drops(
            r.metrics for r in serial_run.results)
        shard_drops = _summed_drops(
            s.metrics_delta for s in parallel_run.shards)
        assert shard_drops == serial_drops
        assert shard_drops  # the study drops LSPs in every filter run

    def test_serial_run_has_no_shards(self, serial_run):
        assert serial_run.shards == []


class TestOversubscription:
    """workers >= cycles: shards clamp to one cycle each, idle worker
    slots are simply never used, and output stays byte-identical."""

    def test_workers_equal_cycles(self, serial_run):
        run = run_study(SPEC, workers=SPEC.cycles)
        assert len(run.shards) == SPEC.cycles
        assert all(len(s.results) == 1 for s in run.shards)
        for serial, parallel in zip(serial_run.results, run.results):
            assert serial.stats == parallel.stats
            assert serial.metrics == parallel.metrics

    def test_workers_exceed_cycles(self, serial_run):
        run = run_study(SPEC, workers=SPEC.cycles * 2)
        # shard_cycles clamps: never more (or emptier) shards than
        # cycles, so no worker ever receives an empty range.
        assert len(run.shards) == SPEC.cycles
        assert [r.cycle for r in run.results] == \
            [r.cycle for r in serial_run.results]
        for serial, parallel in zip(serial_run.results, run.results):
            assert serial.stats == parallel.stats
            assert serial.filter_stats == parallel.filter_stats
            assert serial.classification.verdicts == \
                parallel.classification.verdicts
            assert serial.metrics == parallel.metrics

    def test_shard_cycles_never_returns_empty_shards(self):
        for workers in range(1, 12):
            shards = shard_cycles(1, SPEC.cycles, workers)
            assert all(len(shard) >= 1 for shard in shards)
            assert len(shards) == min(workers, SPEC.cycles)


class TestFastForward:
    def test_fast_forward_matches_run_cycles(self):
        probed, _ = build_study(SPEC)
        for cycle in (1, 2):
            probed.run_cycle(cycle)
        replayed, _ = build_study(SPEC)
        replayed.fast_forward(1, 2)
        assert _state_fingerprint(probed.internet) == \
            _state_fingerprint(replayed.internet)

    def test_empty_fast_forward_is_a_no_op(self):
        simulator, _ = build_study(SPEC)
        before = _state_fingerprint(simulator.internet)
        simulator.fast_forward(1, 0)
        assert _state_fingerprint(simulator.internet) == before


class TestCliWorkers:
    def test_workers_flag_accepted(self, capsys):
        code = main(["study", "--cycles", "2", "--scale", "0.25",
                     "--workers", "2", "--artifacts", "table1"])
        assert code == 0
        assert "== table1 ==" in capsys.readouterr().out

    def test_workers_must_be_positive(self, capsys):
        code = main(["study", "--cycles", "2", "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err


def _study(run):
    return Study(simulator=run.simulator, pipeline=run.pipeline,
                 longitudinal=LongitudinalStudy(run.results))


def _state_fingerprint(internet):
    """Every label allocator's position + every TE session's labels."""
    state = []
    for asn in sorted(internet.networks):
        network = internet.networks[asn]
        if network.labels is None:
            state.append((asn, None))
            continue
        allocators = tuple(
            (router, alloc._next, alloc.allocated_total,
             tuple(sorted(alloc._in_use)))
            for router, alloc in sorted(network.labels.allocators.items())
        )
        sessions = tuple(sorted(
            (str(session.fec), tuple(sorted(session.labels.items())))
            for session in network.rsvp._sessions.values()
        )) if network.rsvp else ()
        state.append((asn, allocators, sessions))
    return state


def _summed_drops(deltas):
    """Per-filter lsps_dropped_total totals across an iterable of
    registry deltas."""
    totals = {}
    for delta in deltas:
        for entry in delta.get("lsps_dropped_total", {}).get("values", []):
            key = entry["labels"]["filter"]
            totals[key] = totals.get(key, 0) + entry["value"]
    return totals
