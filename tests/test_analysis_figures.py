"""Unit tests for the figure-regeneration functions on synthetic data."""

import pytest

from repro.analysis.aggregate import LongitudinalStudy
from repro.analysis.figures import (
    fig5a,
    fig5b,
    fig6,
    fig7,
    fig8,
    fig9,
    fig13,
    fig16,
    per_as_figure,
)
from repro.core.classification import (
    ClassificationResult,
    IotpVerdict,
    MonoFecSubclass,
    TunnelClass,
)
from repro.core.pipeline import PersistencePoint
from repro.mpls.lse import LabelStackEntry
from repro.net.ip import Prefix, ip_to_int
from repro.net.ip2as import Ip2AsMapper
from repro.traces import StopReason, Trace, TraceHop

from test_analysis import fake_cycle


@pytest.fixture
def study():
    return LongitudinalStudy(
        fake_cycle(c, mono=2 + c % 3, multi=1 + c % 2,
                   mpls_ips=10 + c, other_ips=100 + c)
        for c in range(1, 13)
    )


class TestLongitudinalFigures:
    def test_fig5a(self, study):
        result = fig5a(study)
        assert result.figure_id == "fig5a"
        assert len(result.data["shares"]) == 12
        assert "tunnel share" in result.text

    def test_fig5b(self, study):
        result = fig5b(study)
        assert "growth" in result.data
        assert "MPLS IPs" in result.text
        assert "growth over the study" in result.text

    def test_per_as_figure(self, study):
        result = per_as_figure(study, 65002, "TestNet", "fig10")
        assert result.figure_id == "fig10"
        assert max(result.data["counts"]) >= 1
        assert "AS65002" in result.text

    def test_fig13(self, study):
        result = fig13(study, 65001)
        assert set(result.data["averages"]) \
            == {"routers-disjoint", "parallel-links"}


class TestSnapshotFigures:
    def test_fig7_8_9(self, study):
        last = study.results[-1]
        assert fig7(last).data["pdf"]
        fig8_result = fig8(last)
        assert fig8_result.data["overall"]
        assert set(fig8_result.data["per_class"]) \
            <= {"mono-fec", "multi-fec"}
        fig9_result = fig9(last)
        assert set(fig9_result.data["per_class"]) \
            == {"mono-fec", "multi-fec"}

    def test_fig6_table(self):
        def classification(count):
            result = ClassificationResult()
            for index in range(count):
                result.add(IotpVerdict(
                    key=(65001, 1, index),
                    tunnel_class=TunnelClass.MONO_LSP))
            return result

        points = [
            PersistencePoint(window=0, kept_lsps=10,
                             classification=classification(5)),
            PersistencePoint(window=2, kept_lsps=8,
                             classification=classification(4)),
        ]
        result = fig6(points)
        assert result.data["kept"] == {0: 10, 2: 8}
        assert "LSPs kept" in result.text


class TestFig16Synthetic:
    def test_daily_ramp_counts(self):
        ip2as = Ip2AsMapper()
        ip2as.add(Prefix.parse("10.1.0.0/16"), 65001)
        ip2as.add(Prefix.parse("50.0.0.0/16"), 65100)
        ip2as.add(Prefix.parse("50.1.0.0/16"), 65101)

        def mpls_trace(dst):
            hops = [
                TraceHop(1, ip_to_int("10.1.0.1"), 1.0),
                TraceHop(2, ip_to_int("10.1.0.2"), 1.0,
                         (LabelStackEntry(100, bottom=True, ttl=1),)),
                TraceHop(3, ip_to_int("10.1.0.9"), 1.0),
                TraceHop(4, ip_to_int(dst), 1.0),
            ]
            return Trace(monitor="m", src=1, dst=ip_to_int(dst),
                         timestamp=0.0,
                         stop_reason=StopReason.COMPLETED, hops=hops)

        days = [
            [],                                           # day 1: dark
            [mpls_trace("50.0.0.1")],                     # day 2
            [mpls_trace("50.0.0.1"), mpls_trace("50.1.0.1")],  # day 3
        ]
        result = fig16(days, ip2as, 65001)
        assert result.data["iotps_before"] == [0, 1, 1]
        assert result.data["lsps_before"] == [0, 1, 1]
        # After filtering: day 2's IOTP dies on TransitDiversity (one
        # destination AS); day 3 survives with two.
        assert result.data["iotps_after"] == [0, 0, 1]
